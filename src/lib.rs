//! Meta-crate for the `sofi` workspace: hosts the cross-crate integration
//! tests in `/tests` and the runnable examples in `/examples`.
//!
//! The actual library lives in [`sofi`] and the crates it re-exports.

pub use sofi;
