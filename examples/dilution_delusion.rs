//! The Fault-Space Dilution Delusion (§IV of the paper), step by step.
//!
//! Shows how an obviously useless "fault-tolerance mechanism" — padding a
//! program with NOPs or discarded loads — improves its fault-coverage
//! factor arbitrarily, and how the absolute-failure-count metric exposes
//! the cheat.
//!
//! ```sh
//! cargo run --release --example dilution_delusion
//! ```

use sofi::harden::{memory_dilution, nop_dilution};
use sofi::prelude::*;
use sofi::workloads::{hi, hi_dft_prime};

fn report(program: &sofi::isa::Program) -> Result<(u64, u64, f64), Box<dyn std::error::Error>> {
    let campaign = Campaign::new(program)?;
    let result = campaign.run_full_defuse();
    Ok((
        result.space.size(),
        result.failure_weight(),
        fault_coverage(&result, Weighting::Weighted),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("variant                    w      F   coverage");
    println!("-----------------------------------------------");
    let base = hi();
    for program in [
        base.clone(),
        nop_dilution(&base, 4),     // the paper's DFT
        hi_dft_prime(4),            // DFT': "activated" faults, same effect
        nop_dilution(&base, 56),    // dilute harder...
        memory_dilution(&base, 30), // ...or along the memory axis
    ] {
        let (w, f, c) = report(&program)?;
        println!(
            "{:<22} {:>6} {:>6}   {:>6.2}%",
            program.name,
            w,
            f,
            c * 100.0
        );
    }

    println!();
    println!("Every variant fails in exactly the same 48 fault-space coordinates —");
    println!("yet coverage climbs toward 100% with padding. That is why §IV abolishes");
    println!("the coverage metric for comparing programs.");

    // The sound comparison shrugs at the dilution:
    let eval = Evaluation::full_scan(&base, &nop_dilution(&base, 56))?;
    let cmp = eval.comparison();
    println!();
    println!("absolute-failure comparison vs +dft56: {cmp}");
    assert_eq!(cmp.ratio, 1.0);
    Ok(())
}
