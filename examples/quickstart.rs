//! Quickstart: assemble a program, run a fault-injection campaign, and
//! read the numbers that matter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sofi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a tiny benchmark with the programmatic assembler: it keeps
    //    a checksum in RAM, updates it over an input buffer, and prints it.
    let mut a = Asm::with_name("quickstart");
    let input = a.data_bytes("input", b"hello, soft errors");
    let sum = a.data_word("sum", 0);
    a.li(Reg::R4, 0); // index
    a.li(Reg::R5, input.addr() as i32 + 18); // end
    let top = a.label_here();
    a.addi(Reg::R2, Reg::R4, input.offset());
    a.lbu(Reg::R3, Reg::R2, 0);
    a.lw(Reg::R6, Reg::R0, sum.offset());
    a.add(Reg::R6, Reg::R6, Reg::R3);
    a.sw(Reg::R6, Reg::R0, sum.offset());
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R5, top);
    a.lw(Reg::R6, Reg::R0, sum.offset());
    a.serial_out(Reg::R6);
    let program = a.build()?;

    // 2. A fault-free run establishes the reference behaviour.
    let mut machine = Machine::new(&program);
    let status = machine.run(100_000);
    println!(
        "golden run: {status:?}, output {:?}, {} cycles",
        machine.serial(),
        machine.cycle()
    );

    // 3. Prepare the campaign: golden run + def/use pruning of the fault
    //    space (every (cycle, bit) coordinate of RAM over the runtime).
    let campaign = Campaign::new(&program)?;
    let plan = campaign.plan();
    println!(
        "fault space: {} coordinates, pruned to {} experiments (x{:.0} reduction)",
        plan.space.size(),
        plan.experiments.len(),
        plan.reduction_factor()
    );

    // 4. Full fault-space scan: every experiment is one forked machine
    //    with one bit flipped, classified against the golden run.
    let result = campaign.run_full_defuse();
    println!(
        "weighted failures F = {} of w = {} -> coverage {:.1}%",
        result.failure_weight(),
        result.space.size(),
        fault_coverage(&result, Weighting::Weighted) * 100.0
    );

    // 5. The same failure count, estimated from 10k random samples — with
    //    the extrapolation Pitfall 3 (Corollary 2) requires.
    let mut rng = sofi_rng::DefaultRng::seed_from_u64(42);
    let sampled = campaign.run_sampled(10_000, SamplingMode::UniformRaw, &mut rng);
    let estimate = extrapolated_failures(&sampled, 0.95);
    println!(
        "sampled estimate: F = {:.0}  (95% CI [{:.0}, {:.0}], {} experiments actually run)",
        estimate.failures,
        estimate.ci.0,
        estimate.ci.1,
        sampled.experiments_run()
    );
    Ok(())
}
