//! Full evaluation of the two eCos-style kernel benchmarks (`bin_sem2`,
//! `sync2`) — the paper's Figure 2 experiment as a library user would run
//! it.
//!
//! ```sh
//! cargo run --release --example ecos_campaign
//! ```

use sofi::prelude::*;
use sofi::workloads::{bin_sem2, sync2};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, base, hard) in [
        (
            "bin_sem2",
            bin_sem2(Variant::Baseline),
            bin_sem2(Variant::SumDmr),
        ),
        ("sync2", sync2(Variant::Baseline), sync2(Variant::SumDmr)),
    ] {
        println!("=== {name} ===");
        let eval = Evaluation::full_scan(&base, &hard)?;

        let (cb, ch) = eval.coverages(Weighting::Weighted);
        println!(
            "  fault coverage:  baseline {:.1}%   hardened {:.1}%",
            cb * 100.0,
            ch * 100.0
        );
        println!("  (coverage says: hardening helps — for both benchmarks)");

        let (fb, fh) = eval.failure_counts();
        let cmp = eval.comparison();
        println!("  failure counts:  baseline {fb}   hardened {fh}");
        println!("  sound comparison: {cmp}");
        if cmp.improves() {
            println!("  => the SUM+DMR protection genuinely pays off here");
        } else {
            println!(
                "  => the coverage verdict was WRONG: this variant is {:.1}x",
                cmp.ratio
            );
            println!("     more susceptible — hidden by its inflated fault space");
        }
        println!();
    }
    Ok(())
}
