//! Sampling convergence: how the extrapolated failure count approaches
//! the exact full-scan value as the sample grows, and why raw sample
//! counts (Pitfall 3, Corollary 2) are meaningless across sample sizes.
//!
//! ```sh
//! cargo run --release --example sampling_convergence
//! ```

use sofi::prelude::*;
use sofi::workloads::{bin_sem2, Variant};
use sofi_rng::DefaultRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = bin_sem2(Variant::Baseline);
    let campaign = Campaign::new(&program)?;
    let exact = campaign.run_full_defuse().failure_weight();
    println!("exact weighted failure count (full scan): {exact}");
    println!();
    println!("   draws   F_raw (useless)   F_extrapolated   95% CI               experiments run");
    println!("  ------------------------------------------------------------------------------");

    for draws in [100u64, 1_000, 10_000, 100_000] {
        let mut rng = DefaultRng::seed_from_u64(2024);
        let sampled = campaign.run_sampled(draws, SamplingMode::UniformRaw, &mut rng);
        let est = extrapolated_failures(&sampled, 0.95);
        let hit = est.ci.0 <= exact as f64 && exact as f64 <= est.ci.1;
        println!(
            "  {draws:>6}   {:>15}   {:>14.0}   [{:>8.0}, {:>8.0}]{}  {:>10}",
            sampled.failure_hits(),
            est.failures,
            est.ci.0,
            est.ci.1,
            if hit { " " } else { "!" },
            sampled.experiments_run(),
        );
    }
    println!();
    println!("F_raw grows with the sample size (it measures the experimenter's budget,");
    println!("not the program); the extrapolated count converges on the true value, and");
    println!("thanks to def/use pruning even 100k draws cost only a few thousand");
    println!("conducted experiments.");
    Ok(())
}
