//! Hardening your own benchmark — and choosing the right mechanism.
//!
//! Builds a small accumulator benchmark, uses the per-byte vulnerability
//! map (an AVF/PVF-style metric, §VII) to find its critical data, applies
//! three different protection mechanisms to it, and compares every
//! variant with the paper's sound metric. The heavyweight mechanism
//! reproduces the paper's sync2 trap in miniature: it protects the
//! hotspot perfectly and still *worsens* the program, because its runtime
//! overhead inflates the exposure of the data it does not cover.
//!
//! ```sh
//! cargo run --release --example custom_hardening
//! ```

use sofi::harden::{HashDmrWord, ProtectedWord, TmrWord};
use sofi::metrics::byte_vulnerability;
use sofi::prelude::*;

/// Which mechanism guards the accumulator.
#[derive(Clone, Copy, PartialEq)]
enum Guard {
    None,
    SumDmr,
    Tmr,
    HashDmr,
}

/// Iterates `acc = acc·31 + i` 64 times with `acc` in RAM (the critical
/// datum), then prints the accumulator and a small unprotected status
/// record written at boot — the residual exposure every variant keeps.
fn build(guard: Guard) -> Program {
    let name = match guard {
        Guard::None => "acc",
        Guard::SumDmr => "acc+sumdmr",
        Guard::Tmr => "acc+tmr",
        Guard::HashDmr => "acc+hashdmr",
    };
    let mut a = Asm::with_name(name);

    enum W {
        Plain(sofi::isa::DataLabel),
        Sum(ProtectedWord),
        Tmr(TmrWord),
        Hash(HashDmrWord),
    }
    let acc = match guard {
        Guard::None => W::Plain(a.data_word("acc", 1)),
        Guard::SumDmr => W::Sum(ProtectedWord::declare(&mut a, "acc", 1)),
        Guard::Tmr => W::Tmr(TmrWord::declare(&mut a, "acc", 1)),
        Guard::HashDmr => W::Hash(HashDmrWord::declare(&mut a, "acc", 1)),
    };
    let status = a.data_space("status", 2);
    let load = |a: &mut Asm, w: &W| match w {
        W::Plain(l) => {
            a.lw(Reg::R5, Reg::R0, l.offset());
        }
        W::Sum(p) => p.emit_load(a, Reg::R5, Reg::R1, Reg::R2),
        W::Tmr(p) => p.emit_load(a, Reg::R5, Reg::R1, Reg::R2),
        W::Hash(p) => p.emit_load(a, Reg::R5, Reg::R1, Reg::R2, Reg::R3),
    };
    let store = |a: &mut Asm, w: &W| match w {
        W::Plain(l) => {
            a.sw(Reg::R5, Reg::R0, l.offset());
        }
        W::Sum(p) => p.emit_store(a, Reg::R5, Reg::R1),
        W::Tmr(p) => p.emit_store(a, Reg::R5),
        W::Hash(p) => p.emit_store(a, Reg::R5, Reg::R1, Reg::R2),
    };

    // Boot: write the status record (read back only at the very end).
    a.li(Reg::R7, 0xEE);
    a.sb(Reg::R7, Reg::R0, status.offset());
    a.li(Reg::R7, 0x77);
    a.sb(Reg::R7, Reg::R0, status.at(1).offset());

    a.li(Reg::R4, 0);
    a.li(Reg::R6, 64);
    let top = a.label_here();
    load(&mut a, &acc);
    a.li(Reg::R8, 31);
    a.mul(Reg::R5, Reg::R5, Reg::R8);
    a.add(Reg::R5, Reg::R5, Reg::R4);
    store(&mut a, &acc);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R6, top);

    load(&mut a, &acc);
    for _ in 0..4 {
        a.serial_out(Reg::R5);
        a.srli(Reg::R5, Reg::R5, 8);
    }
    a.lbu(Reg::R7, Reg::R0, status.offset());
    a.serial_out(Reg::R7);
    a.lbu(Reg::R7, Reg::R0, status.at(1).offset());
    a.serial_out(Reg::R7);
    a.build().expect("statically correct")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: where do the baseline's failures live?
    let baseline = build(Guard::None);
    let campaign = Campaign::new(&baseline)?;
    let result = campaign.run_full_defuse();
    let map = byte_vulnerability(&result);
    println!("baseline vulnerability hotspots (per-byte failure fraction):");
    for (addr, v) in map.hotspots().into_iter().take(6) {
        let sym = baseline
            .symbols
            .iter()
            .rev()
            .find(|(_, a)| *a <= addr)
            .map(|(n, _)| n.as_str())
            .unwrap_or("?");
        println!("  byte {addr:#04x} ({sym}): {v:.2}");
    }
    println!("-> the status bytes are almost always fatal but tiny; the accumulator");
    println!("   is the largest failing object. Protect the accumulator.\n");

    // Step 2: compare three mechanisms on the identified hotspot.
    let f_base = exact_failures(&result);
    println!("variant       F        r       runtime");
    println!("----------------------------------------");
    println!(
        "{:<12} {:>7.0} {:>7} {:>9}",
        baseline.name, f_base.failures, "-", result.golden_cycles
    );
    for guard in [Guard::SumDmr, Guard::Tmr, Guard::HashDmr] {
        let program = build(guard);
        let campaign = Campaign::new(&program)?;
        let res = campaign.run_full_defuse();
        let f = exact_failures(&res);
        let cmp = compare_failures(&f_base, &f);
        println!(
            "{:<12} {:>7.0} {:>7.3} {:>9}",
            program.name, f.failures, cmp.ratio, res.golden_cycles
        );
    }
    println!();
    println!("The two lightweight mechanisms pay off (r < 1): they remove the");
    println!("accumulator's failure mass for a ~1.6x runtime cost. The signature-hash");
    println!("variant protects the same data yet WORSENS the program by 6x: its 10x");
    println!("runtime multiplies the unprotected status record's exposure — the");
    println!("paper's sync2 effect reproduced in miniature.");
    Ok(())
}
