; "Hi" with the paper's "Dilution Fault Tolerance" applied: four NOPs
; prepended. Coverage rises to 75% -- the failure count stays 48.
;
;   sofi compare asm/hi.s asm/hi_dft.s
nop
nop
nop
nop
.data
msg: .space 2
.text
li r1, 'H'
sb r1, msg(r0)
li r1, 'i'
sb r1, msg+1(r0)
lb r2, msg(r0)
serial r2
lb r2, msg+1(r0)
serial r2
