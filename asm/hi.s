; The paper's "Hi" micro-benchmark (Figure 3a): 8 instructions,
; 2 bytes of RAM, fault coverage 62.5%, F = 48.
;
;   sofi run asm/hi.s
;   sofi campaign asm/hi.s
;   sofi diagram asm/hi.s
.data
msg: .space 2
.text
li r1, 'H'
sb r1, msg(r0)
li r1, 'i'
sb r1, msg+1(r0)
lb r2, msg(r0)
serial r2
lb r2, msg+1(r0)
serial r2
