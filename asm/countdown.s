; A counter in RAM ticking down: flips of high counter bits cause
; timeouts, low bits change the number of '*' printed (SDC).
;
;   sofi campaign asm/countdown.s
.data
count: .word 5
.text
loop:
    lw r1, count(r0)
    beq r1, r0, done
    li r2, '*'
    serial r2
    addi r1, r1, -1
    sw r1, count(r0)
    j loop
done:
    li r2, '!'
    serial r2
    halt 0
