; Additive checksum over a message, printed as one byte.
;
;   sofi campaign asm/checksum.s
;   sofi sample asm/checksum.s --draws 20000
.data
msg: .byte 'f', 'a', 'u', 'l', 't', 's'
sum: .word 0
.text
    li r4, 0
    li r5, 6
loop:
    addi r2, r4, msg
    lbu r3, 0(r2)
    lw r6, sum(r0)
    add r6, r6, r3
    sw r6, sum(r0)
    addi r4, r4, 1
    bne r4, r5, loop
    lw r6, sum(r0)
    serial r6
    halt 0
