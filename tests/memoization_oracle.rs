//! Oracle for fault-equivalence outcome memoization: on every benchmark's
//! def/use plan, in both fault domains, the memoizing executor must produce
//! results bit-identical to the naive replay executor that simulates every
//! experiment to completion with *both* executor optimizations disabled.
//!
//! The memoized side runs twice per plan: once with a cold cache and once
//! warm (cache fully populated by the first pass), because the warm path
//! exercises the injection-time hit branch for every single experiment.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::workloads::all_baselines;

#[test]
fn memoized_executor_matches_naive_on_every_workload() {
    let mut total_hits = 0u64;
    let mut total_saved = 0u64;
    for program in all_baselines() {
        // Memoization alone: convergence off so the oracle isolates the
        // memo layer (the convergence oracle already covers the composed
        // default configuration), and the adaptive cost gate off because
        // this oracle pins ungated semantics — the warm pass asserts a
        // 100% hit rate, which only holds when every shard keeps probing
        // regardless of golden-run length. The gated configuration is
        // covered by `memoized_executor_matches_naive_composed_with_convergence`
        // (outcome equality) and the gate's own unit tests.
        let memoed = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                memo_gate: false,
                ..CampaignConfig::default()
            },
        )
        .expect("golden run");
        let naive = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                memoization: false,
                ..CampaignConfig::default()
            },
        )
        .expect("golden run");
        for (domain, plan) in [
            (FaultDomain::Memory, memoed.plan()),
            (FaultDomain::RegisterFile, memoed.register_plan()),
        ] {
            let expected = naive.run_experiments_naive(domain, &plan.experiments);

            memoed.reset_memo();
            let (cold, cold_stats) = memoed.run_experiments_stats(domain, &plan.experiments);
            assert_eq!(
                cold, expected,
                "{}/{domain:?}: cold-cache memoization changed outcomes",
                program.name
            );

            let (warm, warm_stats) = memoed.run_experiments_stats(domain, &plan.experiments);
            assert_eq!(
                warm, expected,
                "{}/{domain:?}: warm-cache memoization changed outcomes",
                program.name
            );
            // Warm pass: every experiment must be answered from the cache.
            assert_eq!(
                warm_stats.memo_hits, warm_stats.experiments,
                "{}/{domain:?}: warm cache missed",
                program.name
            );
            assert_eq!(warm_stats.faulted_cycles, 0);

            total_hits += cold_stats.memo_hits;
            total_saved += cold_stats.memoized_cycles_saved;
        }
    }
    // The equivalence above must not hold vacuously: even with a cold
    // cache, pristine-checkpoint pre-seeding and trajectory convergence
    // have to produce hits somewhere across the suite.
    assert!(total_hits > 0, "memoization never hit on a cold cache");
    assert!(total_saved > 0, "memoization never saved any cycles");
}

#[test]
fn memoized_executor_matches_naive_composed_with_convergence() {
    // The default configuration (convergence + memoization, both on) must
    // also be outcome-identical to the naive executor: the two
    // optimizations interact (convergence can terminate a run before a
    // checkpoint-crossing lookup fires), so the composition is tested
    // separately from each layer's own oracle.
    for program in all_baselines() {
        let campaign = Campaign::new(&program).expect("golden run");
        for (domain, plan) in [
            (FaultDomain::Memory, campaign.plan()),
            (FaultDomain::RegisterFile, campaign.register_plan()),
        ] {
            let (results, _) = campaign.run_experiments_stats(domain, &plan.experiments);
            let naive = campaign.run_experiments_naive(domain, &plan.experiments);
            assert_eq!(
                results, naive,
                "{}/{domain:?}: memoization + convergence changed outcomes",
                program.name
            );
        }
    }
}
