//! Seeded fuzz battery for the basic-block execution engine.
//!
//! Two properties over deterministic randomly generated programs — this
//! generator adds *bounded backward loops* (counted, so the block
//! engine's in-table control transfers get exercised) and random
//! external-event schedules on top of the straight-line/forward-branch
//! mix the memoization fuzz uses — and random fault coordinates:
//!
//! 1. lockstep equivalence: a machine executing through the µop engine
//!    and one forced onto the single-step interpreter, driven through
//!    the same random sequence of `run_to` boundaries with the same
//!    mid-run bit flips (memory and register file), have equal state
//!    digests, statuses, and cycle counts at *every* boundary;
//! 2. campaign equivalence: the default (block-engine) executor —
//!    composed with convergence and memoization — produces outcomes
//!    identical to the naive stepping executor on random fault lists in
//!    both domains.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::isa::{Asm, Program, Reg};
use sofi::machine::{ExternalEvent, Machine, MachineConfig, REG_FILE_BITS};
use sofi::space::{Experiment, FaultCoord};
use sofi_rng::{DefaultRng, Rng};

const DATA_BYTES: u32 = 48;

fn reg(rng: &mut impl Rng) -> Reg {
    Reg::from_index(rng.gen_range(1usize..8)).unwrap()
}

/// One random instruction confined to registers r1..r7 and the aligned
/// `buf` data region (a fault-free run can never trap).
fn emit_step(a: &mut Asm, rng: &mut impl Rng, buf_offset: i16) {
    match rng.gen_range(0u32..11) {
        0 | 1 => {
            let (d, x, y) = (reg(rng), reg(rng), reg(rng));
            match rng.gen_range(0u32..6) {
                0 => a.add(d, x, y),
                1 => a.sub(d, x, y),
                2 => a.xor(d, x, y),
                3 => a.and(d, x, y),
                4 => a.mul(d, x, y),
                _ => a.slt(d, x, y),
            };
        }
        2 => {
            a.addi(reg(rng), reg(rng), rng.gen_range(-64i16..64));
        }
        3 => {
            let off = buf_offset + (rng.gen_range(0u32..DATA_BYTES / 4) * 4) as i16;
            a.sw(reg(rng), Reg::R0, off);
        }
        4 => {
            let off = buf_offset + (rng.gen_range(0u32..DATA_BYTES / 4) * 4) as i16;
            a.lw(reg(rng), Reg::R0, off);
        }
        5 => {
            let off = buf_offset + rng.gen_range(0u32..DATA_BYTES) as i16;
            if rng.gen_bool(0.5) {
                a.sb(reg(rng), Reg::R0, off);
            } else {
                a.lb(reg(rng), Reg::R0, off);
            }
        }
        6 => {
            a.serial_out(reg(rng));
        }
        7 => {
            a.li(reg(rng), rng.gen_range(-1000i32..1000));
        }
        8 => {
            // Poll the external-input latch into the data mix, so event
            // deliveries are architecturally observable.
            a.read_input(reg(rng));
        }
        _ => {
            a.nop();
        }
    }
}

/// A random terminating program: seeded registers, then a mix of random
/// steps, forward skip branches, and *counted backward loops* (the loop
/// counter lives in r8, untouched by `emit_step`, so fault-free
/// termination is structural), then a serial signature.
fn random_program(seed: u64) -> Program {
    let mut rng = DefaultRng::seed_from_u64(seed);
    let mut a = Asm::with_name(format!("blkfuzz-{seed:016x}"));
    let buf = a.data_space("buf", DATA_BYTES);
    let buf_offset = buf.offset();
    a.li(Reg::R1, rng.gen_range(1i32..100));
    a.li(Reg::R2, rng.gen_range(1i32..100));
    for _ in 0..rng.gen_range(8usize..30) {
        match rng.gen_range(0u32..10) {
            0 => {
                // Forward-only skip branch.
                let skip = a.new_label();
                let (x, y) = (reg(&mut rng), reg(&mut rng));
                match rng.gen_range(0u32..3) {
                    0 => a.beq(x, y, skip),
                    1 => a.bne(x, y, skip),
                    _ => a.blt(x, y, skip),
                };
                for _ in 0..rng.gen_range(1usize..4) {
                    emit_step(&mut a, &mut rng, buf_offset);
                }
                a.bind(skip);
            }
            1 | 2 => {
                // Counted backward loop: the block engine follows the
                // taken back-edge inside one µop burst.
                a.li(Reg::R8, rng.gen_range(2i32..6));
                let top = a.label_here();
                for _ in 0..rng.gen_range(1usize..4) {
                    emit_step(&mut a, &mut rng, buf_offset);
                }
                a.addi(Reg::R8, Reg::R8, -1);
                a.bne(Reg::R8, Reg::R0, top);
            }
            _ => emit_step(&mut a, &mut rng, buf_offset),
        }
    }
    a.serial_out(Reg::R1);
    a.serial_out(Reg::R3);
    a.build().unwrap()
}

/// A random sorted external-event schedule.
fn random_events(rng: &mut impl Rng, horizon: u64) -> Vec<ExternalEvent> {
    let mut events: Vec<ExternalEvent> = (0..rng.gen_range(0usize..5))
        .map(|_| ExternalEvent {
            cycle: rng.gen_range(1u64..horizon.max(2)),
            value: rng.gen_range(0u32..1 << 16),
        })
        .collect();
    events.sort_by_key(|e| e.cycle);
    events
}

#[test]
fn fuzz_block_engine_lockstep_with_step_interpreter() {
    let mut rng = DefaultRng::seed_from_u64(0xB10C_0001);
    let mut block_cycles_total = 0u64;
    for round in 0..24u32 {
        let program = random_program(rng.next_u64());
        let golden_cycles = {
            let mut m = Machine::new(&program);
            m.run(100_000);
            m.cycle()
        };
        let events = random_events(&mut rng, golden_cycles);
        let mut blocks = Machine::with_events(&program, MachineConfig::default(), events.clone());
        let mut steps = Machine::with_events(
            &program,
            MachineConfig {
                block_engine: false,
                ..MachineConfig::default()
            },
            events,
        );
        let ram_bits = program.ram_size as u64 * 8;
        // Drive both machines through identical random boundaries with
        // identical mid-run injections; compare at every boundary.
        let mut bound = 0u64;
        for _ in 0..rng.gen_range(4u32..10) {
            bound += rng.gen_range(0u64..golden_cycles / 2 + 2);
            if rng.gen_bool(0.5) {
                let bit = if rng.gen_bool(0.5) {
                    let bit = rng.gen_range(0u64..ram_bits);
                    blocks.flip_bit(bit);
                    steps.flip_bit(bit);
                    bit
                } else {
                    let bit = rng.gen_range(0u64..REG_FILE_BITS);
                    blocks.flip_reg_bit(bit);
                    steps.flip_reg_bit(bit);
                    bit
                };
                let _ = bit;
            }
            let a = blocks.run_to(bound);
            let b = steps.run_to(bound);
            assert_eq!(a, b, "round {round}: early-stop status at cycle {bound}");
            assert_eq!(
                blocks.cycle(),
                steps.cycle(),
                "round {round}: cycle count at boundary {bound}"
            );
            assert_eq!(
                blocks.state_digest(),
                steps.state_digest(),
                "round {round}: state digest diverged at cycle {}",
                blocks.cycle()
            );
        }
        assert_eq!(
            steps.block_stats().block_cycles,
            0,
            "stepping machine must never enter the µop loop"
        );
        block_cycles_total += blocks.block_stats().block_cycles;
    }
    // The equivalence must not hold vacuously: across the sweep the
    // default machine has to retire real work through the µop engine.
    assert!(
        block_cycles_total > 0,
        "block engine never executed anything"
    );
}

/// `n` random fault coordinates in a `cycles × bits` space, cycle-sorted
/// like a real plan.
fn random_experiments(rng: &mut impl Rng, cycles: u64, bits: u64, n: usize) -> Vec<Experiment> {
    let mut v: Vec<Experiment> = (0..n)
        .map(|i| Experiment {
            id: i as u32,
            coord: FaultCoord {
                cycle: rng.gen_range(1u64..cycles + 1),
                bit: rng.gen_range(0u64..bits),
            },
            weight: 1,
        })
        .collect();
    v.sort_unstable_by_key(|e| (e.coord.cycle, e.coord.bit, e.id));
    v
}

#[test]
fn fuzz_block_engine_campaign_matches_stepping_naive() {
    let mut rng = DefaultRng::seed_from_u64(0xB10C_0002);
    for round in 0..6u32 {
        let program = random_program(rng.next_u64());
        let events = {
            let mut m = Machine::new(&program);
            m.run(100_000);
            random_events(&mut rng, m.cycle())
        };
        let blocks =
            Campaign::with_events(&program, CampaignConfig::sequential(), events.clone()).unwrap();
        let stepping = Campaign::with_events(
            &program,
            CampaignConfig {
                convergence: false,
                memoization: false,
                machine: MachineConfig {
                    block_engine: false,
                    ..MachineConfig::default()
                },
                ..CampaignConfig::sequential()
            },
            events,
        )
        .unwrap();
        let cycles = blocks.golden().cycles;
        for (domain, bits) in [
            (FaultDomain::Memory, program.ram_size as u64 * 8),
            (FaultDomain::RegisterFile, REG_FILE_BITS),
        ] {
            let experiments = random_experiments(&mut rng, cycles, bits, 80);
            let expected = stepping.run_experiments_naive(domain, &experiments);
            let (got, _) = blocks.run_experiments_stats(domain, &experiments);
            assert_eq!(
                got, expected,
                "round {round} {}/{domain:?}: block-engine campaign diverged from stepping naive",
                program.name
            );
        }
    }
}
