//! Crash-recovery proof for the serve journal: a daemon killed
//! mid-campaign (after N journal commits) is restarted on the same
//! journal and must produce a merged result bit-identical to an
//! uninterrupted run — no duplicated experiment ids, none dropped, and
//! only the uncovered tail re-executed.
//!
//! The "kill" is the scheduler's `crash_after_commits` hook: after N
//! batch commits the workers stop dead — no end record, no state
//! update, the journal left exactly as `kill -9` would leave it (the
//! in-flight batch is lost). Threads can't be killed mid-instruction in
//! safe Rust, but every observable artifact of the crash (the journal
//! file) is identical, and recovery only ever sees the journal.

use sofi_campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi_isa::assemble_text;
use sofi_serve::{JobSpec, JobState, Scheduler, ServeConfig, SubmitOutcome};
use std::collections::HashSet;
use std::path::PathBuf;

const PROG: &str = "
    .data
    msg: .space 2
    .text
    li r1, 'H'
    sb r1, msg(r0)
    li r1, 'i'
    sb r1, msg+1(r0)
    lb r2, msg(r0)
    serial r2
    lb r2, msg+1(r0)
    serial r2
";

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sofi-recovery-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn spec(domain: FaultDomain) -> JobSpec {
    JobSpec {
        name: "hi".into(),
        source: PROG.into(),
        domain,
        config: CampaignConfig::default(),
        warm_store: true,
    }
}

/// Kills a daemon after `crash_after` batch commits, restarts on the
/// same journal, and checks the resumed job's merged result against an
/// uninterrupted in-process run.
fn crash_and_recover(domain: FaultDomain, batch_size: usize, crash_after: u64, tag: &str) {
    let journal = temp_journal(tag);

    // Reference: the uninterrupted run.
    let program = assemble_text("hi", PROG).unwrap();
    let campaign = Campaign::with_config(&program, CampaignConfig::default()).unwrap();
    let expected = match domain {
        FaultDomain::Memory => campaign.run_full_defuse(),
        FaultDomain::RegisterFile => campaign.run_full_defuse_registers(),
    };
    let total = expected.results.len();
    let committed = batch_size * crash_after as usize;
    assert!(
        committed + batch_size < total,
        "scenario must crash mid-campaign: {committed}+{batch_size} vs {total}"
    );

    // First incarnation: dies after `crash_after` journal commits.
    let sched = Scheduler::open(
        &journal,
        ServeConfig {
            workers: 1,
            batch_size,
            crash_after_commits: Some(crash_after),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let SubmitOutcome::Accepted(job) = sched.submit(spec(domain)) else {
        panic!("fresh daemon refused the job");
    };
    sched.wait_idle(); // returns once the crash hook fires
    assert!(sched.crashed(), "crash hook never fired");
    let status = sched.status(Some(job)).unwrap().remove(0);
    assert_eq!(status.state, JobState::Running, "died mid-flight");
    assert_eq!(
        status.done as usize, committed,
        "exactly the committed batches count as done"
    );
    assert!(sched.result(job).is_none());
    drop(sched); // "kill": nothing further reaches the journal

    // Second incarnation: same journal path, no crash hook. Recovery
    // re-queues the interrupted job automatically — no resubmission.
    let sched = Scheduler::open(
        &journal,
        ServeConfig {
            workers: 1,
            batch_size,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let replayed = sched.status(Some(job)).unwrap().remove(0);
    assert!(
        replayed.done as usize >= committed,
        "journal replay lost commits: {} < {committed}",
        replayed.done
    );
    sched.wait_idle();

    let status = sched.status(Some(job)).unwrap().remove(0);
    assert_eq!(status.state, JobState::Done, "{}", status.error);
    let (result, stats) = sched.result(job).unwrap();

    // The merged (replayed + re-run) result is bit-identical to the
    // uninterrupted run.
    assert_eq!(result, expected);

    // No duplicated or dropped experiment ids.
    let ids: Vec<u32> = result.results.iter().map(|r| r.experiment.id).collect();
    let unique: HashSet<u32> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "duplicated experiment ids");
    let expected_ids: HashSet<u32> = expected.results.iter().map(|r| r.experiment.id).collect();
    assert_eq!(unique, expected_ids, "dropped/invented experiment ids");

    // The second incarnation re-ran only the uncovered tail.
    assert_eq!(
        stats.experiments as usize,
        total - committed,
        "resume re-executed journaled experiments"
    );

    drop(sched);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn memory_campaign_resumes_after_crash() {
    // 16-experiment plan, batches of 4: crash with 8 committed, 8 to go.
    crash_and_recover(FaultDomain::Memory, 4, 2, "mem");
}

#[test]
fn register_campaign_resumes_after_crash() {
    // 128-experiment plan, batches of 8: crash with 24 committed.
    crash_and_recover(FaultDomain::RegisterFile, 8, 3, "reg");
}

#[test]
fn finished_jobs_survive_restart_as_terminal() {
    let journal = temp_journal("terminal");
    let sched = Scheduler::open(&journal, ServeConfig::default()).unwrap();
    let SubmitOutcome::Accepted(job) = sched.submit(spec(FaultDomain::Memory)) else {
        panic!("refused");
    };
    sched.wait_idle();
    assert_eq!(
        sched.status(Some(job)).unwrap().remove(0).state,
        JobState::Done
    );
    drop(sched);

    // Restart: the job replays as Done with its full coverage count and
    // is NOT re-queued (no new experiments run).
    let sched = Scheduler::open(&journal, ServeConfig::default()).unwrap();
    let status = sched.status(Some(job)).unwrap().remove(0);
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.done, 16);
    sched.wait_idle(); // no queued work; returns immediately
    drop(sched);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn journal_with_torn_tail_still_recovers() {
    let journal = temp_journal("torn");
    let sched = Scheduler::open(
        &journal,
        ServeConfig {
            workers: 1,
            batch_size: 4,
            crash_after_commits: Some(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let SubmitOutcome::Accepted(job) = sched.submit(spec(FaultDomain::Memory)) else {
        panic!("refused");
    };
    sched.wait_idle();
    drop(sched);

    // Simulate a torn write at the kill point: append half a record.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    f.write_all(&[0x44, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();
    drop(f);

    let sched = Scheduler::open(&journal, ServeConfig::default()).unwrap();
    sched.wait_idle();
    let (result, _) = sched.result(job).unwrap();
    let program = assemble_text("hi", PROG).unwrap();
    let campaign = Campaign::with_config(&program, CampaignConfig::default()).unwrap();
    assert_eq!(result, campaign.run_full_defuse());
    drop(sched);
    std::fs::remove_file(&journal).unwrap();
}
