//! Oracle for the convergence-terminating executor: on every benchmark's
//! def/use plan, in both fault domains, the forking executor with
//! golden-state convergence enabled must produce results identical to the
//! naive replay executor that simulates every experiment to completion.

use sofi::campaign::{Campaign, FaultDomain};
use sofi::workloads::all_baselines;

#[test]
fn converging_executor_matches_naive_on_every_workload() {
    let mut total_converged = 0u64;
    let mut total_saved = 0u64;
    for program in all_baselines() {
        let campaign = Campaign::new(&program).expect("golden run");
        for (domain, plan) in [
            (FaultDomain::Memory, campaign.plan()),
            (FaultDomain::RegisterFile, campaign.register_plan()),
        ] {
            let (results, stats) = campaign.run_experiments_stats(domain, &plan.experiments);
            let naive = campaign.run_experiments_naive(domain, &plan.experiments);
            assert_eq!(
                results, naive,
                "{}/{domain:?}: convergence termination changed outcomes",
                program.name
            );
            total_converged += stats.converged_early;
            total_saved += stats.faulted_cycles_saved;
        }
    }
    // The equivalence above must not hold vacuously: across the suite the
    // optimization has to actually fire and skip simulation work.
    assert!(total_converged > 0, "no experiment ever converged early");
    assert!(total_saved > 0, "convergence never saved any cycles");
}
