//! Differential testing of the CPU core: random straight-line programs
//! are executed both on the simulator and on an independent Rust model of
//! the ISA semantics; register files and memory must agree afterwards.

use sofi::isa::{Asm, Inst, MemWidth, Program, Reg};
use sofi::machine::Machine;
use sofi_rng::{DefaultRng, Rng};

const RAM: u32 = 16;

/// Independent interpreter for the instruction subset the generator
/// emits (deliberately written from the ISA documentation, not from the
/// simulator source).
struct Model {
    regs: [u32; 16],
    ram: [u8; RAM as usize],
}

impl Model {
    fn new(data: &[u8]) -> Model {
        let mut ram = [0u8; RAM as usize];
        ram[..data.len()].copy_from_slice(data);
        Model { regs: [0; 16], ram }
    }

    fn wr(&mut self, r: Reg, v: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    fn rd(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn exec(&mut self, inst: Inst) {
        use Inst::*;
        match inst {
            Add { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1).wrapping_add(self.rd(rs2))),
            Sub { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1).wrapping_sub(self.rd(rs2))),
            And { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) & self.rd(rs2)),
            Or { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) | self.rd(rs2)),
            Xor { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) ^ self.rd(rs2)),
            Sll { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) << (self.rd(rs2) & 31)),
            Srl { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) >> (self.rd(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.wr(rd, ((self.rd(rs1) as i32) >> (self.rd(rs2) & 31)) as u32);
            }
            Slt { rd, rs1, rs2 } => {
                self.wr(rd, ((self.rd(rs1) as i32) < (self.rd(rs2) as i32)) as u32);
            }
            Sltu { rd, rs1, rs2 } => self.wr(rd, (self.rd(rs1) < self.rd(rs2)) as u32),
            Mul { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1).wrapping_mul(self.rd(rs2))),
            Addi { rd, rs1, imm } => self.wr(rd, self.rd(rs1).wrapping_add(imm as i32 as u32)),
            Andi { rd, rs1, imm } => self.wr(rd, self.rd(rs1) & (imm as u16 as u32)),
            Ori { rd, rs1, imm } => self.wr(rd, self.rd(rs1) | (imm as u16 as u32)),
            Xori { rd, rs1, imm } => self.wr(rd, self.rd(rs1) ^ (imm as u16 as u32)),
            Slti { rd, rs1, imm } => {
                self.wr(rd, ((self.rd(rs1) as i32) < imm as i32) as u32);
            }
            Slli { rd, rs1, shamt } => self.wr(rd, self.rd(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.wr(rd, self.rd(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.wr(rd, ((self.rd(rs1) as i32) >> (shamt & 31)) as u32);
            }
            Lui { rd, imm } => self.wr(rd, (imm as u32) << 16),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.rd(base).wrapping_add(offset as i32 as u32) as usize;
                let v = match width {
                    MemWidth::Byte => {
                        let b = self.ram[addr] as u32;
                        if signed {
                            b as u8 as i8 as i32 as u32
                        } else {
                            b
                        }
                    }
                    MemWidth::Half => {
                        let h = u16::from_le_bytes([self.ram[addr], self.ram[addr + 1]]);
                        if signed {
                            h as i16 as i32 as u32
                        } else {
                            h as u32
                        }
                    }
                    MemWidth::Word => u32::from_le_bytes([
                        self.ram[addr],
                        self.ram[addr + 1],
                        self.ram[addr + 2],
                        self.ram[addr + 3],
                    ]),
                };
                self.wr(rd, v);
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = self.rd(base).wrapping_add(offset as i32 as u32) as usize;
                let v = self.rd(rs);
                match width {
                    MemWidth::Byte => self.ram[addr] = v as u8,
                    MemWidth::Half => {
                        self.ram[addr..addr + 2].copy_from_slice(&(v as u16).to_le_bytes());
                    }
                    MemWidth::Word => {
                        self.ram[addr..addr + 4].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            other => panic!("generator does not emit {other}"),
        }
    }
}

#[derive(Debug, Clone)]
enum Gen {
    R(u8, usize, usize, usize),
    I(u8, usize, usize, i16),
    Shift(u8, usize, usize, u8),
    Lui(usize, u16),
    LoadB(usize, u8, bool),
    LoadH(usize, u8, bool),
    LoadW(usize, u8),
    StoreB(usize, u8),
    StoreH(usize, u8),
    StoreW(usize, u8),
}

fn any_gen(rng: &mut impl Rng) -> Gen {
    fn reg<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.gen_range(0usize..16)
    }
    match rng.gen_range(0u32..10) {
        0 => Gen::R(rng.gen_range(0u8..11), reg(rng), reg(rng), reg(rng)),
        1 => Gen::I(
            rng.gen_range(0u8..5),
            reg(rng),
            reg(rng),
            rng.next_u64() as i16,
        ),
        2 => Gen::Shift(
            rng.gen_range(0u8..3),
            reg(rng),
            reg(rng),
            rng.gen_range(0u8..32),
        ),
        3 => Gen::Lui(reg(rng), rng.next_u64() as u16),
        4 => Gen::LoadB(reg(rng), rng.gen_range(0u8..16), rng.gen_bool(0.5)),
        5 => Gen::LoadH(reg(rng), rng.gen_range(0u8..8), rng.gen_bool(0.5)),
        6 => Gen::LoadW(reg(rng), rng.gen_range(0u8..4)),
        7 => Gen::StoreB(reg(rng), rng.gen_range(0u8..16)),
        8 => Gen::StoreH(reg(rng), rng.gen_range(0u8..8)),
        _ => Gen::StoreW(reg(rng), rng.gen_range(0u8..4)),
    }
}

fn lower(g: &Gen) -> Inst {
    let r = |i: usize| Reg::from_index(i).unwrap();
    match *g {
        Gen::R(op, d, a, b) => {
            let (rd, rs1, rs2) = (r(d), r(a), r(b));
            match op {
                0 => Inst::Add { rd, rs1, rs2 },
                1 => Inst::Sub { rd, rs1, rs2 },
                2 => Inst::And { rd, rs1, rs2 },
                3 => Inst::Or { rd, rs1, rs2 },
                4 => Inst::Xor { rd, rs1, rs2 },
                5 => Inst::Sll { rd, rs1, rs2 },
                6 => Inst::Srl { rd, rs1, rs2 },
                7 => Inst::Sra { rd, rs1, rs2 },
                8 => Inst::Slt { rd, rs1, rs2 },
                9 => Inst::Sltu { rd, rs1, rs2 },
                _ => Inst::Mul { rd, rs1, rs2 },
            }
        }
        Gen::I(op, d, a, imm) => {
            let (rd, rs1) = (r(d), r(a));
            match op {
                0 => Inst::Addi { rd, rs1, imm },
                1 => Inst::Andi { rd, rs1, imm },
                2 => Inst::Ori { rd, rs1, imm },
                3 => Inst::Xori { rd, rs1, imm },
                _ => Inst::Slti { rd, rs1, imm },
            }
        }
        Gen::Shift(op, d, a, shamt) => {
            let (rd, rs1) = (r(d), r(a));
            match op {
                0 => Inst::Slli { rd, rs1, shamt },
                1 => Inst::Srli { rd, rs1, shamt },
                _ => Inst::Srai { rd, rs1, shamt },
            }
        }
        Gen::Lui(d, imm) => Inst::Lui { rd: r(d), imm },
        Gen::LoadB(d, a, signed) => Inst::Load {
            rd: r(d),
            base: Reg::R0,
            offset: a as i16,
            width: MemWidth::Byte,
            signed,
        },
        Gen::LoadH(d, a, signed) => Inst::Load {
            rd: r(d),
            base: Reg::R0,
            offset: a as i16 * 2,
            width: MemWidth::Half,
            signed,
        },
        Gen::LoadW(d, a) => Inst::Load {
            rd: r(d),
            base: Reg::R0,
            offset: a as i16 * 4,
            width: MemWidth::Word,
            signed: true,
        },
        Gen::StoreB(s, a) => Inst::Store {
            rs: r(s),
            base: Reg::R0,
            offset: a as i16,
            width: MemWidth::Byte,
        },
        Gen::StoreH(s, a) => Inst::Store {
            rs: r(s),
            base: Reg::R0,
            offset: a as i16 * 2,
            width: MemWidth::Half,
        },
        Gen::StoreW(s, a) => Inst::Store {
            rs: r(s),
            base: Reg::R0,
            offset: a as i16 * 4,
            width: MemWidth::Word,
        },
    }
}

#[test]
fn machine_agrees_with_independent_model() {
    // Deterministic seeded sweep: 256 random straight-line programs.
    let mut rng = DefaultRng::seed_from_u64(0xD1FF);
    for case in 0..256 {
        let len = rng.gen_range(1usize..60);
        let steps: Vec<Gen> = (0..len).map(|_| any_gen(&mut rng)).collect();
        let mut seed_data = vec![0u8; RAM as usize];
        rng.fill_bytes(&mut seed_data);

        let insts: Vec<Inst> = steps.iter().map(lower).collect();
        let program = Program::new("diff", insts.clone(), seed_data.clone(), RAM);

        let mut machine = Machine::new(&program);
        let status = machine.run(10_000);
        assert!(status.is_clean_halt(), "case {case}: {status:?}");

        let mut model = Model::new(&seed_data);
        for inst in insts {
            model.exec(inst);
        }

        for r in Reg::ALL {
            assert_eq!(
                machine.reg(r),
                model.rd(r),
                "case {case}: register {r} disagrees"
            );
        }
        assert_eq!(machine.ram().to_vec(), &model.ram[..], "case {case}");
        assert_eq!(machine.cycle(), steps.len() as u64, "case {case}");
    }
}

/// Observer-attached and observer-free runs share one stepping entry
/// point (`run_to` used to silently step with `NullObserver` while
/// `run_observed` took the generic path): an observer must never perturb
/// execution, so both report identical cycle counts and final
/// architectural state — with the block engine on and off — and the two
/// engines must feed an attached observer the exact same event streams.
#[test]
fn observer_attached_and_observer_free_runs_agree() {
    use sofi::machine::{MachineConfig, RecordingObserver};
    let mut rng = DefaultRng::seed_from_u64(0x0B5E);
    for case in 0..64 {
        let len = rng.gen_range(1usize..60);
        let steps: Vec<Gen> = (0..len).map(|_| any_gen(&mut rng)).collect();
        let mut seed_data = vec![0u8; RAM as usize];
        rng.fill_bytes(&mut seed_data);
        let insts: Vec<Inst> = steps.iter().map(lower).collect();
        let program = Program::new("diff", insts, seed_data, RAM);

        let mut observers = Vec::new();
        for block_engine in [true, false] {
            let config = MachineConfig {
                block_engine,
                ..MachineConfig::default()
            };
            let mut plain = Machine::with_config(&program, config);
            let plain_status = plain.run(10_000);
            let mut observed = Machine::with_config(&program, config);
            let mut obs = RecordingObserver::default();
            let observed_status = observed.run_observed(10_000, &mut obs);
            assert_eq!(
                plain_status, observed_status,
                "case {case} (blocks={block_engine}): status"
            );
            assert_eq!(
                plain.cycle(),
                observed.cycle(),
                "case {case} (blocks={block_engine}): cycle count"
            );
            assert_eq!(
                plain.state_digest(),
                observed.state_digest(),
                "case {case} (blocks={block_engine}): final state"
            );
            observers.push(obs);
        }
        let steps_obs = observers.pop().unwrap();
        let blocks_obs = observers.pop().unwrap();
        assert_eq!(
            blocks_obs.accesses, steps_obs.accesses,
            "case {case}: engines reported different memory-access streams"
        );
        assert_eq!(
            blocks_obs.reg_accesses, steps_obs.reg_accesses,
            "case {case}: engines reported different register-access streams"
        );
    }
}

/// The same differential check via the text assembler as a second front
/// end: `Asm`-built and text-assembled variants must produce identical
/// machine behaviour.
#[test]
fn builder_and_text_frontends_agree() {
    let mut b = Asm::with_name("x");
    let buf = b.data_space("buf", 8);
    b.li(Reg::R1, 0x1234);
    b.sw(Reg::R1, Reg::R0, buf.offset());
    b.lh(Reg::R2, Reg::R0, buf.offset());
    b.serial_out(Reg::R2);
    let built = b.build().unwrap();

    let text = sofi::isa::assemble_text(
        "x",
        "
        .data
        buf: .space 8
        .text
        li r1, 0x1234
        sw r1, buf(r0)
        lh r2, buf(r0)
        serial r2
        ",
    )
    .unwrap();

    let mut m1 = Machine::new(&built);
    let mut m2 = Machine::new(&text);
    m1.run(100);
    m2.run(100);
    assert_eq!(m1.serial(), m2.serial());
    assert_eq!(m1.cycle(), m2.cycle());
}
