//! Properties of the §IV dilution transformations.
//!
//! * Tail NOP dilution and memory dilution never change the absolute
//!   failure count of *any* program (their added coordinates are dormant
//!   by construction) while inflating coverage.
//! * Front NOP/load dilution is failure-invariant for programs without
//!   boot-initialized live data (like the paper's "Hi") — and for
//!   programs *with* such data it can only push `F` *up* (the data sits
//!   exposed longer), never down: either way the transformation is no
//!   fault-tolerance mechanism, yet coverage rises.

use sofi::campaign::{Campaign, CampaignConfig};
use sofi::harden::{load_dilution, memory_dilution, nop_dilution, nop_dilution_tail};
use sofi::isa::Program;
use sofi::metrics::{fault_coverage, Weighting};
use sofi::workloads::{crc32, fib, hi, strrev, Variant};
use sofi_rng::{DefaultRng, Rng};

fn scan(program: &Program) -> (u64, f64) {
    let campaign =
        Campaign::with_config(program, CampaignConfig::sequential()).expect("golden run");
    let result = campaign.run_full_defuse();
    (
        result.failure_weight(),
        fault_coverage(&result, Weighting::Weighted),
    )
}

#[test]
fn tail_and_memory_dilution_preserve_failures_universally() {
    for base in [hi(), crc32(), strrev(), fib(Variant::Baseline)] {
        let (f0, c0) = scan(&base);
        for (name, diluted) in [
            ("tail-dft", nop_dilution_tail(&base, 13)),
            ("mem", memory_dilution(&base, 64)),
        ] {
            let (f, c) = scan(&diluted);
            assert_eq!(f, f0, "{name} changed F on {}", base.name);
            assert!(c >= c0, "{name} lowered coverage on {}", base.name);
            if f0 > 0 {
                assert!(c > c0, "{name} must inflate coverage on {}", base.name);
            }
        }
    }
}

#[test]
fn front_dilution_never_reduces_failures() {
    // Note front dilution makes no promise about the *coverage* direction
    // on programs with boot-initialized live data: the added exposure of
    // that data can outweigh the fault-space growth (observed on crc32,
    // recorded in EXPERIMENTS.md). The failure count, however, can only
    // stay or grow — a no-op transform never removes a failure.
    for base in [hi(), crc32(), strrev(), fib(Variant::Baseline)] {
        let (f0, _) = scan(&base);
        for (name, diluted) in [
            ("dft", nop_dilution(&base, 13)),
            ("dft'", load_dilution(&base, 13, &[0])),
        ] {
            let (f, _) = scan(&diluted);
            assert!(
                f >= f0,
                "{name} reduced F on {} ({f} < {f0}) — impossible for a no-op transform",
                base.name
            );
        }
    }
}

#[test]
fn front_dilution_exact_on_runtime_initialized_programs() {
    // "Hi" stores its data at runtime: front dilution is exactly
    // failure-invariant there (the paper's setting).
    let (f0, _) = scan(&hi());
    for n in [1, 4, 32] {
        let (f, _) = scan(&nop_dilution(&hi(), n));
        assert_eq!(f, f0);
        let (f, _) = scan(&load_dilution(&hi(), n, &[0, 1]));
        assert_eq!(f, f0);
    }
}

/// Coverage under NOP dilution follows the closed form
/// `c' = 1 − F / ((Δt + n)·Δm)` — monotonically increasing in n.
#[test]
fn nop_dilution_coverage_closed_form() {
    // Deterministic seeded sweep over random dilution amounts.
    let mut rng = DefaultRng::seed_from_u64(0xD17);
    let base = hi();
    let (f, _) = scan(&base);
    for _ in 0..8 {
        let n = rng.gen_range(1usize..100);
        let diluted = nop_dilution(&base, n);
        let (f2, c2) = scan(&diluted);
        assert_eq!(f2, f, "n = {n}");
        let w = (8 + n as u64) * 16;
        let expect = 1.0 - f as f64 / w as f64;
        assert!((c2 - expect).abs() < 1e-12, "n = {n}");
    }
}
