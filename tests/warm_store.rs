//! Warm-store oracle: the persistent cross-campaign memo store must be
//! sound (never change outcomes), effective (a second submission of the
//! same workload hits persisted facts), and durable (facts survive a
//! daemon kill/restart, and a torn tail left by a crash mid-append is
//! truncated, not propagated).
//!
//! The sweep covers every workload in the suite × both fault domains:
//! a first daemon incarnation runs each campaign once and feeds the
//! store, is then dropped ("killed") with garbage appended to the store
//! file to simulate a write torn by the kill, and a second incarnation
//! re-submits every campaign. Each second run must return a
//! bit-identical [`sofi_campaign::CampaignResult`] *and* report >0
//! persisted-store hits.

use sofi::campaign::FaultDomain;
use sofi::workloads::all_baselines;
use sofi_campaign::{CampaignConfig, CampaignResult, ExecutorStats};
use sofi_isa::Program;
use sofi_serve::{JobSpec, JobState, Scheduler, ServeConfig, SubmitOutcome};
use std::collections::HashMap;
use std::path::PathBuf;

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sofi-warm-store-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{tag}.{ext}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn spec(program: &Program, domain: FaultDomain) -> JobSpec {
    JobSpec {
        name: program.name.clone(),
        source: program.to_source(),
        domain,
        config: CampaignConfig::default(),
        warm_store: true,
    }
}

/// Submits every workload × domain to the scheduler and returns each
/// job's final result + stats keyed by `(name, domain)`.
fn run_suite(
    sched: &Scheduler,
    programs: &[Program],
) -> HashMap<(String, FaultDomain), (CampaignResult, ExecutorStats)> {
    let mut jobs = Vec::new();
    for program in programs {
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let SubmitOutcome::Accepted(id) = sched.submit(spec(program, domain)) else {
                panic!("daemon refused {}/{domain:?}", program.name);
            };
            jobs.push((program.name.clone(), domain, id));
        }
    }
    sched.wait_idle();
    let mut out = HashMap::new();
    for (name, domain, id) in jobs {
        let status = sched.status(Some(id)).unwrap().remove(0);
        assert_eq!(
            status.state,
            JobState::Done,
            "{name}/{domain:?}: {}",
            status.error
        );
        out.insert((name, domain), sched.result(id).unwrap());
    }
    out
}

#[test]
fn second_submission_hits_persisted_facts_across_daemon_restart() {
    let journal1 = temp_path("oracle-a", "journal");
    let journal2 = temp_path("oracle-b", "journal");
    let store = temp_path("oracle", "store");
    let programs = all_baselines();
    let config = || ServeConfig {
        workers: 2,
        queue_capacity: 64, // the whole 24-job sweep is queued up front
        batch_size: 256,
        warm_store: Some(store.clone()),
        ..ServeConfig::default()
    };

    // First incarnation: cold store. Every campaign runs in full and
    // feeds its fresh fault-equivalence facts into the store.
    let sched = Scheduler::open(&journal1, config()).unwrap();
    let t0 = std::time::Instant::now();
    let first = run_suite(&sched, &programs);
    let cold = t0.elapsed();
    for ((name, domain), (_, stats)) in &first {
        assert_eq!(
            stats.store_hits, 0,
            "{name}/{domain:?}: cold store cannot produce persisted hits"
        );
    }
    drop(sched); // "kill": the daemon process goes away

    // The kill may tear an in-flight store append: simulate it with half
    // a record (a plausible length prefix, then truncation). Recovery
    // must cut the tail and keep the valid prefix appendable.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&store)
            .unwrap();
        f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE])
            .unwrap();
    }

    // Second incarnation: fresh journal, same store. Every re-submission
    // must be answered partly from persisted facts and remain
    // bit-identical to the first run.
    let sched = Scheduler::open(&journal2, config()).unwrap();
    let t1 = std::time::Instant::now();
    let second = run_suite(&sched, &programs);
    eprintln!(
        "sweep wall-clock: cold {:.2?}, warm {:.2?}",
        cold,
        t1.elapsed()
    );
    assert_eq!(first.len(), second.len());
    for ((name, domain), (result, stats)) in &second {
        let (expected, _) = &first[&(name.clone(), *domain)];
        assert_eq!(
            result, expected,
            "{name}/{domain:?}: warm-store run changed outcomes"
        );
        assert!(
            stats.store_hits > 0,
            "{name}/{domain:?}: no persisted hits on a warmed store"
        );
        // Visible with --nocapture: the measured warm-run hit profile.
        eprintln!(
            "warm {name}/{domain:?}: {}/{} experiments from the store ({} memo hits total)",
            stats.store_hits, stats.experiments, stats.memo_hits
        );
    }
    drop(sched);
    std::fs::remove_file(&journal1).unwrap();
    std::fs::remove_file(&journal2).unwrap();
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn cold_submissions_bypass_the_store() {
    let journal = temp_path("cold", "journal");
    let store = temp_path("cold", "store");
    let program = &all_baselines()[0];
    let sched = Scheduler::open(
        &journal,
        ServeConfig {
            workers: 1,
            warm_store: Some(store.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Warm the store, then submit the same campaign with the spec's
    // warm_store cleared (`submit --cold`): outcomes stay identical but
    // nothing is preloaded, so zero persisted hits.
    let SubmitOutcome::Accepted(a) = sched.submit(spec(program, FaultDomain::Memory)) else {
        panic!("refused");
    };
    sched.wait_idle();
    let (warm_result, _) = sched.result(a).unwrap();

    let SubmitOutcome::Accepted(b) = sched.submit(JobSpec {
        warm_store: false,
        ..spec(program, FaultDomain::Memory)
    }) else {
        panic!("refused");
    };
    sched.wait_idle();
    let (cold_result, cold_stats) = sched.result(b).unwrap();
    assert_eq!(cold_result, warm_result);
    assert_eq!(
        cold_stats.store_hits, 0,
        "--cold submission consulted the store"
    );

    drop(sched);
    std::fs::remove_file(&journal).unwrap();
    std::fs::remove_file(&store).unwrap();
}
