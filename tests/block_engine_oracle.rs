//! Oracle for the pre-decoded basic-block execution engine: on every
//! benchmark, in both fault domains, a campaign executing through the
//! µop engine (the default) must be bit-identical to one forced onto the
//! cycle-exact single-step interpreter (`MachineConfig::block_engine:
//! false`) — identical golden runs (including the full memory- and
//! register-access traces, so observed execution is covered too),
//! identical outcomes from the naive reference executor, and identical
//! outcomes from the fully composed default executor (fork, convergence
//! and memoization), whose checkpoint probes and injection cycles are
//! exactly the boundaries the engine must not blur.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::trace::GoldenRun;
use sofi::workloads::{all_baselines, sensor, sensor_events};

/// The same campaign configuration with the block engine forced off.
fn stepping(mut config: CampaignConfig) -> CampaignConfig {
    config.machine.block_engine = false;
    config
}

/// Field-by-field golden-run equality (the struct holds the complete
/// observable behaviour plus both access traces).
fn assert_golden_eq(blocks: &GoldenRun, steps: &GoldenRun, name: &str) {
    assert_eq!(blocks.cycles, steps.cycles, "{name}: golden cycle count");
    assert_eq!(blocks.ram_bits, steps.ram_bits, "{name}: golden ram bits");
    assert_eq!(blocks.serial, steps.serial, "{name}: golden serial output");
    assert_eq!(
        blocks.exit_code, steps.exit_code,
        "{name}: golden exit code"
    );
    assert_eq!(
        blocks.detect_count, steps.detect_count,
        "{name}: golden detections"
    );
    assert_eq!(blocks.trace, steps.trace, "{name}: golden memory trace");
    assert_eq!(
        blocks.reg_trace, steps.reg_trace,
        "{name}: golden register trace"
    );
}

/// Both campaigns of one program, both domains, all three executor
/// paths, compared experiment-by-experiment.
fn assert_campaigns_identical(blocks: &Campaign, steps: &Campaign, name: &str) {
    assert_golden_eq(blocks.golden(), steps.golden(), name);
    for (domain, plan) in [
        (FaultDomain::Memory, blocks.plan()),
        (FaultDomain::RegisterFile, blocks.register_plan()),
    ] {
        let step_naive = steps.run_experiments_naive(domain, &plan.experiments);
        let block_naive = blocks.run_experiments_naive(domain, &plan.experiments);
        assert_eq!(
            block_naive, step_naive,
            "{name}/{domain:?}: block engine changed naive-executor outcomes"
        );
        let (block_composed, _) = blocks.run_experiments_stats(domain, &plan.experiments);
        assert_eq!(
            block_composed, step_naive,
            "{name}/{domain:?}: block engine changed composed-executor outcomes"
        );
        let (step_composed, _) = steps.run_experiments_stats(domain, &plan.experiments);
        assert_eq!(
            step_composed, step_naive,
            "{name}/{domain:?}: stepping composed executor self-check failed"
        );
    }
}

#[test]
fn block_engine_matches_step_interpreter_on_every_workload() {
    for program in all_baselines() {
        let blocks = Campaign::with_config(&program, CampaignConfig::default()).expect("golden");
        let steps =
            Campaign::with_config(&program, stepping(CampaignConfig::default())).expect("golden");
        assert_campaigns_identical(&blocks, &steps, &program.name);
    }
}

#[test]
fn block_engine_matches_step_interpreter_with_external_events() {
    // External-event latch cycles are the one boundary the dispatcher
    // must fall back to single-stepping for even mid-run; the sensor
    // workload's schedule exercises every delivery.
    let program = sensor();
    let blocks = Campaign::with_events(&program, CampaignConfig::default(), sensor_events())
        .expect("golden");
    let steps = Campaign::with_events(
        &program,
        stepping(CampaignConfig::default()),
        sensor_events(),
    )
    .expect("golden");
    assert_campaigns_identical(&blocks, &steps, "sensor");
}
