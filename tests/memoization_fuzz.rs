//! Seeded fuzz battery for fault-equivalence memoization.
//!
//! Two properties, each over deterministic randomly generated programs
//! (straight-line ALU/memory/serial churn plus forward-only branches, so
//! every program terminates) and random fault lists in both domains:
//!
//! 1. the memoizing executor — alone and composed with convergence
//!    termination — is outcome-identical to the naive replay executor;
//! 2. the state digest the memo is keyed on behaves like the identity on
//!    architectural state: `digest(a) == digest(b)` exactly when the
//!    architecturally visible state (registers, PC, cycle, status,
//!    serial, detection count, RAM content) is equal;
//! 3. the incrementally maintained digest (rolling RAM page
//!    contributions + resumable serial hash) equals the from-scratch
//!    re-hash of the same state after any interleaving of partial runs,
//!    mid-run bit flips and copy-on-write forks.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::isa::{Asm, Program, Reg};
use sofi::machine::{Machine, REG_FILE_BITS};
use sofi::space::{Experiment, FaultCoord};
use sofi_rng::{DefaultRng, Rng};

const DATA_BYTES: u32 = 48;

fn reg(rng: &mut impl Rng) -> Reg {
    Reg::from_index(rng.gen_range(1usize..8)).unwrap()
}

/// Emits one random instruction confined to registers r1..r7 and the
/// `buf` data region (all accesses aligned by construction, so a fault-
/// free run can never trap).
fn emit_step(a: &mut Asm, rng: &mut impl Rng, buf_offset: i16) {
    match rng.gen_range(0u32..10) {
        0 | 1 => {
            let (d, x, y) = (reg(rng), reg(rng), reg(rng));
            match rng.gen_range(0u32..6) {
                0 => a.add(d, x, y),
                1 => a.sub(d, x, y),
                2 => a.xor(d, x, y),
                3 => a.and(d, x, y),
                4 => a.mul(d, x, y),
                _ => a.slt(d, x, y),
            };
        }
        2 => {
            a.addi(reg(rng), reg(rng), rng.gen_range(-64i16..64));
        }
        3 => {
            let off = buf_offset + (rng.gen_range(0u32..DATA_BYTES / 4) * 4) as i16;
            a.sw(reg(rng), Reg::R0, off);
        }
        4 => {
            let off = buf_offset + (rng.gen_range(0u32..DATA_BYTES / 4) * 4) as i16;
            a.lw(reg(rng), Reg::R0, off);
        }
        5 => {
            let off = buf_offset + rng.gen_range(0u32..DATA_BYTES) as i16;
            if rng.gen_bool(0.5) {
                a.sb(reg(rng), Reg::R0, off);
            } else {
                a.lb(reg(rng), Reg::R0, off);
            }
        }
        6 => {
            a.serial_out(reg(rng));
        }
        7 => {
            a.li(reg(rng), rng.gen_range(-1000i32..1000));
        }
        _ => {
            a.nop();
        }
    }
}

/// A random terminating program: seeded registers, then a mix of random
/// steps and forward-only skip blocks, then a final serial signature.
fn random_program(seed: u64) -> Program {
    let mut rng = DefaultRng::seed_from_u64(seed);
    let mut a = Asm::with_name(format!("fuzz-{seed:016x}"));
    let buf = a.data_space("buf", DATA_BYTES);
    let buf_offset = buf.offset();
    a.li(Reg::R1, rng.gen_range(1i32..100));
    a.li(Reg::R2, rng.gen_range(1i32..100));
    for _ in 0..rng.gen_range(10usize..40) {
        if rng.gen_bool(0.15) {
            // Forward-only branch over a short block: introduces control-
            // flow divergence under faults without risking nontermination.
            let skip = a.new_label();
            let (x, y) = (reg(&mut rng), reg(&mut rng));
            match rng.gen_range(0u32..3) {
                0 => a.beq(x, y, skip),
                1 => a.bne(x, y, skip),
                _ => a.blt(x, y, skip),
            };
            for _ in 0..rng.gen_range(1usize..4) {
                emit_step(&mut a, &mut rng, buf_offset);
            }
            a.bind(skip);
        } else {
            emit_step(&mut a, &mut rng, buf_offset);
        }
    }
    a.serial_out(Reg::R1);
    a.serial_out(Reg::R3);
    a.build().unwrap()
}

/// `n` random raw fault coordinates in a `cycles × bits` space, cycle-
/// sorted like a real plan (the executor accepts any order; sorting just
/// keeps the pristine machine moving forward).
fn random_experiments(rng: &mut impl Rng, cycles: u64, bits: u64, n: usize) -> Vec<Experiment> {
    let mut v: Vec<Experiment> = (0..n)
        .map(|i| Experiment {
            id: i as u32,
            coord: FaultCoord {
                cycle: rng.gen_range(1u64..cycles + 1),
                bit: rng.gen_range(0u64..bits),
            },
            weight: 1,
        })
        .collect();
    v.sort_unstable_by_key(|e| (e.coord.cycle, e.coord.bit, e.id));
    v
}

#[test]
fn fuzz_memoized_matches_naive_on_random_programs_and_faults() {
    let mut rng = DefaultRng::seed_from_u64(0xF0CC_ED01);
    for round in 0..8u32 {
        let program = random_program(rng.next_u64());
        // Both knobs on (the default), memoization alone, and the naive
        // reference with both off.
        let composed = Campaign::with_config(&program, CampaignConfig::sequential()).unwrap();
        let memo_only = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let naive = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                memoization: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let cycles = composed.golden().cycles;
        for (domain, bits) in [
            (FaultDomain::Memory, program.ram_size as u64 * 8),
            (FaultDomain::RegisterFile, REG_FILE_BITS),
        ] {
            let experiments = random_experiments(&mut rng, cycles, bits, 120);
            let expected = naive.run_experiments_naive(domain, &experiments);
            let (a, _) = composed.run_experiments_stats(domain, &experiments);
            assert_eq!(
                a, expected,
                "round {round} {}/{domain:?}: memo+convergence diverged from naive",
                program.name
            );
            let (b, _) = memo_only.run_experiments_stats(domain, &experiments);
            assert_eq!(
                b, expected,
                "round {round} {}/{domain:?}: memoization alone diverged from naive",
                program.name
            );
        }
    }
}

/// Architectural-state equality through the public accessors only — the
/// ground truth the digest is checked against.
fn arch_equal(a: &Machine, b: &Machine) -> bool {
    a.cycle() == b.cycle()
        && a.pc() == b.pc()
        && a.status() == b.status()
        && a.detect_count() == b.detect_count()
        && a.serial() == b.serial()
        && (0..16).all(|i| {
            let r = Reg::from_index(i).unwrap();
            a.reg(r) == b.reg(r)
        })
        && a.ram().to_vec() == b.ram().to_vec()
}

#[test]
fn fuzz_state_digest_equality_tracks_architectural_equality() {
    let mut rng = DefaultRng::seed_from_u64(0x00D1_6E57);
    let mut equal_pairs = 0u32;
    let mut unequal_pairs = 0u32;
    for _ in 0..6u32 {
        let program = random_program(rng.next_u64());
        let golden_cycles = {
            let mut m = Machine::new(&program);
            m.run(100_000);
            m.cycle()
        };
        for _ in 0..24u32 {
            // Two independently evolved machines: same program, possibly
            // different faults, paused at possibly different cycles.
            let mut machines: Vec<Machine> = (0..2)
                .map(|_| {
                    let mut m = Machine::new(&program);
                    m.run_to(rng.gen_range(0u64..golden_cycles));
                    if rng.gen_bool(0.7) {
                        let bits = program.ram_size as u64 * 8;
                        if rng.gen_bool(0.5) {
                            m.flip_bit(rng.gen_range(0u64..bits));
                        } else {
                            m.flip_reg_bit(rng.gen_range(0u64..REG_FILE_BITS));
                        }
                    }
                    m.run_to(rng.gen_range(0u64..2 * golden_cycles));
                    m
                })
                .collect();
            let (mut b, mut a) = (machines.pop().unwrap(), machines.pop().unwrap());
            let same = arch_equal(&a, &b);
            assert_eq!(
                a.state_digest() == b.state_digest(),
                same,
                "digest equality must coincide with architectural equality"
            );
            if same {
                equal_pairs += 1;
            } else {
                unequal_pairs += 1;
            }
            // A digest is a pure function of state: identical on a clone,
            // stable under re-computation.
            let mut c = a.clone();
            assert_eq!(c.state_digest(), a.state_digest());
        }
    }
    // The sweep must exercise both sides of the equivalence. Equal pairs
    // arise whenever neither machine got a fault (or a fault was fully
    // masked) and both paused at the same cycle.
    assert!(unequal_pairs > 0, "fuzz never produced distinct states");
    assert!(equal_pairs > 0, "fuzz never produced equal states");
}

/// Probes a machine both ways and asserts the incremental digest (rolling
/// page contributions + resumable serial accumulator) agrees with a full
/// from-scratch re-hash of the same state.
fn assert_incremental_matches_scratch(m: &mut Machine, what: &str) {
    let scratch = m.state_digest_from_scratch();
    assert_eq!(
        m.state_digest(),
        scratch,
        "{what}: incremental digest diverged from from-scratch re-hash"
    );
    // Probing must not perturb the accumulator: a second probe of the
    // unchanged state returns the same digest.
    assert_eq!(
        m.state_digest(),
        scratch,
        "{what}: digest unstable on re-probe"
    );
}

#[test]
fn fuzz_incremental_digest_matches_from_scratch_rehash() {
    let mut rng = DefaultRng::seed_from_u64(0x1DC4_E57A);
    for round in 0..6u32 {
        let program = random_program(rng.next_u64());
        let golden_cycles = {
            let mut m = Machine::new(&program);
            m.run(100_000);
            m.cycle()
        };
        let bits = program.ram_size as u64 * 8;
        // One lineage per round: a machine advanced in random increments,
        // flipped mid-run, probed between every mutation, and forked at
        // random points. Forks inherit the parent's cached page hashes
        // (copy-on-write), so a fork that dirties pages while the parent
        // stays clean — and vice versa — is exactly the aliasing the
        // incremental scheme has to survive.
        let mut m = Machine::new(&program);
        let mut forks: Vec<Machine> = Vec::new();
        for step in 0..24u32 {
            match rng.gen_range(0u32..5) {
                // Advance past a random boundary (possibly beyond the
                // golden run, possibly a no-op when already past it).
                0 | 1 => {
                    m.run_to(rng.gen_range(0u64..2 * golden_cycles));
                }
                // Mid-run fault injection in either domain.
                2 => {
                    if rng.gen_bool(0.5) {
                        m.flip_bit(rng.gen_range(0u64..bits));
                    } else {
                        m.flip_reg_bit(rng.gen_range(0u64..REG_FILE_BITS));
                    }
                }
                // Fork the current machine — sometimes pre-hashed so the
                // fork starts with a warm accumulator, sometimes cold.
                3 => {
                    if rng.gen_bool(0.5) {
                        let _ = m.state_digest();
                    }
                    forks.push(m.clone());
                }
                // Mutate and probe a previously taken fork; the parent's
                // digest must be unaffected (checked on the next probe).
                _ => {
                    if let Some(f) = forks.last_mut() {
                        f.run_to(rng.gen_range(0u64..2 * golden_cycles));
                        if rng.gen_bool(0.7) {
                            f.flip_bit(rng.gen_range(0u64..bits));
                        }
                        assert_incremental_matches_scratch(
                            f,
                            &format!("round {round} step {step} (fork)"),
                        );
                    }
                }
            }
            assert_incremental_matches_scratch(&mut m, &format!("round {round} step {step}"));
        }
        // Sweep the surviving forks once more: their cached hashes have
        // aliased, diverged and re-converged in arbitrary order by now.
        for (i, f) in forks.iter_mut().enumerate() {
            assert_incremental_matches_scratch(f, &format!("round {round} final fork {i}"));
        }
    }
}
