//! Fault-injection campaigns over benchmarks with deterministic external
//! input (§II-C: replayed events) — the full pipeline must stay valid.

use sofi::campaign::{Campaign, CampaignConfig, OutcomeClass};
use sofi::space::{ClassIndex, ClassRef};
use sofi::workloads::{sensor, sensor_events};
use std::collections::HashMap;

fn sensor_campaign() -> Campaign {
    Campaign::with_events(&sensor(), CampaignConfig::sequential(), sensor_events())
        .expect("golden run with events")
}

#[test]
fn golden_run_replays_the_schedule() {
    let c = sensor_campaign();
    let out = &c.golden().serial;
    assert_eq!(&out[..5], &[5, 9, 2, 14, 7]);
    assert_eq!(out[8], 37);
}

#[test]
fn event_driven_campaign_upholds_invariants() {
    let c = sensor_campaign();
    assert!(c.analysis().is_exact_partition());
    let r = c.run_full_defuse();
    assert!(r.covers_space());
    // Corrupting the log or the sum must be observable.
    assert!(r.failure_weight() > 0);
}

#[test]
fn pruning_stays_sound_under_replayed_events() {
    // The def/use argument relies on determinism; replayed events must not
    // break it. Full per-coordinate check against brute force.
    let c = sensor_campaign();
    let pruned = c.run_full_defuse();
    let brute = c.run_brute_force();
    assert_eq!(pruned.failure_weight(), brute.failure_weight());
    let index = ClassIndex::new(c.analysis(), c.plan());
    let by_id: HashMap<u32, OutcomeClass> = pruned
        .results
        .iter()
        .map(|r| (r.experiment.id, r.outcome.class()))
        .collect();
    for br in &brute.results {
        let expected = match index.lookup(br.experiment.coord) {
            ClassRef::Experiment(id) => by_id[&id],
            ClassRef::KnownBenign => OutcomeClass::NoEffect,
        };
        assert_eq!(br.outcome.class(), expected, "{}", br.experiment.coord);
    }
}

#[test]
fn experiments_see_events_at_absolute_cycles() {
    // A fault that delays nothing must not shift event delivery: two
    // campaigns with identical schedules produce identical results.
    let a = sensor_campaign().run_full_defuse();
    let b = sensor_campaign().run_full_defuse();
    assert_eq!(a, b);
}
