//! The concrete numbers the paper derives, regenerated end to end.

use sofi::campaign::Campaign;
use sofi::metrics::{
    compare_failures, exact_failures, fault_coverage, table1, PoissonModel, Weighting,
};
use sofi::workloads::{bin_sem2, hi, hi_dft, hi_dft_prime, sync2, Variant};

/// §IV-A: "Hi" has w = 128, F = 48, coverage 62.5 %.
#[test]
fn hi_baseline_numbers() {
    let c = Campaign::new(&hi()).unwrap();
    assert_eq!(c.golden().serial, b"Hi");
    let r = c.run_full_defuse();
    assert_eq!(r.space.size(), 128);
    assert_eq!(r.failure_weight(), 48);
    assert_eq!(fault_coverage(&r, Weighting::Weighted), 0.625);
}

/// §IV-B: DFT raises coverage to exactly 75 % without touching F.
#[test]
fn dft_dilution_numbers() {
    let r = Campaign::new(&hi_dft(4)).unwrap().run_full_defuse();
    assert_eq!(r.space.size(), 192);
    assert_eq!(r.failure_weight(), 48);
    assert_eq!(fault_coverage(&r, Weighting::Weighted), 0.75);
}

/// §IV-B: DFT′ (activated faults) behaves identically.
#[test]
fn dft_prime_numbers() {
    let r = Campaign::new(&hi_dft_prime(4)).unwrap().run_full_defuse();
    assert_eq!(r.space.size(), 192);
    assert_eq!(r.failure_weight(), 48);
    assert_eq!(fault_coverage(&r, Weighting::Weighted), 0.75);
}

/// §III-A / Table I: λ ≈ 1.33e-13 for 1 s × 1 MiB at the mean DRAM rate,
/// and multi-fault probabilities are negligible.
#[test]
fn table1_poisson_magnitudes() {
    let rows = table1(2);
    assert!((rows[1].probability / 1.328e-13 - 1.0).abs() < 5e-3);
    assert!(rows[2].probability < 1e-26);
    // The single-fault restriction is sound even at hypothetically raised
    // rates (§III-A footnote: g = 1e-20 keeps a 1e4 separation).
    let hot = PoissonModel::new(1e-20);
    let w = 1e9 * 8_388_608.0;
    assert!(hot.p_faults(1, w) / hot.p_faults(2, w) > 1e4);
}

/// Figure 2 / §V-B: the headline verdicts. bin_sem2's protection pays off
/// (r well below 1); sync2's hardening *worsens* its susceptibility by
/// more than a factor of five while its fault coverage still improves —
/// the wrong-design-decision trap.
#[test]
fn figure2_verdicts() {
    // bin_sem2: genuinely improves.
    let cb = Campaign::new(&bin_sem2(Variant::Baseline)).unwrap();
    let ch = Campaign::new(&bin_sem2(Variant::SumDmr)).unwrap();
    let fb = cb.run_full_defuse();
    let fh = ch.run_full_defuse();
    let cmp = compare_failures(&exact_failures(&fb), &exact_failures(&fh));
    assert!(cmp.ratio < 0.5, "bin_sem2 should improve strongly: {cmp}");
    assert!(
        fault_coverage(&fh, Weighting::Weighted) > fault_coverage(&fb, Weighting::Weighted),
        "coverage agrees for bin_sem2"
    );

    // sync2: coverage improves, failure count worsens > 5x.
    let cb = Campaign::new(&sync2(Variant::Baseline)).unwrap();
    let ch = Campaign::new(&sync2(Variant::SumDmr)).unwrap();
    let fb = cb.run_full_defuse();
    let fh = ch.run_full_defuse();
    assert!(
        fault_coverage(&fh, Weighting::Weighted) > fault_coverage(&fb, Weighting::Weighted),
        "sync2's coverage must (misleadingly) improve"
    );
    let cmp = compare_failures(&exact_failures(&fb), &exact_failures(&fh));
    assert!(
        cmp.ratio > 5.0,
        "sync2 must worsen by more than 5x (paper §V-B), got {cmp}"
    );
}

/// §III-D / Figure 2a vs 2b: unweighted accounting severely distorts the
/// coverages of the baseline benchmarks.
#[test]
fn weighting_changes_coverage_substantially() {
    for program in [bin_sem2(Variant::Baseline), sync2(Variant::Baseline)] {
        let r = Campaign::new(&program).unwrap().run_full_defuse();
        let unweighted = fault_coverage(&r, Weighting::Unweighted);
        let weighted = fault_coverage(&r, Weighting::Weighted);
        assert!(
            weighted - unweighted > 0.05,
            "{}: unweighted {unweighted:.3} vs weighted {weighted:.3}",
            program.name
        );
    }
}

/// §III-C: pruning effectiveness on the real benchmarks (the paper's eCos
/// sync2 shrinks by four orders of magnitude; ours by two-plus).
#[test]
fn pruning_reduction_factor() {
    let c = Campaign::new(&sync2(Variant::Baseline)).unwrap();
    assert!(c.plan().reduction_factor() > 50.0);
}
