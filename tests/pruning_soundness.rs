//! The defining property of def/use pruning (§III-C): it is a pure
//! optimization. For *random programs*, a pruned campaign expanded by its
//! equivalence classes must classify every raw fault-space coordinate
//! exactly like a brute-force scan that injects at each coordinate
//! individually.

use sofi::campaign::{Campaign, CampaignConfig, OutcomeClass};
use sofi::isa::{Asm, MemWidth, Program, Reg};
use sofi::space::{ClassIndex, ClassRef};
use sofi_rng::{DefaultRng, Rng};
use std::collections::HashMap;

/// One step of a random straight-line program over a 8-byte RAM.
#[derive(Debug, Clone)]
enum Step {
    Alu(u8, usize, usize, usize),
    Li(usize, i16),
    LoadB(usize, u8),
    LoadW(usize, u8),
    StoreB(usize, u8),
    StoreW(usize, u8),
    Out(usize),
}

fn any_step(rng: &mut impl Rng) -> Step {
    fn reg<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.gen_range(1usize..8) // r1..r7
    }
    match rng.gen_range(0u32..7) {
        0 => Step::Alu(rng.gen_range(0u8..6), reg(rng), reg(rng), reg(rng)),
        1 => Step::Li(reg(rng), rng.next_u64() as i16),
        2 => Step::LoadB(reg(rng), rng.gen_range(0u8..8)),
        3 => Step::LoadW(reg(rng), rng.gen_range(0u8..2)),
        4 => Step::StoreB(reg(rng), rng.gen_range(0u8..8)),
        5 => Step::StoreW(reg(rng), rng.gen_range(0u8..2)),
        _ => Step::Out(reg(rng)),
    }
}

fn build(steps: &[Step]) -> Program {
    let mut a = Asm::with_name("random");
    a.data_space("ram", 8);
    for step in steps {
        match *step {
            Step::Alu(op, d, x, y) => {
                let (d, x, y) = (reg(d), reg(x), reg(y));
                match op {
                    0 => a.add(d, x, y),
                    1 => a.sub(d, x, y),
                    2 => a.xor(d, x, y),
                    3 => a.and(d, x, y),
                    4 => a.or(d, x, y),
                    _ => a.mul(d, x, y),
                };
            }
            Step::Li(d, v) => {
                a.li(reg(d), v as i32);
            }
            Step::LoadB(d, addr) => {
                a.lbu(reg(d), Reg::R0, addr as i16);
            }
            Step::LoadW(d, word) => {
                a.lw(reg(d), Reg::R0, word as i16 * 4);
            }
            Step::StoreB(s, addr) => {
                a.sb(reg(s), Reg::R0, addr as i16);
            }
            Step::StoreW(s, word) => {
                a.sw(reg(s), Reg::R0, word as i16 * 4);
            }
            Step::Out(s) => {
                a.serial_out(reg(s));
            }
        }
    }
    // Always observable: dump RAM at the end through word loads.
    for w in 0..2 {
        a.lw(Reg::R1, Reg::R0, w * 4);
        a.serial_out(Reg::R1);
    }
    a.build().unwrap()
}

fn reg(i: usize) -> Reg {
    Reg::from_index(i).unwrap()
}

/// Checks `MemWidth` is exported (compile-time smoke for the public API).
#[allow(dead_code)]
fn width_is_public(_w: MemWidth) {}

#[test]
fn pruned_scan_equals_brute_force() {
    // Deterministic seeded sweep: 24 random straight-line programs.
    let mut rng = DefaultRng::seed_from_u64(0x50FD);
    for _ in 0..24 {
        let len = rng.gen_range(1usize..24);
        let steps: Vec<Step> = (0..len).map(|_| any_step(&mut rng)).collect();
        let program = build(&steps);
        let campaign =
            Campaign::with_config(&program, CampaignConfig::sequential()).expect("golden run");

        let pruned = campaign.run_full_defuse();
        let brute = campaign.run_brute_force();

        // Identical aggregate accounting...
        assert_eq!(brute.failure_weight(), pruned.failure_weight());
        assert_eq!(brute.benign_weight(), pruned.benign_weight());

        // ...and identical per-coordinate classification.
        let index = ClassIndex::new(campaign.analysis(), campaign.plan());
        let by_id: HashMap<u32, OutcomeClass> = pruned
            .results
            .iter()
            .map(|r| (r.experiment.id, r.outcome.class()))
            .collect();
        for br in &brute.results {
            let expected = match index.lookup(br.experiment.coord) {
                ClassRef::Experiment(id) => by_id[&id],
                ClassRef::KnownBenign => OutcomeClass::NoEffect,
            };
            assert_eq!(
                br.outcome.class(),
                expected,
                "coordinate {} of program {:?}",
                br.experiment.coord,
                steps
            );
        }
    }
}
