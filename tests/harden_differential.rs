//! Differential tests for every hardening mechanism: the protected build
//! of a workload must be observationally identical to its unprotected
//! twin on a fault-free (golden) run — same serial output, clean halt, no
//! spurious detections — while costing extra cycles. A protection that
//! changes golden behaviour would invalidate every comparison built on it
//! (the paper's ratios assume hardening only changes *susceptibility*).
//!
//! The same driver program is emitted once per mechanism through the
//! mechanism's load/store emitters, so any divergence is attributable to
//! the mechanism itself.

use sofi::harden::{
    load_dilution, memory_dilution, nop_dilution, nop_dilution_tail, HashDmrWord, ProtectedWord,
    Shield, TmrWord,
};
use sofi::isa::{Asm, Program, Reg};
use sofi::machine::{Machine, RunStatus};

const INIT: u32 = 5;

/// Emits the shared driver: three load → transform → serial → store
/// rounds over the mechanism's word. Registers r1..r4 belong to the
/// driver; r10..r12 are reserved as mechanism scratches.
fn driver(a: &mut Asm, load: &dyn Fn(&mut Asm, Reg), store: &dyn Fn(&mut Asm, Reg)) {
    load(a, Reg::R1);
    a.addi(Reg::R1, Reg::R1, 7);
    a.serial_out(Reg::R1);
    store(a, Reg::R1);
    load(a, Reg::R2);
    a.slli(Reg::R3, Reg::R2, 1);
    a.serial_out(Reg::R3);
    store(a, Reg::R3);
    load(a, Reg::R4);
    a.serial_out(Reg::R4);
    a.halt(0);
}

type Emitters = (Box<dyn Fn(&mut Asm, Reg)>, Box<dyn Fn(&mut Asm, Reg)>);

fn build(name: &str, mech: impl FnOnce(&mut Asm) -> Emitters) -> Program {
    let mut a = Asm::with_name(name);
    let (load, store) = mech(&mut a);
    driver(&mut a, load.as_ref(), store.as_ref());
    a.build().unwrap()
}

fn baseline() -> Program {
    build("plain", |a| {
        let w = a.data_word("w", INIT);
        (
            Box::new(move |a: &mut Asm, dst: Reg| {
                a.lw(dst, Reg::R0, w.offset());
            }),
            Box::new(move |a: &mut Asm, src: Reg| {
                a.sw(src, Reg::R0, w.offset());
            }),
        )
    })
}

/// Every protected build, named. The protected word is always the first
/// data declaration, so RAM bit 0 upward addresses its primary replica.
fn protected_variants() -> Vec<(&'static str, Program)> {
    vec![
        (
            "sumdmr",
            build("sumdmr", |a| {
                let w = ProtectedWord::declare(a, "w", INIT);
                (
                    Box::new(move |a: &mut Asm, dst: Reg| w.emit_load(a, dst, Reg::R10, Reg::R11)),
                    Box::new(move |a: &mut Asm, src: Reg| w.emit_store(a, src, Reg::R10)),
                )
            }),
        ),
        (
            "hashdmr",
            build("hashdmr", |a| {
                let w = HashDmrWord::declare(a, "w", INIT);
                (
                    Box::new(move |a: &mut Asm, dst: Reg| {
                        w.emit_load(a, dst, Reg::R10, Reg::R11, Reg::R12)
                    }),
                    Box::new(move |a: &mut Asm, src: Reg| w.emit_store(a, src, Reg::R10, Reg::R11)),
                )
            }),
        ),
        (
            "tmr",
            build("tmr", |a| {
                let w = TmrWord::declare(a, "w", INIT);
                (
                    Box::new(move |a: &mut Asm, dst: Reg| w.emit_load(a, dst, Reg::R10, Reg::R11)),
                    Box::new(move |a: &mut Asm, src: Reg| w.emit_store(a, src)),
                )
            }),
        ),
        (
            "shield-protected",
            build("shield-protected", |a| {
                let w = Shield::declare(a, "w", INIT, true);
                (
                    Box::new(move |a: &mut Asm, dst: Reg| w.emit_load(a, dst, Reg::R10, Reg::R11)),
                    Box::new(move |a: &mut Asm, src: Reg| w.emit_store(a, src, Reg::R10)),
                )
            }),
        ),
    ]
}

fn golden(p: &Program) -> Machine {
    let mut m = Machine::new(p);
    let status = m.run(1_000_000);
    assert_eq!(
        status,
        RunStatus::Halted { code: 0 },
        "{} did not halt cleanly",
        p.name
    );
    m
}

#[test]
fn every_mechanism_is_golden_transparent() {
    let base = golden(&baseline());
    assert!(!base.serial().is_empty());
    for (name, p) in protected_variants() {
        let m = golden(&p);
        assert_eq!(
            m.serial(),
            base.serial(),
            "{name}: protection changed golden output"
        );
        assert_eq!(m.detect_count(), 0, "{name}: spurious detection signal");
        assert!(
            m.cycle() > base.cycle(),
            "{name}: protection should cost cycles"
        );
        assert!(
            p.ram_size > baseline().ram_size,
            "{name}: protection should cost memory"
        );
    }
}

#[test]
fn shield_plain_is_bit_identical_to_baseline() {
    // The unprotected Shield build must be the *same machine code* as the
    // hand-written baseline, not merely output-equivalent: generators
    // rely on Shield to produce the true unprotected twin.
    let plain = build("shield-plain", |a| {
        let w = Shield::declare(a, "w", INIT, false);
        (
            Box::new(move |a: &mut Asm, dst: Reg| w.emit_load(a, dst, Reg::R10, Reg::R11)),
            Box::new(move |a: &mut Asm, src: Reg| w.emit_store(a, src, Reg::R10)),
        )
    });
    let base = baseline();
    assert_eq!(plain.insts, base.insts);
    assert_eq!(plain.data, base.data);
    let (mp, mb) = (golden(&plain), golden(&base));
    assert_eq!(mp.serial(), mb.serial());
    assert_eq!(mp.cycle(), mb.cycle());
}

#[test]
fn every_mechanism_masks_a_primary_replica_flip() {
    // Differential under fault: flip one bit in the primary replica
    // before the first instruction; every mechanism must still produce
    // the baseline serial and report the correction. (The protected word
    // is the first data declaration, so its primary starts at bit 0.)
    let base = golden(&baseline());
    for (name, p) in protected_variants() {
        for bit in [0u64, 9, 31] {
            let mut m = Machine::new(&p);
            m.flip_bit(bit);
            let status = m.run(1_000_000);
            assert_eq!(
                status,
                RunStatus::Halted { code: 0 },
                "{name}/bit {bit}: corrupted run did not recover"
            );
            assert_eq!(
                m.serial(),
                base.serial(),
                "{name}/bit {bit}: correction changed output"
            );
            assert!(
                m.detect_count() >= 1,
                "{name}/bit {bit}: correction was not signalled"
            );
        }
    }
}

#[test]
fn dilution_transforms_preserve_golden_behaviour() {
    for program in [
        sofi::workloads::hi(),
        sofi::workloads::fib(sofi::workloads::Variant::Baseline),
        sofi::workloads::bubble_sort(),
    ] {
        let base = golden(&program);
        let mut diluted = vec![
            nop_dilution(&program, 13),
            nop_dilution_tail(&program, 11),
            memory_dilution(&program, 64),
        ];
        if program.ram_size > 0 {
            diluted.push(load_dilution(&program, 9, &[0]));
        }
        for d in diluted {
            let m = golden(&d);
            assert_eq!(
                m.serial(),
                base.serial(),
                "{}: dilution changed output",
                d.name
            );
            assert_eq!(m.detect_count(), base.detect_count(), "{}", d.name);
        }
    }
}
