//! Statistical behaviour of the sampling estimators across crates:
//! unbiased samplers converge on full-scan ground truth, the Pitfall-2
//! sampler diverges when class weight correlates with outcome, and
//! extrapolated counts are invariant to the sample size.

use sofi::campaign::{Campaign, SamplingMode};
use sofi::isa::{Asm, Program, Reg};
use sofi::metrics::extrapolated_failures;
use sofi::workloads::{crc32, strrev};
use sofi_rng::DefaultRng;

/// Long-lived failing config bytes + masses of short-lived masked scratch
/// traffic: maximal weight/outcome correlation.
fn skewed_program() -> Program {
    let mut a = Asm::with_name("skewed");
    let config = a.data_bytes("config", &[11, 22, 33, 44]);
    let scratch = a.data_word("scratch", 0);
    a.li(Reg::R4, 60);
    let top = a.label_here();
    a.sw(Reg::R4, Reg::R0, scratch.offset());
    a.lw(Reg::R5, Reg::R0, scratch.offset());
    a.and(Reg::R5, Reg::R5, Reg::R0); // discard: always masked
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, top);
    for i in 0..4 {
        a.lbu(Reg::R6, Reg::R0, config.at(i).offset());
        a.serial_out(Reg::R6);
    }
    a.build().unwrap()
}

#[test]
fn estimators_converge_to_exact_counts() {
    for program in [crc32(), strrev()] {
        let campaign = Campaign::new(&program).unwrap();
        let exact = campaign.run_full_defuse().failure_weight() as f64;
        let mut rng = DefaultRng::seed_from_u64(99);
        for mode in [SamplingMode::UniformRaw, SamplingMode::WeightedClasses] {
            let sampled = campaign.run_sampled(60_000, mode, &mut rng);
            let est = extrapolated_failures(&sampled, 0.99);
            assert!(
                est.ci.0 <= exact && exact <= est.ci.1,
                "{} / {mode:?}: exact {exact} outside CI {:?}",
                program.name,
                est.ci
            );
            assert!(
                (est.failures - exact).abs() / exact < 0.05,
                "{} / {mode:?}: {} vs {exact}",
                program.name,
                est.failures
            );
        }
    }
}

#[test]
fn biased_sampler_is_demonstrably_biased() {
    let campaign = Campaign::new(&skewed_program()).unwrap();
    let full = campaign.run_full_defuse();
    let truth = full.failure_weight() as f64 / campaign.plan().experiment_weight() as f64;

    let mut rng = DefaultRng::seed_from_u64(5);
    let fair = campaign.run_sampled(40_000, SamplingMode::WeightedClasses, &mut rng);
    let biased = campaign.run_sampled(40_000, SamplingMode::BiasedPerClass, &mut rng);

    let fair_frac = fair.failure_hits() as f64 / fair.draws as f64;
    let biased_frac = biased.failure_hits() as f64 / biased.draws as f64;

    assert!(
        (fair_frac - truth).abs() < 0.02,
        "fair {fair_frac} vs {truth}"
    );
    assert!(
        (biased_frac - truth).abs() > 0.3,
        "the biased sampler should be far off: {biased_frac} vs {truth}"
    );
}

#[test]
fn extrapolation_is_sample_size_invariant() {
    let campaign = Campaign::new(&crc32()).unwrap();
    let mut estimates = Vec::new();
    for (seed, draws) in [(1u64, 20_000u64), (2, 60_000), (3, 120_000)] {
        let mut rng = DefaultRng::seed_from_u64(seed);
        let s = campaign.run_sampled(draws, SamplingMode::UniformRaw, &mut rng);
        estimates.push(extrapolated_failures(&s, 0.95).failures);
    }
    let spread = estimates
        .iter()
        .fold(0.0f64, |m, &e| m.max((e - estimates[0]).abs()));
    assert!(
        spread / estimates[0] < 0.06,
        "extrapolated estimates should agree: {estimates:?}"
    );
}
