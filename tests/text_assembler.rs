//! The text assembler as an end-to-end front end: `.s` sources assemble,
//! execute, and feed campaigns exactly like builder-generated programs.

use sofi::campaign::Campaign;
use sofi::isa::assemble_text;
use sofi::machine::{Machine, RunStatus};

#[test]
fn textual_hi_reproduces_figure3() {
    let src = "
        ; The paper's 'Hi' benchmark, Figure 3a.
        .data
        msg: .space 2
        .text
        li r1, 'H'
        sb r1, msg(r0)
        li r1, 'i'
        sb r1, msg+1(r0)
        lb r2, msg(r0)
        serial r2
        lb r2, msg+1(r0)
        serial r2
    ";
    let program = assemble_text("hi_text", src).unwrap();
    let mut m = Machine::new(&program);
    assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
    assert_eq!(m.serial(), b"Hi");
    assert_eq!(m.cycle(), 8);

    let result = Campaign::new(&program).unwrap().run_full_defuse();
    assert_eq!(result.space.size(), 128);
    assert_eq!(result.failure_weight(), 48);
}

#[test]
fn textual_loop_with_functions() {
    let src = "
        .data
        counter: .word 0
        .text
        li r4, 5
        main_loop:
            call bump
            addi r4, r4, -1
            bne r4, r0, main_loop
        lw r5, counter(r0)
        serial r5
        halt 0

        bump:
            lw r1, counter(r0)
            addi r1, r1, 2
            sw r1, counter(r0)
            ret
    ";
    let program = assemble_text("bump", src).unwrap();
    let mut m = Machine::new(&program);
    assert_eq!(m.run(1_000), RunStatus::Halted { code: 0 });
    assert_eq!(m.serial(), &[10]);
}

#[test]
fn textual_program_with_ram_directive_and_mmio() {
    let src = "
        .ram 16
        .text
        rdcycle r3
        li r2, 1
        detect r2
        li r1, 0x41
        serial r1
        halt 0
    ";
    let program = assemble_text("mmio", src).unwrap();
    assert_eq!(program.ram_size, 16);
    let mut m = Machine::new(&program);
    assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
    assert_eq!(m.serial(), b"A");
    assert_eq!(m.detect_count(), 1);
}

#[test]
fn text_and_builder_agree_on_encoding() {
    // The same program written both ways must produce identical ROMs.
    use sofi::isa::{Asm, Reg};
    let text = assemble_text(
        "t",
        "
        li r1, 7
        add r2, r1, r1
        sw r2, 0(r0)
        halt 3
        .data
        x: .word 0
        ",
    )
    .unwrap();
    let mut b = Asm::with_name("b");
    b.data_word("x", 0);
    b.li(Reg::R1, 7);
    b.add(Reg::R2, Reg::R1, Reg::R1);
    b.sw(Reg::R2, Reg::R0, 0);
    b.halt(3);
    let built = b.build().unwrap();
    assert_eq!(text.insts, built.insts);
    assert_eq!(text.encode_rom(), built.encode_rom());
}
