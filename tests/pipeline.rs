//! End-to-end pipeline invariants across every benchmark in the suite.

use sofi::campaign::{Campaign, CampaignConfig};
use sofi::workloads::all_baselines;

#[test]
fn every_baseline_campaign_upholds_invariants() {
    for program in all_baselines() {
        let campaign = Campaign::new(&program).expect("golden run");
        // The plan partitions the fault space exactly.
        assert!(
            campaign.analysis().is_exact_partition(),
            "{}: def/use classes must tile the fault space",
            program.name
        );
        assert_eq!(
            campaign.plan().total_weight(),
            campaign.golden().fault_space_size(),
            "{}: plan must cover w",
            program.name
        );

        let result = campaign.run_full_defuse();
        assert!(result.covers_space(), "{}", program.name);
        // Weighted failure count never exceeds the experiment weight.
        assert!(
            result.failure_weight() <= campaign.plan().experiment_weight(),
            "{}",
            program.name
        );
        // Benign + failure weights account for every coordinate.
        assert_eq!(
            result.benign_weight() + result.failure_weight(),
            result.space.size(),
            "{}",
            program.name
        );
    }
}

#[test]
fn campaigns_are_deterministic() {
    let program = sofi::workloads::crc32();
    let campaign = Campaign::new(&program).unwrap();
    let r1 = campaign.run_full_defuse();
    let r2 = campaign.run_full_defuse();
    assert_eq!(r1, r2);
}

#[test]
fn thread_count_does_not_change_results() {
    let program = sofi::workloads::fib(sofi::workloads::Variant::Baseline);
    let mut results = Vec::new();
    for threads in [1, 2, 8] {
        let config = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::with_config(&program, config).unwrap();
        results.push(campaign.run_full_defuse());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn golden_runs_match_direct_execution() {
    use sofi::machine::Machine;
    for program in all_baselines() {
        let campaign = Campaign::new(&program).unwrap();
        let mut m = Machine::new(&program);
        m.run(50_000_000);
        assert_eq!(campaign.golden().serial, m.serial(), "{}", program.name);
        assert_eq!(campaign.golden().cycles, m.cycle(), "{}", program.name);
    }
}
