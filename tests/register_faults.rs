//! The §VI-B register-file fault model, end to end: trace capture,
//! def/use pruning over register bits, campaign execution — including the
//! pruning-soundness property against a brute-force register scan.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain, OutcomeClass};
use sofi::isa::{Asm, Program, Reg};
use sofi::machine::{Machine, REG_FILE_BITS};
use sofi::space::{ClassIndex, ClassRef};
use sofi_rng::{DefaultRng, Rng};
use std::collections::HashMap;

#[test]
fn flip_reg_bit_changes_the_right_register() {
    let mut a = Asm::new();
    a.li(Reg::R3, 0);
    a.serial_out(Reg::R3);
    let p = a.build().unwrap();
    let mut m = Machine::new(&p);
    m.run_to(1);
    m.flip_reg_bit((3 - 1) * 32 + 4); // r3, bit 4
    m.run(100);
    assert_eq!(m.serial(), &[16]);
}

#[test]
fn register_plan_covers_the_register_space() {
    let c = Campaign::new(&sofi::workloads::fib(sofi::workloads::Variant::Baseline)).unwrap();
    let plan = c.register_plan();
    assert_eq!(plan.space.bits, REG_FILE_BITS);
    assert_eq!(plan.space.cycles, c.golden().cycles);
    assert_eq!(plan.total_weight(), plan.space.size());
    assert!(c.register_analysis().is_exact_partition());
}

#[test]
fn register_campaign_finds_failures() {
    // fib keeps its working set in registers between memory accesses;
    // register flips must produce failures.
    let c = Campaign::new(&sofi::workloads::fib(sofi::workloads::Variant::Baseline)).unwrap();
    let r = c.run_full_defuse_registers();
    assert_eq!(r.domain, FaultDomain::RegisterFile);
    assert!(r.covers_space());
    assert!(r.failure_weight() > 0);
    // Unused registers' columns are entirely benign: r9..r13 are never
    // touched by fib, so well under half the space can fail.
    assert!(r.failure_weight() < r.space.size() / 2);
}

#[test]
fn read_modify_write_registers_prune_correctly() {
    // `addi r1, r1, 1` reads and writes r1 in the same cycle — the
    // def/use edge case the register domain introduces.
    let mut a = Asm::new();
    a.li(Reg::R1, 1);
    for _ in 0..5 {
        a.addi(Reg::R1, Reg::R1, 1);
    }
    a.serial_out(Reg::R1);
    let p = a.build().unwrap();
    let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
    assert!(c.register_analysis().is_exact_partition());
    let pruned = c.run_full_defuse_registers();
    let brute = c.run_brute_force_registers();
    assert_eq!(pruned.failure_weight(), brute.failure_weight());
}

#[test]
fn register_sampling_extrapolates_to_exact() {
    use sofi::campaign::SamplingMode;
    use sofi::metrics::extrapolated_failures;
    let c = Campaign::new(&sofi::workloads::crc32()).unwrap();
    let exact = c.run_full_defuse_registers().failure_weight() as f64;
    let mut rng = sofi_rng::DefaultRng::seed_from_u64(17);
    let s = c.run_sampled_in(
        FaultDomain::RegisterFile,
        60_000,
        SamplingMode::UniformRaw,
        &mut rng,
    );
    assert_eq!(s.domain, FaultDomain::RegisterFile);
    let est = extrapolated_failures(&s, 0.99);
    assert!(
        est.ci.0 <= exact && exact <= est.ci.1,
        "exact {exact} outside CI {:?}",
        est.ci
    );
}

// --- property: register pruning is outcome-preserving -------------------

#[derive(Debug, Clone)]
enum Step {
    Alu(u8, usize, usize, usize),
    Li(usize, i16),
    Rmw(usize, i16),
    Out(usize),
}

fn any_step(rng: &mut impl Rng) -> Step {
    fn reg<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.gen_range(1usize..6)
    }
    match rng.gen_range(0u32..4) {
        0 => Step::Alu(rng.gen_range(0u8..4), reg(rng), reg(rng), reg(rng)),
        1 => Step::Li(reg(rng), rng.next_u64() as i16),
        2 => Step::Rmw(reg(rng), rng.gen_range(-5i16..5)),
        _ => Step::Out(reg(rng)),
    }
}

fn build(steps: &[Step]) -> Program {
    let mut a = Asm::with_name("random-reg");
    for step in steps {
        match *step {
            Step::Alu(op, d, x, y) => {
                let (d, x, y) = (reg(d), reg(x), reg(y));
                match op {
                    0 => a.add(d, x, y),
                    1 => a.sub(d, x, y),
                    2 => a.xor(d, x, y),
                    _ => a.mul(d, x, y),
                };
            }
            Step::Li(d, v) => {
                a.li(reg(d), v as i32);
            }
            Step::Rmw(d, v) => {
                a.addi(reg(d), reg(d), v);
            }
            Step::Out(s) => {
                a.serial_out(reg(s));
            }
        }
    }
    a.serial_out(Reg::R1);
    a.build().unwrap()
}

fn reg(i: usize) -> Reg {
    Reg::from_index(i).unwrap()
}

#[test]
fn register_pruning_equals_brute_force() {
    // Deterministic seeded sweep: 12 random register-churning programs.
    let mut rng = DefaultRng::seed_from_u64(0x4E6);
    for _ in 0..12 {
        let len = rng.gen_range(1usize..12);
        let steps: Vec<Step> = (0..len).map(|_| any_step(&mut rng)).collect();
        let program = build(&steps);
        let campaign =
            Campaign::with_config(&program, CampaignConfig::sequential()).expect("golden run");
        let pruned = campaign.run_full_defuse_registers();
        let brute = campaign.run_brute_force_registers();

        assert_eq!(brute.failure_weight(), pruned.failure_weight());
        assert_eq!(brute.benign_weight(), pruned.benign_weight());

        let index = ClassIndex::new(campaign.register_analysis(), campaign.register_plan());
        let by_id: HashMap<u32, OutcomeClass> = pruned
            .results
            .iter()
            .map(|r| (r.experiment.id, r.outcome.class()))
            .collect();
        for br in &brute.results {
            let expected = match index.lookup(br.experiment.coord) {
                ClassRef::Experiment(id) => by_id[&id],
                ClassRef::KnownBenign => OutcomeClass::NoEffect,
            };
            assert_eq!(
                br.outcome.class(),
                expected,
                "register coordinate {} of {:?}",
                br.experiment.coord,
                steps
            );
        }
    }
}
