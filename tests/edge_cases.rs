//! Boundary behaviour of the pipeline: degenerate programs, empty fault
//! spaces, and limit handling.

use sofi::campaign::{Campaign, CampaignConfig, Outcome, SamplingMode};
use sofi::isa::{Asm, Reg};
use sofi::metrics::{fault_coverage, Weighting};

/// A program that never touches RAM: every memory coordinate is benign.
#[test]
fn ram_without_accesses_is_fully_benign() {
    let mut a = Asm::with_name("idle");
    a.data_space("unused", 8);
    a.li(Reg::R1, 42);
    a.serial_out(Reg::R1);
    let c = Campaign::new(&a.build().unwrap()).unwrap();
    assert_eq!(c.plan().experiments.len(), 0);
    assert_eq!(c.plan().known_benign_weight, c.plan().space.size());
    let r = c.run_full_defuse();
    assert!(r.covers_space());
    assert_eq!(r.failure_weight(), 0);
    assert_eq!(fault_coverage(&r, Weighting::Weighted), 1.0);
    // Raw-space sampling works (every draw is benign) ...
    let mut rng = sofi_rng::DefaultRng::seed_from_u64(1);
    let s = c.run_sampled(100, SamplingMode::UniformRaw, &mut rng);
    assert_eq!(s.benign_draws, 100);
    assert_eq!(s.failure_hits(), 0);
}

/// A program with no RAM at all: the fault space is empty but scans are
/// still well-defined (vacuously complete).
#[test]
fn zero_ram_program_scans_vacuously() {
    let mut a = Asm::with_name("ramless");
    a.li(Reg::R1, 7);
    a.serial_out(Reg::R1);
    let c = Campaign::new(&a.build().unwrap()).unwrap();
    assert_eq!(c.plan().space.size(), 0);
    let r = c.run_full_defuse();
    assert!(r.covers_space());
    assert_eq!(r.experiments_run(), 0);
}

/// The shortest possible benchmark: a single load.
#[test]
fn single_instruction_benchmark() {
    let mut a = Asm::with_name("one");
    let x = a.data_bytes("x", &[1]);
    a.lb(Reg::R1, Reg::R0, x.offset());
    let c = Campaign::new(&a.build().unwrap()).unwrap();
    assert_eq!(c.golden().cycles, 1);
    let r = c.run_full_defuse();
    assert_eq!(r.space.size(), 8);
    // The value is never emitted, so every flip is masked.
    assert_eq!(r.failure_weight(), 0);
}

/// Serial-flood faults are classified as OutputFlood, not timeouts.
#[test]
fn output_flood_classification() {
    // The loop bound lives in RAM; flipping a high bit turns 2 iterations
    // into billions of serial writes, tripping the serial limit first.
    let mut a = Asm::with_name("printer");
    let n = a.data_word("n", 2);
    a.lw(Reg::R4, Reg::R0, n.offset());
    let top = a.label_here();
    a.li(Reg::R5, b'x' as i32);
    a.serial_out(Reg::R5);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, top);
    let p = a.build().unwrap();
    let mut config = CampaignConfig::sequential();
    config.machine.serial_limit = 256;
    // Give the run enough cycle budget that the serial limit is the
    // binding constraint.
    config.timeout_slack = 1_000_000;
    let c = Campaign::with_config(&p, config).unwrap();
    let r = c.run_full_defuse();
    assert!(
        r.results.iter().any(|x| x.outcome == Outcome::OutputFlood),
        "expected an OutputFlood outcome, got {:?}",
        r.results.iter().map(|x| x.outcome).collect::<Vec<_>>()
    );
}

/// Detected-but-unrecoverable aborts surface as their own failure mode.
#[test]
fn detected_unrecoverable_classification() {
    use sofi::harden::ProtectedWord;
    // A protected word read once; we cannot trigger the abort with a
    // single fault (that's the point of the mechanism), so build a
    // variant whose checksum is deliberately inconsistent on one path:
    // simplest is to corrupt two words at boot via the campaign being
    // impossible — instead, verify the abort code path directly.
    let mut a = Asm::with_name("abort");
    let w = ProtectedWord::declare(&mut a, "w", 3);
    w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2);
    a.serial_out(Reg::R4);
    let p = a.build().unwrap();
    let mut m = sofi::machine::Machine::new(&p);
    m.flip_bit(0); // primary
    m.flip_bit(33); // copy, different bit → unrecoverable
    m.run(1_000);
    let golden = sofi::trace::GoldenRun::capture(&p, 1_000).unwrap();
    let outcome = Outcome::classify(m.status().unwrap(), m.serial(), m.detect_count(), &golden);
    assert_eq!(outcome, Outcome::DetectedUnrecoverable);
}

/// Campaign timeout budget: a benchmark whose faulted runs legitimately
/// run a bit longer than golden must not be misclassified with a generous
/// factor.
#[test]
fn timeout_factor_respected() {
    let mut a = Asm::with_name("slowpath");
    let flag = a.data_word("flag", 0);
    let fast = a.new_label();
    a.lw(Reg::R1, Reg::R0, flag.offset());
    a.beq(Reg::R1, Reg::R0, fast);
    // Slow path: 40 extra cycles, same output.
    for _ in 0..40 {
        a.nop();
    }
    a.bind(fast);
    a.li(Reg::R2, 1);
    a.serial_out(Reg::R2);
    let p = a.build().unwrap();
    let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
    let r = c.run_full_defuse();
    // Flag flips divert to the slow path but output is identical: every
    // experiment is benign, none is a timeout.
    assert_eq!(r.failure_weight(), 0);
}
