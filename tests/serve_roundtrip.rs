//! End-to-end daemon test: start `sofi-serve` on an ephemeral loopback
//! port, submit campaigns for both fault domains over the socket, and
//! check the streamed results are bit-identical to running the same
//! campaign in-process. Also covers status over the wire, Unix-socket
//! transport, idle-client timeouts and graceful protocol shutdown.

use sofi_campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi_isa::assemble_text;
use sofi_serve::protocol::{read_message, write_message, Message, ProtocolError};
use sofi_serve::server::Conn;
use sofi_serve::{Client, JobSpec, JobState, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

const PROG: &str = "
    .data
    msg: .space 2
    .text
    li r1, 'H'
    sb r1, msg(r0)
    li r1, 'i'
    sb r1, msg+1(r0)
    lb r2, msg(r0)
    serial r2
    lb r2, msg+1(r0)
    serial r2
";

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sofi-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn spec(domain: FaultDomain) -> JobSpec {
    JobSpec {
        name: "hi".into(),
        source: PROG.into(),
        domain,
        config: CampaignConfig::default(),
        warm_store: true,
    }
}

fn in_process(domain: FaultDomain) -> sofi_campaign::CampaignResult {
    let program = assemble_text("hi", PROG).unwrap();
    let campaign = Campaign::with_config(&program, CampaignConfig::default()).unwrap();
    match domain {
        FaultDomain::Memory => campaign.run_full_defuse(),
        FaultDomain::RegisterFile => campaign.run_full_defuse_registers(),
    }
}

#[test]
fn loopback_results_bit_identical_for_both_domains() {
    let journal = temp_path("roundtrip.journal");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind(
        "127.0.0.1:0",
        &journal,
        ServeConfig {
            batch_size: 8, // several Progress frames per campaign
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
        let mut client = Client::connect(&addr).unwrap();
        let mut progress = Vec::new();
        let mut live_experiments = Vec::new();
        let (job, result, stats) = client
            .submit_wait(spec(domain), |done, total, live| {
                progress.push((done, total));
                live_experiments.push(live.experiments);
            })
            .unwrap();
        assert!(job > 0);

        let expected = in_process(domain);
        assert_eq!(
            result, expected,
            "socket-streamed {domain:?} result differs from in-process run"
        );
        assert_eq!(stats.experiments, expected.results.len() as u64);

        // Progress stream: monotone, consistent total, ends complete.
        let total = expected.results.len() as u64;
        assert!(
            progress.len() >= 2,
            "batch size 8 must stream: {progress:?}"
        );
        assert!(
            progress.windows(2).all(|w| w[0].0 <= w[1].0),
            "{progress:?}"
        );
        assert!(progress.iter().skip(1).all(|&(_, t)| t == total));
        assert_eq!(progress.last().unwrap().0, total);

        // Progress frames carry live executor stats: the per-batch merge
        // is monotone and ends at the final job-wide experiment count.
        assert!(
            live_experiments.windows(2).all(|w| w[0] <= w[1]),
            "{live_experiments:?}"
        );
        assert_eq!(*live_experiments.last().unwrap(), stats.experiments);
    }

    // Status over the wire: both jobs terminal and fully covered.
    let mut client = Client::connect(&addr).unwrap();
    let jobs = client.status(None).unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(jobs.iter().all(|j| j.state == JobState::Done));
    assert!(jobs.iter().all(|j| j.done == j.total && j.total > 0));
    assert!(matches!(
        client.status(Some(999)),
        Err(sofi_serve::ClientError::Server(_))
    ));

    // Graceful drain via the protocol; the daemon thread exits.
    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn unix_socket_transport_works() {
    let journal = temp_path("unix.journal");
    let socket = temp_path("unix.sock");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind(socket.to_str().unwrap(), &journal, ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    assert!(
        addr.contains('/'),
        "unix transport selected by path: {addr}"
    );
    let daemon = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    let (_, result, _) = client
        .submit_wait(spec(FaultDomain::Memory), |_, _, _| {})
        .unwrap();
    assert_eq!(result, in_process(FaultDomain::Memory));

    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(!socket.exists(), "socket file cleaned up on shutdown");
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn idle_clients_time_out_and_get_told() {
    let journal = temp_path("idle.journal");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind(
        "127.0.0.1:0",
        &journal,
        ServeConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    // Connect and send nothing: the daemon reports the timeout and
    // closes instead of leaking the handler thread.
    let mut conn = Conn::connect(&addr).unwrap();
    match read_message(&mut conn) {
        Ok(Some(Message::Error { message })) => {
            assert!(message.contains("idle timeout"), "{message}");
        }
        other => panic!("expected idle-timeout error, got {other:?}"),
    }
    assert!(matches!(read_message(&mut conn), Ok(None) | Err(_)));

    // A malformed frame gets a protocol error back, not a hangup-only.
    let mut conn = Conn::connect(&addr).unwrap();
    use std::io::Write as _;
    conn.write_all(b"GARBAGEGARBAGEGARBAGE").unwrap();
    conn.flush().unwrap();
    match read_message(&mut conn) {
        Ok(Some(Message::Error { message })) => {
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected protocol error reply, got {other:?}"),
    }

    handle.shutdown();
    daemon.join().unwrap();
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn backpressure_and_drain_over_the_wire() {
    let journal = temp_path("busy.journal");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind(
        "127.0.0.1:0",
        &journal,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    // Flood: with a single worker and capacity 1, some submission must
    // bounce with the typed Busy frame.
    let mut client = Client::connect(&addr).unwrap();
    let mut saw_busy = false;
    for _ in 0..32 {
        match client.submit(spec(FaultDomain::Memory)) {
            Ok(_) => {}
            Err(sofi_serve::ClientError::Busy { capacity, .. }) => {
                assert_eq!(capacity, 1);
                saw_busy = true;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_busy, "32 rapid submissions never hit the bounded queue");

    // Shutdown drains: accepted jobs still finish (state visible in the
    // post-drain scheduler is impossible over the wire, so assert the
    // drain itself: submissions after shutdown are refused).
    client.shutdown().unwrap();
    let mut late = Client::connect(&addr);
    if let Ok(late) = late.as_mut() {
        match late.submit(spec(FaultDomain::Memory)) {
            Err(sofi_serve::ClientError::ShuttingDown)
            | Err(sofi_serve::ClientError::Protocol(_)) => {}
            Ok(id) => panic!("draining daemon accepted job {id}"),
            Err(_) => {} // connection refused once the listener is gone
        }
    }
    daemon.join().unwrap();
    std::fs::remove_file(&journal).unwrap();
}

/// The raw protocol functions work against a live daemon (not just the
/// Client wrapper) — a sanity check that the frame format on the socket
/// is exactly what `encode_frame` produces.
#[test]
fn raw_frames_on_the_socket() {
    let journal = temp_path("raw.journal");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind("127.0.0.1:0", &journal, ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    let mut conn = Conn::connect(&addr).unwrap();
    write_message(&mut conn, &Message::Status { job: None }).unwrap();
    match read_message(&mut conn) {
        Ok(Some(Message::StatusReport { jobs })) => assert!(jobs.is_empty()),
        other => panic!("expected empty status report, got {other:?}"),
    }
    // A response kind sent *to* the daemon is rejected as unexpected.
    write_message(&mut conn, &Message::Accepted { job: 1 }).unwrap();
    match read_message(&mut conn) {
        Ok(Some(Message::Error { message })) => {
            assert!(message.contains("unexpected message"), "{message}");
        }
        other => panic!("expected error reply, got {other:?}"),
    }
    drop(conn);

    let mut conn = Conn::connect(&addr).unwrap();
    write_message(&mut conn, &Message::Shutdown).unwrap();
    match read_message(&mut conn) {
        Ok(Some(Message::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    daemon.join().unwrap();
    let _ = std::fs::remove_file(&journal);
}

/// Keep `ProtocolError` importable from the integration-test surface —
/// the fuzz suite in `crates/serve/tests` leans on it, and downstream
/// users match on it.
#[test]
fn protocol_error_is_matchable() {
    let e = ProtocolError::Truncated;
    assert_eq!(format!("{e}"), "stream ended mid-frame");
}
