#![warn(missing_docs)]

//! Runtime observability for the sofi suite: a global-free [`Registry`]
//! of atomic [`Counter`]s, [`Gauge`]s and log-linear [`Histogram`]s,
//! plus lightweight [`Span`] timing for campaign phases.
//!
//! Not to be confused with `sofi-metrics`, which computes the *paper's*
//! result metrics (failure probabilities, fault coverage); this crate
//! measures the *harness itself* — faulted-run lengths,
//! checkpoint-restore distances, memo-probe latencies, journal fsync
//! times — while a campaign runs.
//!
//! # Design
//!
//! * **Global-free.** There is no process-wide singleton: every
//!   [`Registry`] is an explicit value, cloned (shared) or
//!   [`Registry::fork`]ed (fresh) along the ownership paths that need
//!   it. Worker threads record into forked child registries which the
//!   parent absorbs after join — merging is associative and
//!   commutative, so the shard structure does not affect totals.
//! * **Zero-cost when disabled.** A [`Registry::disabled`] registry
//!   hands out handles whose inner `Option<Arc<..>>` is `None`; every
//!   record call is a single never-taken branch, and span timing skips
//!   the `Instant::now()` clock read entirely — the same discipline as
//!   `NullObserver` in `sofi-machine`.
//! * **Lock-free on the hot path.** Handles are resolved by name once,
//!   up front (one mutex acquisition per handle); recording afterwards
//!   touches only relaxed atomics.
//! * **Log-linear histograms.** 256 buckets: values `0..16` are exact,
//!   larger values get four sub-buckets per power of two, bounding the
//!   relative bucket-width error at 25% over the full `u64` range (see
//!   [`histogram`]).
//!
//! # Examples
//!
//! ```
//! use sofi_telemetry::Registry;
//!
//! let reg = Registry::enabled();
//! let runs = reg.counter("executor.experiments");
//! let lens = reg.histogram("executor.faulted_run_cycles");
//! for len in [3u64, 900, 17] {
//!     runs.incr();
//!     lens.record(len);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("executor.experiments"), 3);
//! assert_eq!(snap.histogram("executor.faulted_run_cycles").unwrap().count, 3);
//!
//! // The disabled registry accepts the same calls as no-ops.
//! let off = Registry::disabled();
//! off.counter("executor.experiments").incr();
//! assert!(off.snapshot().is_empty());
//! ```

pub mod histogram;
mod local;
pub mod names;
mod registry;
mod snapshot;
mod span;

pub use local::LocalHistogram;
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{Bucket, HistogramSnapshot, Snapshot};
pub use span::Span;
