//! Well-known metric names, shared by the executor, the daemon and the
//! exporters so snapshots from different layers merge onto the same
//! keys.
//!
//! The convention is `<layer>.<metric>[_<unit>]`; durations are always
//! nanoseconds (`_ns`), simulation distances are cycles.

/// Histogram: total cycles each faulted run actually simulated, from
/// injection to classification (convergence and memoization shorten
/// these).
pub const FAULTED_RUN_CYCLES: &str = "executor.faulted_run_cycles";

/// Histogram: cycles of pristine re-simulation needed to reach an
/// injection point after restoring from the nearest checkpoint.
pub const RESTORE_DISTANCE_CYCLES: &str = "executor.restore_distance_cycles";

/// Histogram: wall-clock latency of one memo-cache probe.
pub const MEMO_PROBE_NS: &str = "executor.memo_probe_ns";

/// Histogram: wall-clock latency of one faulted-run dispatch (injection
/// to classification), sampled — the per-experiment cost the block
/// engine's `+blocks` ablation targets.
pub const DISPATCH_NS: &str = "executor.faulted_dispatch_ns";

/// Histogram: wall-clock latency of one journal append, dominated by
/// the per-record fsync.
pub const JOURNAL_FSYNC_NS: &str = "serve.journal_fsync_ns";

/// Span histogram: golden-run capture (trace + access masks).
pub const SPAN_GOLDEN_RUN_NS: &str = "span.golden_run_ns";

/// Span histogram: def/use analysis and plan pruning, both domains.
pub const SPAN_DEFUSE_NS: &str = "span.defuse_pruning_ns";

/// Span histogram: one worker shard's experiment loop.
pub const SPAN_SHARD_NS: &str = "span.shard_exec_ns";

/// Span histogram: merging worker stats and registries after join.
pub const SPAN_MERGE_NS: &str = "span.merge_ns";

/// Counter: experiments executed (mirrors `ExecutorStats::experiments`).
pub const EXPERIMENTS: &str = "executor.experiments";

/// Counter: faulted runs classified early at a convergence checkpoint.
pub const CONVERGED_EARLY: &str = "executor.converged_early";

/// Counter: memo-cache hits.
pub const MEMO_HITS: &str = "executor.memo_hits";

/// Counter: memo-cache misses.
pub const MEMO_MISSES: &str = "executor.memo_misses";

/// Counter: worker shards that finished with memo probing still enabled
/// (the cost-model gate judged probing profitable, or the gate was off).
pub const GATE_SHARDS_ON: &str = "executor.gate_shards_on";

/// Counter: worker shards where the cost-model gate disabled memo
/// probing — a priori (program too short to ever pay for a probe) or
/// after sampling showed measured probe cost dominating observed
/// savings.
pub const GATE_SHARDS_OFF: &str = "executor.gate_shards_off";

/// Counter: memo hits served from entries preloaded out of the daemon's
/// persistent cross-campaign warm store (a subset of
/// [`MEMO_HITS`]).
pub const STORE_HITS: &str = "executor.store_hits";

/// Counter: fresh memo entries appended to the daemon's persistent warm
/// store after a job completed.
pub const STORE_APPENDS: &str = "serve.store_appends";

/// Counter: memo entries preloaded from the warm store into a job's
/// campaign cache before execution.
pub const STORE_PRELOADS: &str = "serve.store_preloads";

/// Histogram: wall-clock latency of one warm-store batch append
/// (checksummed record + fsync, like the job journal).
pub const STORE_APPEND_NS: &str = "serve.store_append_ns";

/// Counter: instructions retired through the pre-decoded µop engine
/// during faulted runs.
pub const BLOCK_CYCLES: &str = "executor.block_cycles";

/// Counter: instructions retired by cycle-exact single-stepping during
/// faulted runs (boundary cycles, or the block engine disabled).
pub const STEP_CYCLES: &str = "executor.step_cycles";

/// Counter: straight-line µop segments executed during faulted runs.
pub const BLOCKS_EXECUTED: &str = "executor.blocks_executed";

/// Counter: jobs submitted to the daemon (accepted only).
pub const JOBS_SUBMITTED: &str = "serve.jobs_submitted";

/// Counter: jobs that reached a terminal state.
pub const JOBS_FINISHED: &str = "serve.jobs_finished";

/// Counter: experiment batches committed to the journal.
pub const BATCHES_COMMITTED: &str = "serve.batches_committed";

/// Counter: experiments skipped on resume because the journal already
/// covered them.
pub const EXPERIMENTS_RECOVERED: &str = "serve.experiments_recovered";

/// Gauge: jobs currently queued (peak across shards when merged).
pub const QUEUE_DEPTH: &str = "serve.queue_depth";
