//! Scoped phase timing.

use crate::registry::Histogram;
use std::time::Instant;

/// Times a scope and records the elapsed nanoseconds into a histogram
/// when dropped. Obtained from [`crate::Registry::span`]; on a disabled
/// registry the span holds no clock and drop does nothing.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct Span {
    start: Option<Instant>,
    hist: Histogram,
}

impl Span {
    pub(crate) fn started(hist: Histogram, start: Instant) -> Span {
        Span {
            start: Some(start),
            hist,
        }
    }

    pub(crate) fn noop() -> Span {
        Span {
            start: None,
            hist: Histogram::default(),
        }
    }

    /// Ends the span now (equivalent to dropping it, but reads as
    /// intent at call sites).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(nanos);
        }
    }
}
