//! Point-in-time views of a registry, mergeable across shards.
//!
//! A [`Snapshot`] is plain data: sorted name→value lists that can be
//! shipped over the `sofi-serve` wire protocol, exported as JSON by
//! `sofi-report`, or merged with other snapshots. [`Snapshot::merge`]
//! is associative and commutative (counters sum, gauges take the max,
//! histograms add bucketwise), so daemon-wide totals do not depend on
//! the order shard snapshots arrive in.

/// One occupied histogram bucket: `count` observations in `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value mapped to this bucket.
    pub lo: u64,
    /// Largest value mapped to this bucket.
    pub hi: u64,
    /// Observations recorded into this bucket.
    pub count: u64,
}

/// A histogram's state at snapshot time. Only occupied buckets are
/// materialised; `min` is 0 while `count` is 0.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Wrapping sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Occupied buckets, ascending by `lo`.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) from the bucket grid:
    /// the upper edge of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`, clamped to the observed `max`. Exact
    /// for values below 16 (those buckets are exact); within one
    /// bucket width (≤ 25% relative) above.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.hi.min(self.max).max(b.lo.min(self.max));
            }
        }
        self.max
    }

    /// Adds `other`'s observations into `self`. Associative and
    /// commutative; empty histograms are identity elements.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<Bucket> = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) if x.lo == y.lo => {
                    merged.push(Bucket {
                        count: x.count + y.count,
                        ..**x
                    });
                    a.next();
                    b.next();
                }
                (Some(x), Some(y)) => {
                    if x.lo < y.lo {
                        merged.push(**x);
                        a.next();
                    } else {
                        merged.push(**y);
                        b.next();
                    }
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// A registry's full state at one instant. Lists are sorted by name
/// (registries hand them out from ordered maps), which [`Snapshot::merge`]
/// relies on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Last-set gauges, by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Merges two sorted name→value lists with `combine` on name collisions.
fn merge_sorted<T: Clone>(
    mine: &mut Vec<(String, T)>,
    theirs: &[(String, T)],
    mut combine: impl FnMut(&mut T, &T),
) {
    let mut merged: Vec<(String, T)> = Vec::with_capacity(mine.len() + theirs.len());
    let (mut a, mut b) = (mine.drain(..).peekable(), theirs.iter().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) if x.0 == y.0 => {
                let mut entry = a.next().expect("peeked");
                combine(&mut entry.1, &y.1);
                merged.push(entry);
                b.next();
            }
            (Some(x), Some(y)) => {
                if x.0 < y.0 {
                    merged.push(a.next().expect("peeked"));
                } else {
                    merged.push((*y).clone());
                    b.next();
                }
            }
            (Some(_), None) => merged.push(a.next().expect("peeked")),
            (None, Some(_)) => {
                merged.push(b.next().expect("peeked").clone());
            }
            (None, None) => break,
        }
    }
    drop(a);
    *mine = merged;
}

impl Snapshot {
    /// True when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, or 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name).copied().unwrap_or(0)
    }

    /// A gauge's value, or 0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Merges `other` into `self`: counters sum, gauges take the max,
    /// histograms merge bucketwise. Associative and commutative, with
    /// the empty snapshot as identity — shard totals are independent
    /// of merge order and grouping (`tests/merge_laws.rs`).
    pub fn merge(&mut self, other: &Snapshot) {
        merge_sorted(&mut self.counters, &other.counters, |m, t| {
            *m = m.wrapping_add(*t);
        });
        merge_sorted(&mut self.gauges, &other.gauges, |m, t| *m = (*m).max(*t));
        merge_sorted(&mut self.histograms, &other.histograms, |m, t| m.merge(t));
    }
}

fn lookup<'a, T>(list: &'a [(String, T)], name: &str) -> Option<&'a T> {
    list.binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &list[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let core = crate::histogram::HistogramCore::new();
        for &v in values {
            core.record(v);
        }
        core.snapshot()
    }

    #[test]
    fn histogram_merge_equals_joint_recording() {
        let mut a = hist(&[1, 5, 900]);
        let b = hist(&[5, 32, 7_000_000]);
        a.merge(&b);
        assert_eq!(a, hist(&[1, 5, 900, 5, 32, 7_000_000]));
    }

    #[test]
    fn quantiles_are_exact_for_small_values() {
        let h = hist(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h.quantile(0.1), 0);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = hist(&[1_000]);
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(1.0), 1_000);
        assert_eq!(hist(&[]).quantile(0.5), 0);
    }

    #[test]
    fn snapshot_lookup_and_empties() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge("nope"), 0);
        assert!(s.histogram("nope").is_none());
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = Snapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("g".into(), 5)],
            histograms: vec![],
        };
        let b = Snapshot {
            counters: vec![("b".into(), 40), ("c".into(), 7)],
            gauges: vec![("g".into(), 3), ("h".into(), 9)],
            histograms: vec![("x".into(), hist(&[4]))],
        };
        a.merge(&b);
        assert_eq!(a.counter("a"), 1);
        assert_eq!(a.counter("b"), 42);
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.gauge("g"), 5);
        assert_eq!(a.gauge("h"), 9);
        assert_eq!(a.histogram("x").unwrap().count, 1);
        // Output stays sorted so later merges keep working.
        assert!(a.counters.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
