//! The registry and its recording handles.

use crate::histogram::HistogramCore;
use crate::snapshot::Snapshot;
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named collection of counters, gauges and histograms.
///
/// Cloning a `Registry` shares the underlying state (both clones see
/// the same metrics); [`Registry::fork`] creates an independent empty
/// registry for a worker shard, absorbed back with
/// [`Registry::absorb`]. The [`Registry::disabled`] registry (also
/// [`Default`]) hands out no-op handles — see the crate docs for the
/// zero-cost argument.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl Registry {
    /// A live registry.
    #[must_use]
    pub fn enabled() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A registry whose handles are all no-ops and whose snapshot is
    /// always empty.
    #[must_use]
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Builds an enabled or disabled registry from a flag.
    #[must_use]
    pub fn with_enabled(enabled: bool) -> Registry {
        if enabled {
            Registry::enabled()
        } else {
            Registry::disabled()
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter `name`.
    /// Resolve once, outside hot loops: this takes a mutex; the handle
    /// afterwards is a relaxed atomic.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("telemetry lock")
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// Resolves (registering on first use) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .expect("telemetry lock")
                    .entry(name.to_owned())
                    .or_default(),
            )
        }))
    }

    /// Resolves (registering on first use) the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("telemetry lock")
                    .entry(name.to_owned())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Starts a span recording elapsed nanoseconds into the histogram
    /// `name` when dropped (or [`Span::finish`]ed). On a disabled
    /// registry no clock is read.
    pub fn span(&self, name: &str) -> Span {
        if self.is_enabled() {
            Span::started(self.histogram(name), Instant::now())
        } else {
            Span::noop()
        }
    }

    /// A fresh registry with the same enabledness, for a worker shard.
    #[must_use]
    pub fn fork(&self) -> Registry {
        Registry::with_enabled(self.is_enabled())
    }

    /// Adds all of `other`'s metrics into `self` (counters sum, gauges
    /// take the max, histograms add bucketwise) — the in-place
    /// counterpart of [`Snapshot::merge`], used by a parent to absorb a
    /// [`Registry::fork`]ed child once its worker joined. Disabled
    /// registries absorb nothing.
    pub fn absorb(&self, other: &Registry) {
        let (Some(mine), Some(theirs)) = (self.inner.as_ref(), other.inner.as_ref()) else {
            return;
        };
        for (name, value) in theirs.counters.lock().expect("telemetry lock").iter() {
            let v = value.load(Relaxed);
            mine.counters
                .lock()
                .expect("telemetry lock")
                .entry(name.clone())
                .or_default()
                .fetch_add(v, Relaxed);
        }
        for (name, value) in theirs.gauges.lock().expect("telemetry lock").iter() {
            let v = value.load(Relaxed);
            mine.gauges
                .lock()
                .expect("telemetry lock")
                .entry(name.clone())
                .or_default()
                .fetch_max(v, Relaxed);
        }
        for (name, hist) in theirs.histograms.lock().expect("telemetry lock").iter() {
            Arc::clone(
                mine.histograms
                    .lock()
                    .expect("telemetry lock")
                    .entry(name.clone())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
            .absorb(hist);
        }
    }

    /// The registry's current state as plain mergeable data. Disabled
    /// registries snapshot empty.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = self.inner.as_ref() else {
            return Snapshot::default();
        };
        Snapshot {
            counters: inner
                .counters
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, v)| (name.clone(), v.load(Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, v)| (name.clone(), v.load(Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .expect("telemetry lock")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A monotonically increasing counter handle. No-op when resolved from
/// a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(v) = &self.0 {
            v.fetch_add(n, Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A last-value gauge handle (merges as max across shards). No-op when
/// resolved from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(v) = &self.0 {
            v.store(value, Relaxed);
        }
    }
}

/// A histogram handle. No-op when resolved from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Whether recording does anything — gate clock reads and other
    /// observation *construction* costs on this, not just the record
    /// call.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The shared core, for the [`crate::LocalHistogram`] flush path.
    #[inline]
    pub(crate) fn core(&self) -> Option<&HistogramCore> {
        self.0.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let reg = Registry::enabled();
        reg.counter("c").add(2);
        reg.counter("c").incr();
        reg.gauge("g").set(7);
        reg.histogram("h").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.gauge("g"), 7);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn clones_share_forks_do_not() {
        let reg = Registry::enabled();
        let shared = reg.clone();
        shared.counter("c").incr();
        assert_eq!(reg.snapshot().counter("c"), 1);

        let fork = reg.fork();
        fork.counter("c").add(10);
        assert_eq!(reg.snapshot().counter("c"), 1);
        reg.absorb(&fork);
        assert_eq!(reg.snapshot().counter("c"), 11);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        reg.counter("c").incr();
        reg.gauge("g").set(9);
        reg.histogram("h").record(1);
        reg.span("s").finish();
        reg.absorb(&Registry::enabled());
        assert!(reg.snapshot().is_empty());
        // Forks inherit enabledness.
        assert!(!reg.fork().is_enabled());
        assert!(Registry::enabled().fork().is_enabled());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let reg = Registry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = reg.counter("c");
                let h = reg.histogram("h");
                scope.spawn(move || {
                    for v in 0..1_000u64 {
                        c.incr();
                        h.record(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 4_000);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 4_000);
        assert_eq!((h.min, h.max), (0, 999));
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let reg = Registry::enabled();
        {
            let _span = reg.span("phase");
            std::hint::black_box(());
        }
        reg.span("phase").finish();
        let h = reg.snapshot();
        assert_eq!(h.histogram("phase").unwrap().count, 2);
    }

    #[test]
    fn absorb_merges_every_kind() {
        let a = Registry::enabled();
        a.counter("c").add(1);
        a.gauge("g").set(4);
        a.histogram("h").record(10);
        let b = a.fork();
        b.counter("c").add(2);
        b.gauge("g").set(9);
        b.histogram("h").record(20);
        b.histogram("only_b").record(5);
        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.gauge("g"), 9);
        assert_eq!(snap.histogram("h").unwrap().count, 2);
        assert_eq!(snap.histogram("only_b").unwrap().count, 1);
    }
}
