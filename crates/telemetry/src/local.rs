//! Unsynchronized write-behind buffering for hot recording loops.

use crate::histogram::{bucket_index, BUCKETS};
use crate::registry::Histogram;
use std::cell::Cell;

/// A single-threaded buffer in front of a shared [`Histogram`].
///
/// [`Histogram::record`] costs five relaxed atomic read-modify-writes;
/// fine for per-batch or per-span recording, too hot for a site hit
/// once per fault-injection experiment. A `LocalHistogram` accumulates
/// into plain [`Cell`]s (a handful of unsynchronized loads and stores)
/// and pushes the aggregate into its sink on [`LocalHistogram::flush`]
/// or drop — once per worker shard instead of once per observation.
///
/// Buffering is invisible in the totals: flushing uses the same
/// bucketwise merge as [`crate::Registry::absorb`], which is exact when
/// the flusher has exclusive access to the buffer (guaranteed here,
/// `LocalHistogram` is `!Sync`).
#[derive(Debug)]
pub struct LocalHistogram {
    sink: Histogram,
    buckets: Box<[Cell<u64>; BUCKETS]>,
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
}

impl LocalHistogram {
    /// Wraps `sink` in a local buffer. A disabled sink makes every
    /// record a single never-taken branch, same as the sink itself.
    #[must_use]
    pub fn new(sink: Histogram) -> LocalHistogram {
        LocalHistogram {
            sink,
            buckets: Box::new(std::array::from_fn(|_| Cell::new(0))),
            count: Cell::new(0),
            sum: Cell::new(0),
            min: Cell::new(u64::MAX),
            max: Cell::new(0),
        }
    }

    /// Whether recording does anything (forwards the sink's state).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// Buffers one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.sink.is_enabled() {
            return;
        }
        let bucket = &self.buckets[bucket_index(value)];
        bucket.set(bucket.get() + 1);
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get().wrapping_add(value));
        if value < self.min.get() {
            self.min.set(value);
        }
        if value > self.max.get() {
            self.max.set(value);
        }
    }

    /// Drains the buffer into the sink. Idempotent between records;
    /// also runs on drop, so an explicit call only matters when the
    /// sink is snapshotted while the buffer is still alive.
    pub fn flush(&self) {
        let Some(core) = self.sink.core() else {
            return;
        };
        if self.count.get() == 0 {
            return;
        }
        core.absorb_parts(
            self.buckets.iter().map(|b| b.replace(0)),
            self.count.replace(0),
            self.sum.replace(0),
            self.min.replace(u64::MAX),
            self.max.replace(0),
        );
    }
}

impl Drop for LocalHistogram {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn buffered_recording_matches_direct() {
        let direct = Registry::enabled();
        let buffered = Registry::enabled();
        let local = LocalHistogram::new(buffered.histogram("h"));
        for v in [0u64, 5, 5, 1_000, u64::MAX] {
            direct.histogram("h").record(v);
            local.record(v);
        }
        // Resolving the handle registered the name, but no observation
        // is visible in the sink until the buffer flushes.
        let before = buffered.snapshot();
        assert_eq!(before.histogram("h").map(|h| h.count), Some(0));
        local.flush();
        assert_eq!(direct.snapshot(), buffered.snapshot());
    }

    #[test]
    fn flush_is_idempotent_and_incremental() {
        let reg = Registry::enabled();
        let local = LocalHistogram::new(reg.histogram("h"));
        local.record(7);
        local.flush();
        local.flush(); // double flush adds nothing
        local.record(9);
        drop(local); // drop flushes the remainder
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 7, 9));
    }

    #[test]
    fn disabled_sink_stays_inert() {
        let local = LocalHistogram::new(Registry::disabled().histogram("h"));
        assert!(!local.is_enabled());
        local.record(3);
        local.flush();
        assert_eq!(local.count.get(), 0, "disabled buffer must not fill");
    }
}
