//! Log-linear bucket layout and the atomic histogram core.
//!
//! The layout is a fixed 256-bucket log-linear grid over all of `u64`:
//!
//! * values `0..16` land in their own exact bucket (indices `0..16`);
//! * a value `v >= 16` with magnitude `m = floor(log2 v)` lands in one
//!   of four equal-width sub-buckets of `[2^m, 2^(m+1))`, selected by
//!   the two bits below the leading one.
//!
//! Four sub-buckets per octave bound the relative bucket width at 25%
//! of the bucket's lower edge, which is plenty for latency and
//! run-length distributions, and the whole grid is
//! `16 + (63 - 4 + 1) * 4 = 256` buckets — 2 KiB of counters, cheap
//! enough to inline into every histogram.

use crate::snapshot::{Bucket, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Total number of buckets in the log-linear grid.
pub const BUCKETS: usize = 256;

/// Values below this threshold get an exact bucket each.
const EXACT: u64 = 16;

/// Maps a value to its bucket index. Total over `u64`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < EXACT {
        value as usize
    } else {
        let mag = 63 - u64::from(value.leading_zeros()); // 4..=63
        let sub = (value >> (mag - 2)) & 3;
        (EXACT + (mag - 4) * 4 + sub) as usize
    }
}

/// The smallest value mapped to `index`. Inverse of [`bucket_index`] on
/// bucket lower edges: `bucket_index(bucket_lo(i)) == i` for all `i`.
#[must_use]
pub fn bucket_lo(index: usize) -> u64 {
    let index = index as u64;
    if index < EXACT {
        index
    } else {
        let mag = (index - EXACT) / 4 + 4;
        let sub = (index - EXACT) % 4;
        (1u64 << mag) + sub * (1u64 << (mag - 2))
    }
}

/// The largest value mapped to `index`.
#[must_use]
pub fn bucket_hi(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lo(index + 1) - 1
    }
}

/// The shared atomic state behind a [`crate::Histogram`] handle.
///
/// All operations are relaxed atomics: recording never blocks, and
/// concurrent recorders only race benignly (bucket counts, count and
/// sum are each independently exact; `min`/`max` converge).
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Adds `other`'s contents into `self`. Used when a parent registry
    /// absorbs a forked child after the worker joined; with exclusive
    /// access to `other` the absorption is exact.
    pub(crate) fn absorb(&self, other: &HistogramCore) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Relaxed);
            if n != 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        let count = other.count.load(Relaxed);
        if count != 0 {
            self.count.fetch_add(count, Relaxed);
            self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
            self.min.fetch_min(other.min.load(Relaxed), Relaxed);
            self.max.fetch_max(other.max.load(Relaxed), Relaxed);
        }
    }

    /// Adds pre-aggregated contents (bucket counts in grid order plus
    /// the scalar moments) — the flush path of
    /// [`crate::LocalHistogram`]. Exact for the same reason as
    /// [`HistogramCore::absorb`]: the caller owns the aggregate.
    pub(crate) fn absorb_parts(
        &self,
        buckets: impl Iterator<Item = u64>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) {
        for (mine, n) in self.buckets.iter().zip(buckets) {
            if n != 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        if count != 0 {
            self.count.fetch_add(count, Relaxed);
            self.sum.fetch_add(sum, Relaxed);
            self.min.fetch_min(min, Relaxed);
            self.max.fetch_max(max, Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let count = b.load(Relaxed);
                    (count != 0).then(|| Bucket {
                        lo: bucket_lo(i),
                        hi: bucket_hi(i),
                        count,
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v);
        }
    }

    #[test]
    fn lo_is_a_left_inverse_of_index() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn grid_is_a_partition_of_u64() {
        // Adjacent buckets tile without gap or overlap, and the ends
        // pin to 0 and u64::MAX.
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(BUCKETS - 1), u64::MAX);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1), "seam at {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width never exceeds 25% of the bucket's lower edge
        // (for v >= 16; below that buckets are exact).
        for i in 16..BUCKETS - 1 {
            let lo = bucket_lo(i);
            let width = bucket_hi(i) - lo + 1;
            assert!(width * 4 <= lo, "bucket {i}: width {width} vs lo {lo}");
        }
    }

    #[test]
    fn index_total_on_extremes() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), BUCKETS - 4);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(19), 16);
        assert_eq!(bucket_index(20), 17);
    }

    #[test]
    fn record_and_snapshot() {
        let h = HistogramCore::new();
        for v in [0u64, 5, 5, 1_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, 1_010u64.wrapping_add(u64::MAX)); // sum wraps by design
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 5);
        // The value 5 landed twice in its exact bucket.
        assert!(s
            .buckets
            .iter()
            .any(|b| b.lo == 5 && b.hi == 5 && b.count == 2));
    }

    #[test]
    fn empty_snapshot_has_zero_min() {
        let s = HistogramCore::new().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn absorb_matches_combined_recording() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let combined = HistogramCore::new();
        for v in [1u64, 17, 300] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 90_000] {
            b.record(v);
            combined.record(v);
        }
        a.absorb(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }
}
