//! Associativity and commutativity of snapshot/registry merging.
//!
//! The executor merges per-worker forked registries in join order and
//! the daemon merges per-job snapshots in map order; neither order is
//! deterministic, so the merged totals must not depend on grouping or
//! order. These sweeps check the algebraic laws on seeded random
//! snapshots.

use sofi_telemetry::{Registry, Snapshot};

/// Tiny deterministic generator (splitmix64) — no dependency on
/// sofi-rng so the telemetry crate's test closure stays dependency-free.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn random_registry(rng: &mut Mix) -> Registry {
    let names = ["alpha", "beta", "gamma", "delta"];
    let reg = Registry::enabled();
    for _ in 0..(rng.next() % 16) {
        let name = names[(rng.next() % 4) as usize];
        match rng.next() % 3 {
            0 => reg.counter(name).add(rng.next() % 1_000),
            1 => reg.gauge(name).set(rng.next() % 1_000),
            _ => reg.histogram(name).record(rng.next() % 1_000_000),
        }
    }
    reg
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

#[test]
fn snapshot_merge_is_commutative() {
    let mut rng = Mix(1);
    for round in 0..200 {
        let a = random_registry(&mut rng).snapshot();
        let b = random_registry(&mut rng).snapshot();
        assert_eq!(merged(&a, &b), merged(&b, &a), "round {round}");
    }
}

#[test]
fn snapshot_merge_is_associative() {
    let mut rng = Mix(2);
    for round in 0..200 {
        let a = random_registry(&mut rng).snapshot();
        let b = random_registry(&mut rng).snapshot();
        let c = random_registry(&mut rng).snapshot();
        assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c)),
            "round {round}"
        );
    }
}

#[test]
fn empty_snapshot_is_identity() {
    let mut rng = Mix(3);
    for _ in 0..50 {
        let a = random_registry(&mut rng).snapshot();
        let empty = Snapshot::default();
        assert_eq!(merged(&a, &empty), a);
        assert_eq!(merged(&empty, &a), a);
    }
}

#[test]
fn registry_absorb_agrees_with_snapshot_merge() {
    // Absorbing child registries in any grouping produces the same
    // snapshot as merging their snapshots — the executor (absorb) and
    // the daemon (snapshot merge) therefore report identical totals.
    let mut rng = Mix(4);
    for round in 0..100 {
        let children: Vec<Registry> = (0..4).map(|_| random_registry(&mut rng)).collect();

        let parent = Registry::enabled();
        for child in &children {
            parent.absorb(child);
        }

        let mut expect = Snapshot::default();
        for child in children.iter().rev() {
            expect.merge(&child.snapshot());
        }
        assert_eq!(parent.snapshot(), expect, "round {round}");
    }
}
