//! CPU exceptions.

use sofi_isa::MemWidth;
use std::error::Error;
use std::fmt;

/// A CPU exception raised during execution.
///
/// In a fault-injection experiment a trap is a *failure mode*: the injected
/// bit-flip propagated into an address or control-flow value the hardware
/// rejects (the "CPU exceptions" outcome monitored in §II-D of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Trap {
    /// A data access was not naturally aligned.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access width that required alignment.
        width: MemWidth,
    },
    /// A data access fell outside RAM and the MMIO page.
    OutOfRange {
        /// Faulting address.
        addr: u32,
    },
    /// A read from a write-only or unmapped MMIO register.
    MmioRead {
        /// Faulting address.
        addr: u32,
    },
    /// Control flow left the instruction ROM (jump/branch beyond the last
    /// instruction plus one).
    BadJump {
        /// Target instruction index.
        target: u32,
    },
    /// The configured serial output limit was exceeded (a runaway faulted
    /// run spewing output; bounded so experiments terminate).
    SerialOverflow,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Misaligned { addr, width } => {
                write!(f, "misaligned {:?} access at {addr:#010x}", width)
            }
            Trap::OutOfRange { addr } => write!(f, "access outside memory at {addr:#010x}"),
            Trap::MmioRead { addr } => write!(f, "read from write-only MMIO {addr:#010x}"),
            Trap::BadJump { target } => write!(f, "jump outside ROM to index {target}"),
            Trap::SerialOverflow => write!(f, "serial output limit exceeded"),
        }
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            Trap::OutOfRange { addr: 0x10 }.to_string(),
            "access outside memory at 0x00000010"
        );
        assert_eq!(
            Trap::BadJump { target: 99 }.to_string(),
            "jump outside ROM to index 99"
        );
    }
}
