//! The CPU core: in-order, one instruction per cycle.

use crate::observer::{AccessKind, MemAccess, MemObserver, NullObserver};
use crate::ram::Ram;
use crate::status::{RunStatus, StepResult};
use crate::trap::Trap;
use sofi_isa::{
    BranchKind, Inst, MemWidth, Program, Reg, MMIO_BASE, MMIO_CYCLE, MMIO_DETECT, MMIO_INPUT,
    MMIO_SERIAL,
};
use std::sync::Arc;

/// A deterministic external event: at the start of `cycle` the machine
/// latches `value` into the memory-mapped input register
/// ([`sofi_isa::MMIO_INPUT`]). This realizes §II-C's footnote — external
/// inputs "are replayed at the exact same point in time during each run" —
/// so benchmarks with asynchronous input stay bit-for-bit deterministic
/// and fault-injection campaigns over them remain valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExternalEvent {
    /// The cycle at whose start the value becomes visible (1-based; the
    /// instruction executing in this cycle already reads the new value).
    pub cycle: u64,
    /// The latched value.
    pub value: u32,
}

/// Execution-environment limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Maximum bytes the serial device accepts before trapping. Faulted runs
    /// can get stuck in output loops; this bound keeps experiments finite.
    pub serial_limit: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            serial_limit: 64 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    Halted { code: u16 },
    Trapped(Trap),
}

/// The simulated machine: CPU registers, program counter, cycle counter,
/// RAM, and the MMIO devices (serial sink, detection port, cycle counter).
///
/// The instruction ROM is shared (`Arc`) between clones, so forking a
/// machine for an injection experiment costs one RAM copy plus registers.
///
/// Cycle numbering follows the paper's fault-space convention: the n-th
/// executed instruction runs *in cycle n* (1-based), and a fault coordinate
/// `(c, bit)` means the flip becomes visible at the start of cycle `c` —
/// i.e. the instruction executing in cycle `c` already sees the flipped
/// value. [`Machine::run_to`] plus [`Machine::flip_bit`] realize this:
/// `run_to(c - 1)` executes exactly `c - 1` instructions, the flip is
/// applied, and execution resumes with cycle `c`.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 16],
    pc: u32,
    cycle: u64,
    ram: Ram,
    rom: Arc<[Inst]>,
    serial: Vec<u8>,
    detect_count: u64,
    events: Arc<[ExternalEvent]>,
    next_event: usize,
    input_latch: u32,
    state: State,
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine loaded with `program`, RAM initialized from its
    /// data image, registers and cycle counter zeroed.
    pub fn new(program: &Program) -> Self {
        Machine::with_config(program, MachineConfig::default())
    }

    /// Creates a machine with explicit [`MachineConfig`] limits.
    pub fn with_config(program: &Program, config: MachineConfig) -> Self {
        Machine::with_events(program, config, Vec::new())
    }

    /// Creates a machine with a deterministic external-event schedule.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by ascending cycle.
    pub fn with_events(
        program: &Program,
        config: MachineConfig,
        events: Vec<ExternalEvent>,
    ) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "external events must be sorted by cycle"
        );
        Machine {
            regs: [0; 16],
            pc: 0,
            cycle: 0,
            ram: Ram::with_image(program.ram_size, &program.data),
            rom: program.insts.clone().into(),
            serial: Vec::new(),
            detect_count: 0,
            events: events.into(),
            next_event: 0,
            input_latch: 0,
            state: State::Running,
            config,
        }
    }

    /// Completed instruction count (equals the current time coordinate of
    /// the fault space after the run finishes: `Δt`).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current program counter (instruction index).
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Bytes written to the serial device so far.
    #[inline]
    pub fn serial(&self) -> &[u8] {
        &self.serial
    }

    /// Number of detected-and-corrected signals raised via the MMIO
    /// detection port.
    #[inline]
    pub fn detect_count(&self) -> u64 {
        self.detect_count
    }

    /// Reads a register (for tests and diagnostics).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// The machine's RAM.
    #[inline]
    pub fn ram(&self) -> &Ram {
        &self.ram
    }

    /// The machine's final status, or `None` while still running.
    pub fn status(&self) -> Option<RunStatus> {
        match self.state {
            State::Running => None,
            State::Halted { code } => Some(RunStatus::Halted { code }),
            State::Trapped(t) => Some(RunStatus::Trapped(t)),
        }
    }

    /// Injects a transient single-bit flip into RAM. `bit` is the flat
    /// fault-space memory coordinate (`addr * 8 + bit_in_byte`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside RAM.
    #[inline]
    pub fn flip_bit(&mut self, bit: u64) {
        self.ram.flip_bit(bit);
    }

    /// Injects a transient single-bit flip into the register file. `bit`
    /// is the flat register-fault-space coordinate
    /// `(reg − 1) · 32 + bit_in_reg` over `r1..r15` (§VI-B's register
    /// fault model; `r0` is hard-wired and immune).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 480`.
    #[inline]
    pub fn flip_reg_bit(&mut self, bit: u64) {
        assert!(
            bit < crate::observer::REG_FILE_BITS,
            "register bit {bit} outside the register file"
        );
        self.regs[1 + (bit / 32) as usize] ^= 1 << (bit % 32);
    }

    #[inline]
    fn write_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one instruction without observation.
    pub fn step(&mut self) -> StepResult {
        self.step_observed(&mut NullObserver)
    }

    /// Executes one instruction, reporting RAM accesses to `obs`.
    ///
    /// Returns [`StepResult::Halted`]/[`StepResult::Trapped`] when the
    /// machine stops; repeated calls after a stop return the same result
    /// without executing anything.
    pub fn step_observed<O: MemObserver>(&mut self, obs: &mut O) -> StepResult {
        match self.state {
            State::Halted { code } => return StepResult::Halted { code },
            State::Trapped(t) => return StepResult::Trapped(t),
            State::Running => {}
        }
        if self.pc as usize >= self.rom.len() {
            // Run-to-completion: falling off the end is a clean halt and
            // consumes no cycle (the paper's Δt counts executed
            // instructions only).
            self.state = State::Halted { code: 0 };
            return StepResult::Halted { code: 0 };
        }
        let inst = self.rom[self.pc as usize];
        let this_cycle = self.cycle + 1;
        let mut next_pc = self.pc + 1;

        // Replay external events scheduled for this cycle (they become
        // visible to the instruction executing now).
        while let Some(ev) = self.events.get(self.next_event) {
            if ev.cycle > this_cycle {
                break;
            }
            self.input_latch = ev.value;
            self.next_event += 1;
        }

        // Register-file access events (reads now, the write after the
        // instruction has executed). `r0` is hard-wired, never reported.
        let reg_ops = inst.reg_ops();
        for r in reg_ops.reads() {
            if r != Reg::R0 {
                obs.on_reg_access(crate::observer::RegAccess {
                    cycle: this_cycle,
                    reg: r,
                    kind: AccessKind::Read,
                });
            }
        }

        macro_rules! trap {
            ($t:expr) => {{
                self.cycle = this_cycle;
                let t = $t;
                self.state = State::Trapped(t);
                return StepResult::Trapped(t);
            }};
        }

        use Inst::*;
        match inst {
            Add { rd, rs1, rs2 } => {
                let v = self.reg(rs1).wrapping_add(self.reg(rs2));
                self.write_reg(rd, v);
            }
            Sub { rd, rs1, rs2 } => {
                let v = self.reg(rs1).wrapping_sub(self.reg(rs2));
                self.write_reg(rd, v);
            }
            And { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Or { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) | self.reg(rs2)),
            Xor { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Sll { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31));
            }
            Srl { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31));
            }
            Sra { rd, rs1, rs2 } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32);
            }
            Slt { rd, rs1, rs2 } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32);
            }
            Sltu { rd, rs1, rs2 } => {
                self.write_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32);
            }
            Mul { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
            }
            Addi { rd, rs1, imm } => {
                self.write_reg(rd, self.reg(rs1).wrapping_add(imm as i32 as u32));
            }
            Andi { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) & (imm as u16 as u32)),
            Ori { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) | (imm as u16 as u32)),
            Xori { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) ^ (imm as u16 as u32)),
            Slti { rd, rs1, imm } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) < (imm as i32)) as u32);
            }
            Slli { rd, rs1, shamt } => self.write_reg(rd, self.reg(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.write_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32);
            }
            Lui { rd, imm } => self.write_reg(rd, (imm as u32) << 16),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                if addr >= MMIO_BASE {
                    match addr {
                        MMIO_CYCLE => self.write_reg(rd, this_cycle as u32 - 1),
                        MMIO_INPUT => self.write_reg(rd, self.input_latch),
                        _ => trap!(Trap::MmioRead { addr }),
                    }
                } else {
                    let raw = match self.ram.read(addr, width) {
                        Ok(v) => v,
                        Err(t) => trap!(t),
                    };
                    obs.on_access(MemAccess {
                        cycle: this_cycle,
                        addr,
                        width,
                        kind: AccessKind::Read,
                    });
                    let v = if signed {
                        match width {
                            MemWidth::Byte => raw as u8 as i8 as i32 as u32,
                            MemWidth::Half => raw as u16 as i16 as i32 as u32,
                            MemWidth::Word => raw,
                        }
                    } else {
                        raw
                    };
                    self.write_reg(rd, v);
                }
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let value = self.reg(rs);
                if addr >= MMIO_BASE {
                    match addr {
                        MMIO_SERIAL => {
                            if self.serial.len() >= self.config.serial_limit {
                                trap!(Trap::SerialOverflow);
                            }
                            self.serial.push(value as u8);
                        }
                        MMIO_DETECT => self.detect_count += 1,
                        _ => trap!(Trap::OutOfRange { addr }),
                    }
                } else {
                    if let Err(t) = self.ram.write(addr, width, value) {
                        trap!(t);
                    }
                    obs.on_access(MemAccess {
                        cycle: this_cycle,
                        addr,
                        width,
                        kind: AccessKind::Write,
                    });
                }
            }
            Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i32) < (b as i32),
                    BranchKind::Ge => (a as i32) >= (b as i32),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                if taken {
                    let t = (self.pc as i64) + 1 + (offset as i64);
                    if t < 0 || t > self.rom.len() as i64 {
                        trap!(Trap::BadJump {
                            target: t.clamp(0, u32::MAX as i64) as u32
                        });
                    }
                    next_pc = t as u32;
                }
            }
            Jal { rd, target } => {
                if target > self.rom.len() as u32 {
                    trap!(Trap::BadJump { target });
                }
                self.write_reg(rd, self.pc + 1);
                next_pc = target;
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as i32 as u32);
                if target > self.rom.len() as u32 {
                    trap!(Trap::BadJump { target });
                }
                self.write_reg(rd, self.pc + 1);
                next_pc = target;
            }
            Halt { code } => {
                self.cycle = this_cycle;
                self.state = State::Halted { code };
                return StepResult::Halted { code };
            }
        }
        if let Some(rd) = reg_ops.write {
            if rd != Reg::R0 {
                obs.on_reg_access(crate::observer::RegAccess {
                    cycle: this_cycle,
                    reg: rd,
                    kind: AccessKind::Write,
                });
            }
        }
        self.pc = next_pc;
        self.cycle = this_cycle;
        StepResult::Running
    }

    /// Runs until the machine stops or `cycle_limit` cycles have executed.
    pub fn run(&mut self, cycle_limit: u64) -> RunStatus {
        self.run_observed(cycle_limit, &mut NullObserver)
    }

    /// Runs with a [`MemObserver`] attached (golden-run tracing).
    pub fn run_observed<O: MemObserver>(&mut self, cycle_limit: u64, obs: &mut O) -> RunStatus {
        loop {
            if self.cycle >= cycle_limit {
                return RunStatus::CycleLimit;
            }
            match self.step_observed(obs) {
                StepResult::Running => {}
                StepResult::Halted { code } => return RunStatus::Halted { code },
                StepResult::Trapped(t) => return RunStatus::Trapped(t),
            }
        }
    }

    /// Advances the machine until exactly `cycle` instructions have
    /// executed (used to pause before an injection). Returns the status if
    /// the program stopped earlier.
    pub fn run_to(&mut self, cycle: u64) -> Option<RunStatus> {
        while self.cycle < cycle {
            match self.step() {
                StepResult::Running => {}
                StepResult::Halted { code } => return Some(RunStatus::Halted { code }),
                StepResult::Trapped(t) => return Some(RunStatus::Trapped(t)),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::Asm;

    fn run_program(f: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100_000);
        m
    }

    #[test]
    fn arithmetic_basics() {
        let m = run_program(|a| {
            a.li(Reg::R1, 7);
            a.li(Reg::R2, -3);
            a.add(Reg::R3, Reg::R1, Reg::R2);
            a.sub(Reg::R4, Reg::R1, Reg::R2);
            a.mul(Reg::R5, Reg::R1, Reg::R2);
        });
        assert_eq!(m.reg(Reg::R3), 4);
        assert_eq!(m.reg(Reg::R4), 10);
        assert_eq!(m.reg(Reg::R5) as i32, -21);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let m = run_program(|a| {
            a.li(Reg::R0, 42);
            a.add(Reg::R1, Reg::R0, Reg::R0);
        });
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let m = run_program(|a| {
            a.li(Reg::R1, -8);
            a.srai(Reg::R2, Reg::R1, 1); // -4
            a.srli(Reg::R3, Reg::R1, 28); // 0xF
            a.slli(Reg::R4, Reg::R1, 1); // -16
            a.slt(Reg::R5, Reg::R1, Reg::R0); // -8 < 0 → 1
            a.sltu(Reg::R6, Reg::R1, Reg::R0); // big unsigned < 0 → 0
        });
        assert_eq!(m.reg(Reg::R2) as i32, -4);
        assert_eq!(m.reg(Reg::R3), 0xF);
        assert_eq!(m.reg(Reg::R4) as i32, -16);
        assert_eq!(m.reg(Reg::R5), 1);
        assert_eq!(m.reg(Reg::R6), 0);
    }

    #[test]
    fn zero_extended_logical_immediates() {
        let m = run_program(|a| {
            a.lui(Reg::R1, 0xFFFF);
            a.ori(Reg::R1, Reg::R1, -1); // zext(0xFFFF)
            a.andi(Reg::R2, Reg::R1, -1); // 0x0000FFFF
            a.xori(Reg::R3, Reg::R1, -1); // flips low 16 bits
        });
        assert_eq!(m.reg(Reg::R1), 0xFFFF_FFFF);
        assert_eq!(m.reg(Reg::R2), 0x0000_FFFF);
        assert_eq!(m.reg(Reg::R3), 0xFFFF_0000);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let m = run_program(|a| {
            a.data_space("buf", 8);
            a.li(Reg::R1, -1);
            a.sb(Reg::R1, Reg::R0, 0);
            a.lb(Reg::R2, Reg::R0, 0); // -1 sign-extended
            a.lbu(Reg::R3, Reg::R0, 0); // 255
            a.li(Reg::R4, -2);
            a.sh(Reg::R4, Reg::R0, 2);
            a.lh(Reg::R5, Reg::R0, 2); // -2
            a.lhu(Reg::R6, Reg::R0, 2); // 0xFFFE
        });
        assert_eq!(m.reg(Reg::R2) as i32, -1);
        assert_eq!(m.reg(Reg::R3), 255);
        assert_eq!(m.reg(Reg::R5) as i32, -2);
        assert_eq!(m.reg(Reg::R6), 0xFFFE);
    }

    #[test]
    fn serial_and_detect_mmio() {
        let m = run_program(|a| {
            a.li(Reg::R1, b'A' as i32);
            a.serial_out(Reg::R1);
            a.detect_signal(Reg::R1);
            a.detect_signal(Reg::R1);
        });
        assert_eq!(m.serial(), b"A");
        assert_eq!(m.detect_count(), 2);
    }

    #[test]
    fn cycle_counter_mmio() {
        let m = run_program(|a| {
            a.nop();
            a.nop();
            a.read_cycle(Reg::R1); // executes in cycle 3, reads 2 completed
        });
        assert_eq!(m.reg(Reg::R1), 2);
    }

    #[test]
    fn run_to_completion_counts_cycles() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.nop();
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
        assert_eq!(m.cycle(), 3);
    }

    #[test]
    fn explicit_halt_code() {
        let m = run_program(|a| {
            a.halt(7);
        });
        assert_eq!(m.status(), Some(RunStatus::Halted { code: 7 }));
        assert_eq!(m.cycle(), 1); // halt consumes its cycle
    }

    #[test]
    fn loops_execute() {
        let m = run_program(|a| {
            a.li(Reg::R1, 5);
            a.li(Reg::R2, 0);
            let top = a.label_here();
            a.add(Reg::R2, Reg::R2, Reg::R1);
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R0, top);
        });
        assert_eq!(m.reg(Reg::R2), 15);
        assert_eq!(m.cycle(), 2 + 5 * 3);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut a = Asm::new();
        let top = a.label_here();
        a.j(top);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(50), RunStatus::CycleLimit);
        assert_eq!(m.cycle(), 50);
        assert_eq!(m.status(), None); // still runnable
    }

    #[test]
    fn traps_on_bad_access() {
        let m = run_program(|a| {
            a.data_space("x", 4);
            a.li(Reg::R1, 100);
            a.lw(Reg::R2, Reg::R1, 0);
        });
        assert_eq!(
            m.status(),
            Some(RunStatus::Trapped(Trap::OutOfRange { addr: 100 }))
        );
    }

    #[test]
    fn traps_on_misaligned() {
        let m = run_program(|a| {
            a.data_space("x", 8);
            a.li(Reg::R1, 1);
            a.lw(Reg::R2, Reg::R1, 0);
        });
        assert!(matches!(
            m.status(),
            Some(RunStatus::Trapped(Trap::Misaligned { addr: 1, .. }))
        ));
    }

    #[test]
    fn traps_on_wild_jump() {
        let m = run_program(|a| {
            a.li(Reg::R1, 999);
            a.jalr(Reg::R0, Reg::R1, 0);
        });
        assert_eq!(
            m.status(),
            Some(RunStatus::Trapped(Trap::BadJump { target: 999 }))
        );
    }

    #[test]
    fn jump_to_rom_end_is_clean_halt() {
        let m = run_program(|a| {
            a.li(Reg::R1, 2); // ROM has 2 instructions; index 2 == len
            a.jalr(Reg::R0, Reg::R1, 0);
        });
        assert_eq!(m.status(), Some(RunStatus::Halted { code: 0 }));
    }

    #[test]
    fn mmio_read_of_write_only_register_traps() {
        let m = run_program(|a| {
            a.lb(Reg::R1, Reg::R0, -256); // serial is write-only
        });
        assert!(matches!(
            m.status(),
            Some(RunStatus::Trapped(Trap::MmioRead { .. }))
        ));
    }

    #[test]
    fn serial_overflow_traps() {
        let mut a = Asm::new();
        a.li(Reg::R1, b'x' as i32);
        let top = a.label_here();
        a.serial_out(Reg::R1);
        a.j(top);
        let p = a.build().unwrap();
        let mut m = Machine::with_config(&p, MachineConfig { serial_limit: 10 });
        assert_eq!(m.run(1_000), RunStatus::Trapped(Trap::SerialOverflow));
        assert_eq!(m.serial().len(), 10);
    }

    #[test]
    fn determinism_and_clone_independence() {
        let mut a = Asm::new();
        let buf = a.data_space("buf", 16);
        a.li(Reg::R1, 0xAB);
        a.sb(Reg::R1, Reg::R0, buf.offset());
        a.lb(Reg::R2, Reg::R0, buf.offset());
        a.serial_out(Reg::R2);
        let p = a.build().unwrap();

        let mut m1 = Machine::new(&p);
        m1.run_to(2);
        let mut m2 = m1.clone();
        // Diverge the clone with a fault; the original is untouched.
        m2.flip_bit(buf.addr() as u64 * 8);
        let s1 = m1.run(1_000);
        let s2 = m2.run(1_000);
        assert_eq!(s1, s2); // both halt cleanly...
        assert_eq!(m1.serial(), &[0xAB]);
        assert_eq!(m2.serial(), &[0xAA]); // ...but the fault corrupted output
    }

    #[test]
    fn flip_before_read_is_seen_flip_after_is_not() {
        // Verifies the cycle convention: a flip applied after run_to(c-1)
        // is visible to the read in cycle c.
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[0x01]);
        a.nop(); // cycle 1
        a.lb(Reg::R1, Reg::R0, x.offset()); // cycle 2: the read
        a.serial_out(Reg::R1); // cycle 3
        let p = a.build().unwrap();

        // Inject at coordinate cycle=2 (just before the read executes).
        let mut m = Machine::new(&p);
        m.run_to(1);
        m.flip_bit(0);
        m.run(100);
        assert_eq!(m.serial(), &[0x00]);

        // Inject at coordinate cycle=3 (after the read): dormant.
        let mut m = Machine::new(&p);
        m.run_to(2);
        m.flip_bit(0);
        m.run(100);
        assert_eq!(m.serial(), &[0x01]);
    }

    #[test]
    fn repeated_step_after_halt_is_stable() {
        let mut a = Asm::new();
        a.halt(3);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.step(), StepResult::Halted { code: 3 });
        assert_eq!(m.step(), StepResult::Halted { code: 3 });
        assert_eq!(m.cycle(), 1);
    }

    #[test]
    fn observer_sees_ram_accesses_only() {
        use crate::observer::RecordingObserver;
        let mut a = Asm::new();
        let x = a.data_word("x", 5);
        a.lw(Reg::R1, Reg::R0, x.offset()); // RAM read
        a.serial_out(Reg::R1); // MMIO: not reported
        a.sw(Reg::R1, Reg::R0, x.offset()); // RAM write
        let p = a.build().unwrap();
        let mut obs = RecordingObserver::default();
        let mut m = Machine::new(&p);
        m.run_observed(100, &mut obs);
        assert_eq!(obs.accesses.len(), 2);
        assert_eq!(obs.accesses[0].kind, AccessKind::Read);
        assert_eq!(obs.accesses[0].cycle, 1);
        assert_eq!(obs.accesses[1].kind, AccessKind::Write);
        assert_eq!(obs.accesses[1].cycle, 3);
    }
}
