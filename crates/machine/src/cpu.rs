//! The CPU core: in-order, one instruction per cycle.

use crate::block::{branch_taken, BlockStats, BlockTable, Uop};
use crate::observer::{AccessKind, MemAccess, MemObserver, NullObserver, RegAccess};
use crate::ram::Ram;
use crate::status::{RunStatus, StepResult};
use crate::trap::Trap;
use sofi_isa::{
    BranchKind, Inst, MemWidth, Program, Reg, MMIO_BASE, MMIO_CYCLE, MMIO_DETECT, MMIO_INPUT,
    MMIO_SERIAL,
};
use std::sync::Arc;

/// A deterministic external event: at the start of `cycle` the machine
/// latches `value` into the memory-mapped input register
/// ([`sofi_isa::MMIO_INPUT`]). This realizes §II-C's footnote — external
/// inputs "are replayed at the exact same point in time during each run" —
/// so benchmarks with asynchronous input stay bit-for-bit deterministic
/// and fault-injection campaigns over them remain valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExternalEvent {
    /// The cycle at whose start the value becomes visible (1-based; the
    /// instruction executing in this cycle already reads the new value).
    pub cycle: u64,
    /// The latched value.
    pub value: u32,
}

/// Execution-environment limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Maximum bytes the serial device accepts before trapping. Faulted runs
    /// can get stuck in output loops; this bound keeps experiments finite.
    pub serial_limit: usize,
    /// Execute through the decode-once µop engine (the default). `false`
    /// forces pure single-stepping through [`Machine::step_observed`] —
    /// the reference interpreter the block-engine oracle and the
    /// `+blocks` ablation bench compare against. Results are bit-identical
    /// either way (`tests/block_engine_oracle.rs`).
    pub block_engine: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            serial_limit: 64 * 1024,
            block_engine: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    Halted { code: u16 },
    Trapped(Trap),
}

/// The simulated machine: CPU registers, program counter, cycle counter,
/// RAM, and the MMIO devices (serial sink, detection port, cycle counter).
///
/// The instruction ROM is shared (`Arc`) between clones and RAM is
/// copy-on-write ([`Ram`]), so forking a machine for an injection
/// experiment costs a page-table clone plus registers; pages are copied
/// lazily as the fork writes to them.
///
/// Cycle numbering follows the paper's fault-space convention: the n-th
/// executed instruction runs *in cycle n* (1-based), and a fault coordinate
/// `(c, bit)` means the flip becomes visible at the start of cycle `c` —
/// i.e. the instruction executing in cycle `c` already sees the flipped
/// value. [`Machine::run_to`] plus [`Machine::flip_bit`] realize this:
/// `run_to(c - 1)` executes exactly `c - 1` instructions, the flip is
/// applied, and execution resumes with cycle `c`.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 16],
    pc: u32,
    cycle: u64,
    ram: Ram,
    rom: Arc<[Inst]>,
    serial: Vec<u8>,
    detect_count: u64,
    events: Arc<[ExternalEvent]>,
    next_event: usize,
    input_latch: u32,
    state: State,
    config: MachineConfig,
    /// Rolling serial-output hash: the two-lane fold over the complete
    /// 8-byte chunks of `serial[..serial_hash_pos]`. The serial buffer
    /// is append-only for a machine's lifetime, so
    /// [`Machine::state_digest`] folds only the bytes appended since the
    /// previous probe instead of re-walking the whole buffer.
    serial_hash: (u64, u64),
    serial_hash_pos: usize,
    /// Decode-once µop table for `rom` (see [`crate::block`]); shared by
    /// clones, never invalidated (the ROM is immutable).
    blocks: Arc<BlockTable>,
    /// Engine dispatch counters (diagnostics/telemetry only; cloned with
    /// the machine, excluded from digests and convergence comparison).
    block_stats: BlockStats,
}

impl Machine {
    /// Creates a machine loaded with `program`, RAM initialized from its
    /// data image, registers and cycle counter zeroed.
    pub fn new(program: &Program) -> Self {
        Machine::with_config(program, MachineConfig::default())
    }

    /// Creates a machine with explicit [`MachineConfig`] limits.
    pub fn with_config(program: &Program, config: MachineConfig) -> Self {
        Machine::with_events(program, config, Vec::new())
    }

    /// Creates a machine with a deterministic external-event schedule.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by ascending cycle.
    pub fn with_events(
        program: &Program,
        config: MachineConfig,
        events: Vec<ExternalEvent>,
    ) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "external events must be sorted by cycle"
        );
        let rom: Arc<[Inst]> = program.insts.clone().into();
        let blocks = Arc::new(BlockTable::decode(&rom));
        Machine {
            regs: [0; 16],
            pc: 0,
            cycle: 0,
            ram: Ram::with_image(program.ram_size, &program.data),
            rom,
            serial: Vec::new(),
            detect_count: 0,
            events: events.into(),
            next_event: 0,
            input_latch: 0,
            state: State::Running,
            config,
            serial_hash: SERIAL_HASH_SEED,
            serial_hash_pos: 0,
            blocks,
            block_stats: BlockStats::default(),
        }
    }

    /// Completed instruction count (equals the current time coordinate of
    /// the fault space after the run finishes: `Δt`).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current program counter (instruction index).
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Bytes written to the serial device so far.
    #[inline]
    pub fn serial(&self) -> &[u8] {
        &self.serial
    }

    /// Number of detected-and-corrected signals raised via the MMIO
    /// detection port.
    #[inline]
    pub fn detect_count(&self) -> u64 {
        self.detect_count
    }

    /// Reads a register (for tests and diagnostics).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// The machine's RAM.
    #[inline]
    pub fn ram(&self) -> &Ram {
        &self.ram
    }

    /// The machine's final status, or `None` while still running.
    pub fn status(&self) -> Option<RunStatus> {
        match self.state {
            State::Running => None,
            State::Halted { code } => Some(RunStatus::Halted { code }),
            State::Trapped(t) => Some(RunStatus::Trapped(t)),
        }
    }

    /// Injects a transient single-bit flip into RAM. `bit` is the flat
    /// fault-space memory coordinate (`addr * 8 + bit_in_byte`).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside RAM.
    #[inline]
    pub fn flip_bit(&mut self, bit: u64) {
        self.ram.flip_bit(bit);
    }

    /// Injects a transient single-bit flip into the register file. `bit`
    /// is the flat register-fault-space coordinate
    /// `(reg − 1) · 32 + bit_in_reg` over `r1..r15` (§VI-B's register
    /// fault model; `r0` is hard-wired and immune).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 480`.
    #[inline]
    pub fn flip_reg_bit(&mut self, bit: u64) {
        assert!(
            bit < crate::observer::REG_FILE_BITS,
            "register bit {bit} outside the register file"
        );
        self.regs[1 + (bit / 32) as usize] ^= 1 << (bit % 32);
    }

    #[inline]
    fn write_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one instruction without observation.
    pub fn step(&mut self) -> StepResult {
        self.step_observed(&mut NullObserver)
    }

    /// Executes one instruction, reporting RAM accesses to `obs`.
    ///
    /// Returns [`StepResult::Halted`]/[`StepResult::Trapped`] when the
    /// machine stops; repeated calls after a stop return the same result
    /// without executing anything.
    pub fn step_observed<O: MemObserver>(&mut self, obs: &mut O) -> StepResult {
        match self.state {
            State::Halted { code } => return StepResult::Halted { code },
            State::Trapped(t) => return StepResult::Trapped(t),
            State::Running => {}
        }
        if self.pc as usize >= self.rom.len() {
            // Run-to-completion: falling off the end is a clean halt and
            // consumes no cycle (the paper's Δt counts executed
            // instructions only).
            self.state = State::Halted { code: 0 };
            return StepResult::Halted { code: 0 };
        }
        let inst = self.rom[self.pc as usize];
        let this_cycle = self.cycle + 1;
        let mut next_pc = self.pc + 1;

        // Replay external events scheduled for this cycle (they become
        // visible to the instruction executing now).
        while let Some(ev) = self.events.get(self.next_event) {
            if ev.cycle > this_cycle {
                break;
            }
            self.input_latch = ev.value;
            self.next_event += 1;
        }

        // Register-file access events (reads now, the write after the
        // instruction has executed). `r0` is hard-wired, never reported.
        let reg_ops = inst.reg_ops();
        for r in reg_ops.reads() {
            if r != Reg::R0 {
                obs.on_reg_access(crate::observer::RegAccess {
                    cycle: this_cycle,
                    reg: r,
                    kind: AccessKind::Read,
                });
            }
        }

        macro_rules! trap {
            ($t:expr) => {{
                self.cycle = this_cycle;
                let t = $t;
                self.state = State::Trapped(t);
                return StepResult::Trapped(t);
            }};
        }

        use Inst::*;
        match inst {
            Add { rd, rs1, rs2 } => {
                let v = self.reg(rs1).wrapping_add(self.reg(rs2));
                self.write_reg(rd, v);
            }
            Sub { rd, rs1, rs2 } => {
                let v = self.reg(rs1).wrapping_sub(self.reg(rs2));
                self.write_reg(rd, v);
            }
            And { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Or { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) | self.reg(rs2)),
            Xor { rd, rs1, rs2 } => self.write_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Sll { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31));
            }
            Srl { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31));
            }
            Sra { rd, rs1, rs2 } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32);
            }
            Slt { rd, rs1, rs2 } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32);
            }
            Sltu { rd, rs1, rs2 } => {
                self.write_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32);
            }
            Mul { rd, rs1, rs2 } => {
                self.write_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
            }
            Addi { rd, rs1, imm } => {
                self.write_reg(rd, self.reg(rs1).wrapping_add(imm as i32 as u32));
            }
            Andi { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) & (imm as u16 as u32)),
            Ori { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) | (imm as u16 as u32)),
            Xori { rd, rs1, imm } => self.write_reg(rd, self.reg(rs1) ^ (imm as u16 as u32)),
            Slti { rd, rs1, imm } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) < (imm as i32)) as u32);
            }
            Slli { rd, rs1, shamt } => self.write_reg(rd, self.reg(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.write_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.write_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32);
            }
            Lui { rd, imm } => self.write_reg(rd, (imm as u32) << 16),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                if addr >= MMIO_BASE {
                    match addr {
                        MMIO_CYCLE => self.write_reg(rd, this_cycle as u32 - 1),
                        MMIO_INPUT => self.write_reg(rd, self.input_latch),
                        _ => trap!(Trap::MmioRead { addr }),
                    }
                } else {
                    let raw = match self.ram.read(addr, width) {
                        Ok(v) => v,
                        Err(t) => trap!(t),
                    };
                    obs.on_access(MemAccess {
                        cycle: this_cycle,
                        addr,
                        width,
                        kind: AccessKind::Read,
                    });
                    let v = if signed {
                        match width {
                            MemWidth::Byte => raw as u8 as i8 as i32 as u32,
                            MemWidth::Half => raw as u16 as i16 as i32 as u32,
                            MemWidth::Word => raw,
                        }
                    } else {
                        raw
                    };
                    self.write_reg(rd, v);
                }
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i32 as u32);
                let value = self.reg(rs);
                if addr >= MMIO_BASE {
                    match addr {
                        MMIO_SERIAL => {
                            if self.serial.len() >= self.config.serial_limit {
                                trap!(Trap::SerialOverflow);
                            }
                            self.serial.push(value as u8);
                        }
                        MMIO_DETECT => self.detect_count += 1,
                        _ => trap!(Trap::OutOfRange { addr }),
                    }
                } else {
                    if let Err(t) = self.ram.write(addr, width, value) {
                        trap!(t);
                    }
                    obs.on_access(MemAccess {
                        cycle: this_cycle,
                        addr,
                        width,
                        kind: AccessKind::Write,
                    });
                }
            }
            Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match kind {
                    BranchKind::Eq => a == b,
                    BranchKind::Ne => a != b,
                    BranchKind::Lt => (a as i32) < (b as i32),
                    BranchKind::Ge => (a as i32) >= (b as i32),
                    BranchKind::Ltu => a < b,
                    BranchKind::Geu => a >= b,
                };
                if taken {
                    let t = (self.pc as i64) + 1 + (offset as i64);
                    if t < 0 || t > self.rom.len() as i64 {
                        trap!(Trap::BadJump {
                            target: t.clamp(0, u32::MAX as i64) as u32
                        });
                    }
                    next_pc = t as u32;
                }
            }
            Jal { rd, target } => {
                if target > self.rom.len() as u32 {
                    trap!(Trap::BadJump { target });
                }
                self.write_reg(rd, self.pc + 1);
                next_pc = target;
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as i32 as u32);
                if target > self.rom.len() as u32 {
                    trap!(Trap::BadJump { target });
                }
                self.write_reg(rd, self.pc + 1);
                next_pc = target;
            }
            Halt { code } => {
                self.cycle = this_cycle;
                self.state = State::Halted { code };
                return StepResult::Halted { code };
            }
        }
        if let Some(rd) = reg_ops.write {
            if rd != Reg::R0 {
                obs.on_reg_access(crate::observer::RegAccess {
                    cycle: this_cycle,
                    reg: rd,
                    kind: AccessKind::Write,
                });
            }
        }
        self.pc = next_pc;
        self.cycle = this_cycle;
        StepResult::Running
    }

    /// Runs until the machine stops or `cycle_limit` cycles have executed.
    pub fn run(&mut self, cycle_limit: u64) -> RunStatus {
        self.run_observed(cycle_limit, &mut NullObserver)
    }

    /// Runs with a [`MemObserver`] attached (golden-run tracing).
    pub fn run_observed<O: MemObserver>(&mut self, cycle_limit: u64, obs: &mut O) -> RunStatus {
        match self.run_blocks_to(cycle_limit, obs) {
            Some(status) => status,
            None => RunStatus::CycleLimit,
        }
    }

    /// Advances the machine until exactly `cycle` instructions have
    /// executed (used to pause before an injection). Returns the status if
    /// the program stopped earlier.
    pub fn run_to(&mut self, cycle: u64) -> Option<RunStatus> {
        self.run_blocks_to(cycle, &mut NullObserver)
    }

    /// The unified observed run loop every entry point ([`Machine::run`],
    /// [`Machine::run_to`], [`Machine::run_observed`]) delegates to:
    /// advances until exactly `cycle` instructions have executed,
    /// reporting accesses to `obs`, and returns the final status if the
    /// machine stopped earlier (`None` when the bound was reached while
    /// still running).
    ///
    /// When [`MachineConfig::block_engine`] is on (the default),
    /// instructions retire through the decode-once µop engine
    /// ([`crate::block`]): each dispatch executes a burst of pre-decoded
    /// µops with the run-state check, the external-event scan, and the
    /// observer's register-event bookkeeping hoisted out of the inner
    /// loop. Every cycle-exact boundary is enforced by capping the burst
    /// budget: the `cycle` bound itself (injection points, checkpoint
    /// and convergence probes, cycle limits) and external-event latch
    /// cycles, which fall back to [`Machine::step_observed`] for the
    /// latching instruction. Behaviour is bit-identical to pure
    /// single-stepping (`block_engine: false`) — the block-engine oracle
    /// and fuzz batteries hold both paths to identical architectural
    /// state at every boundary.
    pub fn run_blocks_to<O: MemObserver>(&mut self, cycle: u64, obs: &mut O) -> Option<RunStatus> {
        while self.cycle < cycle {
            match self.state {
                State::Halted { code } => return Some(RunStatus::Halted { code }),
                State::Trapped(t) => return Some(RunStatus::Trapped(t)),
                State::Running => {}
            }
            if self.config.block_engine {
                let mut budget = cycle - self.cycle;
                if let Some(ev) = self.events.get(self.next_event) {
                    // µops in this burst retire in cycles
                    // `self.cycle + 1 ..= self.cycle + budget`; none may
                    // reach the next event's latch cycle (overdue events
                    // latch on the next stepped instruction).
                    let latch = ev.cycle.max(self.cycle + 1);
                    budget = budget.min(latch - 1 - self.cycle);
                }
                if budget > 0 {
                    if let Some(status) = self.exec_uops(budget, obs) {
                        return Some(status);
                    }
                    continue;
                }
            }
            let before = self.cycle;
            let result = self.step_observed(obs);
            self.block_stats.step_cycles += self.cycle - before;
            match result {
                StepResult::Running => {}
                StepResult::Halted { code } => return Some(RunStatus::Halted { code }),
                StepResult::Trapped(t) => return Some(RunStatus::Trapped(t)),
            }
        }
        None
    }

    /// Engine dispatch counters accumulated by the
    /// [`Machine::run_blocks_to`] family since construction (or since the
    /// state this machine was cloned from). Campaign workers snapshot and
    /// diff these around each faulted run.
    pub fn block_stats(&self) -> BlockStats {
        self.block_stats
    }

    /// Number of basic blocks (maximal straight-line instruction runs)
    /// the decode pass found in this machine's ROM — a static property
    /// of the program, useful for sizing expectations against the
    /// dynamic [`BlockStats::blocks`] counter.
    pub fn rom_block_count(&self) -> usize {
        self.blocks.block_count()
    }

    /// The tight pre-decoded µop loop: executes up to `budget` µops from
    /// the current program counter, following control flow through the
    /// PC-aligned table, and stops early only on halt or trap (returning
    /// the status; `None` means the budget was exhausted while running).
    ///
    /// Preconditions (enforced by [`Machine::run_blocks_to`]): the
    /// machine is running, `budget ≥ 1`, and no external event latches
    /// within the burst's cycle window — which is exactly what lets the
    /// loop skip the per-instruction state and event checks the step
    /// interpreter pays.
    fn exec_uops<O: MemObserver>(&mut self, budget: u64, obs: &mut O) -> Option<RunStatus> {
        debug_assert!(matches!(self.state, State::Running) && budget >= 1);
        let table = Arc::clone(&self.blocks);
        let uops = &table.uops[..];
        let rom_len = uops.len() as u32;
        let mut pc = self.pc;
        let mut cycle = self.cycle;
        let stop = cycle + budget;
        let start_cycle = cycle;
        let mut blocks = 1u64;
        let mut result = None;

        // Register-file access with the `< 16` operand invariant made
        // visible to the compiler (no bounds check in the hot loop).
        macro_rules! r {
            ($i:expr) => {
                self.regs[($i & 15) as usize]
            };
        }

        'burst: while cycle < stop {
            if pc >= rom_len {
                // Falling off the ROM end: clean halt, no cycle consumed
                // (same as the step interpreter).
                self.state = State::Halted { code: 0 };
                result = Some(RunStatus::Halted { code: 0 });
                break 'burst;
            }
            let u = uops[pc as usize];
            cycle += 1;
            if O::OBSERVES {
                for reg in table.events[pc as usize].reads.iter().flatten() {
                    obs.on_reg_access(RegAccess {
                        cycle,
                        reg: *reg,
                        kind: AccessKind::Read,
                    });
                }
            }
            macro_rules! trap {
                ($t:expr) => {{
                    let t = $t;
                    self.state = State::Trapped(t);
                    result = Some(RunStatus::Trapped(t));
                    break 'burst;
                }};
            }
            let mut next_pc = pc + 1;
            match u {
                Uop::Nop => {}
                Uop::Add { rd, rs1, rs2 } => r!(rd) = r!(rs1).wrapping_add(r!(rs2)),
                Uop::Sub { rd, rs1, rs2 } => r!(rd) = r!(rs1).wrapping_sub(r!(rs2)),
                Uop::And { rd, rs1, rs2 } => r!(rd) = r!(rs1) & r!(rs2),
                Uop::Or { rd, rs1, rs2 } => r!(rd) = r!(rs1) | r!(rs2),
                Uop::Xor { rd, rs1, rs2 } => r!(rd) = r!(rs1) ^ r!(rs2),
                Uop::Sll { rd, rs1, rs2 } => r!(rd) = r!(rs1) << (r!(rs2) & 31),
                Uop::Srl { rd, rs1, rs2 } => r!(rd) = r!(rs1) >> (r!(rs2) & 31),
                Uop::Sra { rd, rs1, rs2 } => {
                    r!(rd) = ((r!(rs1) as i32) >> (r!(rs2) & 31)) as u32;
                }
                Uop::Slt { rd, rs1, rs2 } => {
                    r!(rd) = ((r!(rs1) as i32) < (r!(rs2) as i32)) as u32;
                }
                Uop::Sltu { rd, rs1, rs2 } => r!(rd) = (r!(rs1) < r!(rs2)) as u32,
                Uop::Mul { rd, rs1, rs2 } => r!(rd) = r!(rs1).wrapping_mul(r!(rs2)),
                Uop::Addi { rd, rs1, imm } => r!(rd) = r!(rs1).wrapping_add(imm),
                Uop::Andi { rd, rs1, imm } => r!(rd) = r!(rs1) & imm,
                Uop::Ori { rd, rs1, imm } => r!(rd) = r!(rs1) | imm,
                Uop::Xori { rd, rs1, imm } => r!(rd) = r!(rs1) ^ imm,
                Uop::Slti { rd, rs1, imm } => {
                    r!(rd) = ((r!(rs1) as i32) < (imm as i32)) as u32;
                }
                Uop::Slli { rd, rs1, sh } => r!(rd) = r!(rs1) << sh,
                Uop::Srli { rd, rs1, sh } => r!(rd) = r!(rs1) >> sh,
                Uop::Srai { rd, rs1, sh } => r!(rd) = ((r!(rs1) as i32) >> sh) as u32,
                Uop::LoadImm { rd, value } => r!(rd) = value,
                Uop::Load {
                    rd,
                    base,
                    off,
                    width,
                    signed,
                } => {
                    let addr = r!(base).wrapping_add(off);
                    if addr >= MMIO_BASE {
                        match addr {
                            MMIO_CYCLE => {
                                if rd != 0 {
                                    r!(rd) = (cycle as u32).wrapping_sub(1);
                                }
                            }
                            MMIO_INPUT => {
                                if rd != 0 {
                                    r!(rd) = self.input_latch;
                                }
                            }
                            _ => trap!(Trap::MmioRead { addr }),
                        }
                    } else {
                        let raw = match self.ram.read(addr, width) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        obs.on_access(MemAccess {
                            cycle,
                            addr,
                            width,
                            kind: AccessKind::Read,
                        });
                        let v = if signed {
                            match width {
                                MemWidth::Byte => raw as u8 as i8 as i32 as u32,
                                MemWidth::Half => raw as u16 as i16 as i32 as u32,
                                MemWidth::Word => raw,
                            }
                        } else {
                            raw
                        };
                        if rd != 0 {
                            r!(rd) = v;
                        }
                    }
                }
                Uop::Store {
                    rs,
                    base,
                    off,
                    width,
                } => {
                    let addr = r!(base).wrapping_add(off);
                    let value = r!(rs);
                    if addr >= MMIO_BASE {
                        match addr {
                            MMIO_SERIAL => {
                                if self.serial.len() >= self.config.serial_limit {
                                    trap!(Trap::SerialOverflow);
                                }
                                self.serial.push(value as u8);
                            }
                            MMIO_DETECT => self.detect_count += 1,
                            _ => trap!(Trap::OutOfRange { addr }),
                        }
                    } else {
                        if let Err(t) = self.ram.write(addr, width, value) {
                            trap!(t);
                        }
                        obs.on_access(MemAccess {
                            cycle,
                            addr,
                            width,
                            kind: AccessKind::Write,
                        });
                    }
                }
                Uop::Br {
                    kind,
                    rs1,
                    rs2,
                    target,
                } => {
                    if branch_taken(kind, r!(rs1), r!(rs2)) {
                        next_pc = target;
                    }
                    blocks += 1;
                }
                Uop::BrBad {
                    kind,
                    rs1,
                    rs2,
                    bad,
                } => {
                    if branch_taken(kind, r!(rs1), r!(rs2)) {
                        trap!(Trap::BadJump { target: bad });
                    }
                    blocks += 1;
                }
                Uop::Jal { rd, target } => {
                    if rd != 0 {
                        r!(rd) = pc + 1;
                    }
                    next_pc = target;
                    blocks += 1;
                }
                Uop::JalBad { target } => trap!(Trap::BadJump { target }),
                Uop::Jalr { rd, rs1, off } => {
                    let target = r!(rs1).wrapping_add(off);
                    if target > rom_len {
                        trap!(Trap::BadJump { target });
                    }
                    if rd != 0 {
                        r!(rd) = pc + 1;
                    }
                    next_pc = target;
                    blocks += 1;
                }
                Uop::Halt { code } => {
                    self.state = State::Halted { code };
                    result = Some(RunStatus::Halted { code });
                    break 'burst;
                }
            }
            if O::OBSERVES {
                if let Some(rd) = table.events[pc as usize].write {
                    obs.on_reg_access(RegAccess {
                        cycle,
                        reg: rd,
                        kind: AccessKind::Write,
                    });
                }
            }
            pc = next_pc;
        }
        self.pc = pc;
        self.cycle = cycle;
        self.block_stats.block_cycles += cycle - start_cycle;
        self.block_stats.blocks += blocks;
        result
    }

    /// `true` when this machine's *future evolution* is provably identical
    /// to `pristine`'s: both are still running at the same cycle with
    /// identical registers, program counter, RAM contents, input latch,
    /// pending external events, and serial-output length.
    ///
    /// The machine is deterministic, so equality of exactly this state
    /// implies every subsequent step is identical — the campaign executor
    /// uses it to terminate a faulted run early once it has converged back
    /// onto a pristine checkpoint (the fault was masked or absorbed).
    ///
    /// Two fields are deliberately compared loosely:
    ///
    /// * the serial buffer matters to execution only through its *length*
    ///   (the [`MachineConfig::serial_limit`] overflow trap); whether the
    ///   bytes also match the golden output is an *observational* question
    ///   the caller answers separately (serial-prefix check);
    /// * `detect_count` is a pure output counter — a converged run with
    ///   extra detections still replays the same tail, it just classifies
    ///   as detected-and-corrected instead of no-effect.
    ///
    /// RAM comparison uses the copy-on-write page structure: pages still
    /// `Arc`-shared between the two machines compare by pointer.
    pub fn converged_with(&self, pristine: &Machine) -> bool {
        self.converged_core(pristine) && self.regs == pristine.regs && self.ram == pristine.ram
    }

    /// [`Machine::converged_with`] restricted to *live* state: registers
    /// and RAM bytes marked dead in `mask` are skipped.
    ///
    /// A dead location is one whose next access in the reference run
    /// after the current cycle is a write, or that is never accessed
    /// again. A run equal to the pristine machine in everything but dead
    /// locations still evolves identically: every future read sees equal
    /// values (a dead location is rewritten — with equal values — before
    /// any read), so control flow, output and detections stay those of
    /// the reference run, and the lingering differences are unobservable.
    /// This catches the common masked-fault shape the strict comparison
    /// cannot: a corrupted bit that simply goes dormant for the rest of
    /// the run.
    pub fn converged_with_masked(&self, pristine: &Machine, mask: &ConvergenceMask) -> bool {
        self.converged_core(pristine)
            && (0..16).all(|r| mask.reg_live & (1 << r) == 0 || self.regs[r] == pristine.regs[r])
            && self.ram.eq_masked(&pristine.ram, &mask.ram_live)
    }

    /// 128-bit digest of the machine's complete architectural state:
    /// registers, program counter, cycle counter, run state (including
    /// halt code / trap cause), RAM contents, serial output (full
    /// content, not just length), detection count, input latch and
    /// external-event progress.
    ///
    /// The machine is deterministic, so two machines *of the same
    /// program, event schedule and [`MachineConfig`]* whose digests are
    /// equal evolve identically from here on — equal digests (modulo a
    /// ~2⁻¹²⁸ hash collision) imply equal future runs, equal final
    /// output, and equal outcome classification under any fixed cycle
    /// budget. The campaign executor keys its fault-equivalence
    /// memoization on `(cycle, digest)`; the cycle is folded into the
    /// digest as well, so the digest alone already separates states at
    /// different times.
    ///
    /// Takes `&mut self` to maintain the incremental hashing state: the
    /// RAM hash is a rolling accumulator over dirtied COW pages
    /// ([`crate::Ram::content_hash`]) and the serial hash resumes from
    /// the last probed position (serial output only ever appends), so
    /// digesting a fork of an already-digested machine costs `O(pages
    /// dirtied + serial bytes appended since the fork)` plus the (small)
    /// fixed-size state — `O(1)` for a clean re-probe.
    ///
    /// The digest *value* is purely content-determined (held against
    /// [`Machine::state_digest_from_scratch`] by the fuzz battery), so
    /// digests computed in different processes — or persisted across
    /// daemon restarts by the warm store — compare meaningfully.
    pub fn state_digest(&mut self) -> StateDigest {
        use crate::ram::fold128;
        // Fold the serial bytes appended since the previous probe into
        // the cached accumulator (complete 8-byte chunks only; the
        // partial tail is re-folded per probe below).
        while self.serial_hash_pos + 8 <= self.serial.len() {
            let chunk = &self.serial[self.serial_hash_pos..self.serial_hash_pos + 8];
            self.serial_hash = fold128(
                self.serial_hash,
                u64::from_le_bytes(chunk.try_into().unwrap()),
            );
            self.serial_hash_pos += 8;
        }
        let serial = finish_serial_hash(
            self.serial_hash,
            &self.serial[self.serial_hash_pos..],
            self.serial.len(),
        );
        let ram = self.ram.content_hash();
        self.digest_with(serial, ram)
    }

    /// [`Machine::state_digest`] recomputed with no cached hashing state
    /// (full serial re-walk, [`crate::Ram::content_hash_from_scratch`]).
    /// The oracle the digest-equality fuzz battery compares the
    /// incremental digest against.
    pub fn state_digest_from_scratch(&self) -> StateDigest {
        use crate::ram::fold128;
        let mut sacc = SERIAL_HASH_SEED;
        let complete = self.serial.len() / 8 * 8;
        for chunk in self.serial[..complete].chunks_exact(8) {
            sacc = fold128(sacc, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let serial = finish_serial_hash(sacc, &self.serial[complete..], self.serial.len());
        self.digest_with(serial, self.ram.content_hash_from_scratch())
    }

    /// Folds the fixed-size architectural state around the given serial
    /// and RAM sub-hashes.
    fn digest_with(&self, serial: (u64, u64), ram: u128) -> StateDigest {
        use crate::ram::fold128;
        let mut acc = (0x9216_D5D9_8979_FB1B, 0x0D95_748F_728E_B658);
        acc = fold128(
            acc,
            match self.state {
                State::Running => 0,
                State::Halted { code } => 1 | (code as u64) << 8,
                State::Trapped(t) => 2 | trap_word(t) << 8,
            },
        );
        acc = fold128(acc, self.cycle);
        acc = fold128(acc, (self.pc as u64) << 32 | self.input_latch as u64);
        acc = fold128(acc, self.next_event as u64);
        acc = fold128(acc, self.detect_count);
        for pair in self.regs.chunks_exact(2) {
            acc = fold128(acc, (pair[0] as u64) << 32 | pair[1] as u64);
        }
        // Serial content matters to classification (SDC is a serial
        // mismatch), so the digest covers the bytes, not just the length.
        acc = fold128(acc, serial.0);
        acc = fold128(acc, serial.1);
        acc = fold128(acc, (ram >> 64) as u64);
        acc = fold128(acc, ram as u64);
        StateDigest((acc.0 as u128) << 64 | acc.1 as u128)
    }

    /// The mask-independent part of the convergence comparison.
    fn converged_core(&self, pristine: &Machine) -> bool {
        debug_assert!(
            Arc::ptr_eq(&self.rom, &pristine.rom) || self.rom == pristine.rom,
            "convergence compare across different programs"
        );
        self.state == State::Running
            && pristine.state == State::Running
            && self.cycle == pristine.cycle
            && self.pc == pristine.pc
            && self.input_latch == pristine.input_latch
            && self.next_event == pristine.next_event
            && self.serial.len() == pristine.serial.len()
    }
}

/// Seed of the rolling serial-output sub-hash (independent of the RAM
/// and whole-state seeds so the sub-hashes never alias).
const SERIAL_HASH_SEED: (u64, u64) = (0xC2B2_AE3D_27D4_EB4F, 0x1656_67B1_9E37_79F9);

/// Completes a serial sub-hash: folds the zero-padded partial tail
/// chunk (if any) and the total length (which disambiguates the
/// padding) into a copy of the rolling accumulator.
fn finish_serial_hash(mut acc: (u64, u64), tail: &[u8], len: usize) -> (u64, u64) {
    use crate::ram::fold128;
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        acc = fold128(acc, u64::from_le_bytes(word));
    }
    fold128(acc, len as u64)
}

/// Opaque 128-bit architectural-state digest, produced by
/// [`Machine::state_digest`]. Suitable as a hash-map key; equality of
/// digests is (collision-negligibly) equivalent to equality of the full
/// architectural state for machines running the same program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateDigest(u128);

impl StateDigest {
    /// The raw digest bits, for serialization (the daemon's persistent
    /// warm store journals digests and compares them across processes —
    /// sound because the digest is purely content-determined).
    #[inline]
    pub fn to_bits(self) -> u128 {
        self.0
    }

    /// Rebuilds a digest from [`StateDigest::to_bits`].
    #[inline]
    pub fn from_bits(bits: u128) -> StateDigest {
        StateDigest(bits)
    }
}

/// Injectively encodes a trap cause into a word for the state digest.
/// Variant tags sit in the low byte; payloads (which are ≤ 34 bits) are
/// shifted above them.
fn trap_word(t: Trap) -> u64 {
    match t {
        Trap::Misaligned { addr, width } => 1 | (width.bytes() as u64) << 8 | (addr as u64) << 12,
        Trap::OutOfRange { addr } => 2 | (addr as u64) << 12,
        Trap::MmioRead { addr } => 3 | (addr as u64) << 12,
        Trap::BadJump { target } => 4 | (target as u64) << 12,
        Trap::SerialOverflow => 5,
    }
}

/// Which machine state is still *live* — able to influence the rest of a
/// reference run — at a given point in time. Built by the campaign
/// executor from the golden run's access traces, one mask per pristine
/// checkpoint, and consumed by [`Machine::converged_with_masked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceMask {
    /// Flat bitmask over RAM bytes: bit `i` set ⇔ byte `i` may still be
    /// read before being rewritten.
    pub ram_live: Vec<u8>,
    /// Bitmask over registers `r0..r15`: bit `r` set ⇔ register `r` may
    /// still be read before being rewritten.
    pub reg_live: u16,
}

impl ConvergenceMask {
    /// A mask with every byte and register live (strict comparison).
    pub fn all_live(ram_bytes: usize) -> ConvergenceMask {
        ConvergenceMask {
            ram_live: vec![0xFF; ram_bytes.div_ceil(8)],
            reg_live: u16::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::Asm;

    fn run_program(f: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100_000);
        m
    }

    #[test]
    fn arithmetic_basics() {
        let m = run_program(|a| {
            a.li(Reg::R1, 7);
            a.li(Reg::R2, -3);
            a.add(Reg::R3, Reg::R1, Reg::R2);
            a.sub(Reg::R4, Reg::R1, Reg::R2);
            a.mul(Reg::R5, Reg::R1, Reg::R2);
        });
        assert_eq!(m.reg(Reg::R3), 4);
        assert_eq!(m.reg(Reg::R4), 10);
        assert_eq!(m.reg(Reg::R5) as i32, -21);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let m = run_program(|a| {
            a.li(Reg::R0, 42);
            a.add(Reg::R1, Reg::R0, Reg::R0);
        });
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let m = run_program(|a| {
            a.li(Reg::R1, -8);
            a.srai(Reg::R2, Reg::R1, 1); // -4
            a.srli(Reg::R3, Reg::R1, 28); // 0xF
            a.slli(Reg::R4, Reg::R1, 1); // -16
            a.slt(Reg::R5, Reg::R1, Reg::R0); // -8 < 0 → 1
            a.sltu(Reg::R6, Reg::R1, Reg::R0); // big unsigned < 0 → 0
        });
        assert_eq!(m.reg(Reg::R2) as i32, -4);
        assert_eq!(m.reg(Reg::R3), 0xF);
        assert_eq!(m.reg(Reg::R4) as i32, -16);
        assert_eq!(m.reg(Reg::R5), 1);
        assert_eq!(m.reg(Reg::R6), 0);
    }

    #[test]
    fn zero_extended_logical_immediates() {
        let m = run_program(|a| {
            a.lui(Reg::R1, 0xFFFF);
            a.ori(Reg::R1, Reg::R1, -1); // zext(0xFFFF)
            a.andi(Reg::R2, Reg::R1, -1); // 0x0000FFFF
            a.xori(Reg::R3, Reg::R1, -1); // flips low 16 bits
        });
        assert_eq!(m.reg(Reg::R1), 0xFFFF_FFFF);
        assert_eq!(m.reg(Reg::R2), 0x0000_FFFF);
        assert_eq!(m.reg(Reg::R3), 0xFFFF_0000);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let m = run_program(|a| {
            a.data_space("buf", 8);
            a.li(Reg::R1, -1);
            a.sb(Reg::R1, Reg::R0, 0);
            a.lb(Reg::R2, Reg::R0, 0); // -1 sign-extended
            a.lbu(Reg::R3, Reg::R0, 0); // 255
            a.li(Reg::R4, -2);
            a.sh(Reg::R4, Reg::R0, 2);
            a.lh(Reg::R5, Reg::R0, 2); // -2
            a.lhu(Reg::R6, Reg::R0, 2); // 0xFFFE
        });
        assert_eq!(m.reg(Reg::R2) as i32, -1);
        assert_eq!(m.reg(Reg::R3), 255);
        assert_eq!(m.reg(Reg::R5) as i32, -2);
        assert_eq!(m.reg(Reg::R6), 0xFFFE);
    }

    #[test]
    fn serial_and_detect_mmio() {
        let m = run_program(|a| {
            a.li(Reg::R1, b'A' as i32);
            a.serial_out(Reg::R1);
            a.detect_signal(Reg::R1);
            a.detect_signal(Reg::R1);
        });
        assert_eq!(m.serial(), b"A");
        assert_eq!(m.detect_count(), 2);
    }

    #[test]
    fn cycle_counter_mmio() {
        let m = run_program(|a| {
            a.nop();
            a.nop();
            a.read_cycle(Reg::R1); // executes in cycle 3, reads 2 completed
        });
        assert_eq!(m.reg(Reg::R1), 2);
    }

    #[test]
    fn run_to_completion_counts_cycles() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.nop();
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
        assert_eq!(m.cycle(), 3);
    }

    #[test]
    fn explicit_halt_code() {
        let m = run_program(|a| {
            a.halt(7);
        });
        assert_eq!(m.status(), Some(RunStatus::Halted { code: 7 }));
        assert_eq!(m.cycle(), 1); // halt consumes its cycle
    }

    #[test]
    fn loops_execute() {
        let m = run_program(|a| {
            a.li(Reg::R1, 5);
            a.li(Reg::R2, 0);
            let top = a.label_here();
            a.add(Reg::R2, Reg::R2, Reg::R1);
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R0, top);
        });
        assert_eq!(m.reg(Reg::R2), 15);
        assert_eq!(m.cycle(), 2 + 5 * 3);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut a = Asm::new();
        let top = a.label_here();
        a.j(top);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(50), RunStatus::CycleLimit);
        assert_eq!(m.cycle(), 50);
        assert_eq!(m.status(), None); // still runnable
    }

    #[test]
    fn traps_on_bad_access() {
        let m = run_program(|a| {
            a.data_space("x", 4);
            a.li(Reg::R1, 100);
            a.lw(Reg::R2, Reg::R1, 0);
        });
        assert_eq!(
            m.status(),
            Some(RunStatus::Trapped(Trap::OutOfRange { addr: 100 }))
        );
    }

    #[test]
    fn traps_on_misaligned() {
        let m = run_program(|a| {
            a.data_space("x", 8);
            a.li(Reg::R1, 1);
            a.lw(Reg::R2, Reg::R1, 0);
        });
        assert!(matches!(
            m.status(),
            Some(RunStatus::Trapped(Trap::Misaligned { addr: 1, .. }))
        ));
    }

    #[test]
    fn traps_on_wild_jump() {
        let m = run_program(|a| {
            a.li(Reg::R1, 999);
            a.jalr(Reg::R0, Reg::R1, 0);
        });
        assert_eq!(
            m.status(),
            Some(RunStatus::Trapped(Trap::BadJump { target: 999 }))
        );
    }

    #[test]
    fn jump_to_rom_end_is_clean_halt() {
        let m = run_program(|a| {
            a.li(Reg::R1, 2); // ROM has 2 instructions; index 2 == len
            a.jalr(Reg::R0, Reg::R1, 0);
        });
        assert_eq!(m.status(), Some(RunStatus::Halted { code: 0 }));
    }

    #[test]
    fn mmio_read_of_write_only_register_traps() {
        let m = run_program(|a| {
            a.lb(Reg::R1, Reg::R0, -256); // serial is write-only
        });
        assert!(matches!(
            m.status(),
            Some(RunStatus::Trapped(Trap::MmioRead { .. }))
        ));
    }

    #[test]
    fn serial_overflow_traps() {
        let mut a = Asm::new();
        a.li(Reg::R1, b'x' as i32);
        let top = a.label_here();
        a.serial_out(Reg::R1);
        a.j(top);
        let p = a.build().unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                serial_limit: 10,
                ..MachineConfig::default()
            },
        );
        assert_eq!(m.run(1_000), RunStatus::Trapped(Trap::SerialOverflow));
        assert_eq!(m.serial().len(), 10);
    }

    #[test]
    fn determinism_and_clone_independence() {
        let mut a = Asm::new();
        let buf = a.data_space("buf", 16);
        a.li(Reg::R1, 0xAB);
        a.sb(Reg::R1, Reg::R0, buf.offset());
        a.lb(Reg::R2, Reg::R0, buf.offset());
        a.serial_out(Reg::R2);
        let p = a.build().unwrap();

        let mut m1 = Machine::new(&p);
        m1.run_to(2);
        let mut m2 = m1.clone();
        // Diverge the clone with a fault; the original is untouched.
        m2.flip_bit(buf.addr() as u64 * 8);
        let s1 = m1.run(1_000);
        let s2 = m2.run(1_000);
        assert_eq!(s1, s2); // both halt cleanly...
        assert_eq!(m1.serial(), &[0xAB]);
        assert_eq!(m2.serial(), &[0xAA]); // ...but the fault corrupted output
    }

    #[test]
    fn flip_before_read_is_seen_flip_after_is_not() {
        // Verifies the cycle convention: a flip applied after run_to(c-1)
        // is visible to the read in cycle c.
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[0x01]);
        a.nop(); // cycle 1
        a.lb(Reg::R1, Reg::R0, x.offset()); // cycle 2: the read
        a.serial_out(Reg::R1); // cycle 3
        let p = a.build().unwrap();

        // Inject at coordinate cycle=2 (just before the read executes).
        let mut m = Machine::new(&p);
        m.run_to(1);
        m.flip_bit(0);
        m.run(100);
        assert_eq!(m.serial(), &[0x00]);

        // Inject at coordinate cycle=3 (after the read): dormant.
        let mut m = Machine::new(&p);
        m.run_to(2);
        m.flip_bit(0);
        m.run(100);
        assert_eq!(m.serial(), &[0x01]);
    }

    #[test]
    fn repeated_step_after_halt_is_stable() {
        let mut a = Asm::new();
        a.halt(3);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.step(), StepResult::Halted { code: 3 });
        assert_eq!(m.step(), StepResult::Halted { code: 3 });
        assert_eq!(m.cycle(), 1);
    }

    #[test]
    fn convergence_detects_masked_fault() {
        // A value is written, corrupted, then overwritten before any read:
        // after the overwrite the faulted fork is bit-identical to the
        // pristine machine again.
        let mut a = Asm::new();
        let x = a.data_space("x", 4);
        a.li(Reg::R1, 5);
        a.sw(Reg::R1, Reg::R0, x.offset()); // cycle 3 (li is 2 insts)
        a.li(Reg::R2, 9);
        a.sw(Reg::R2, Reg::R0, x.offset()); // overwrites the fault
        a.lw(Reg::R3, Reg::R0, x.offset());
        a.serial_out(Reg::R3);
        let p = a.build().unwrap();

        let mut pristine = Machine::new(&p);
        pristine.run_to(3);
        let mut faulted = pristine.clone();
        faulted.flip_bit(x.addr() as u64 * 8 + 1); // dead interval: dies at the sw
        assert!(!faulted.converged_with(&pristine), "fault still live");
        pristine.run_to(6);
        faulted.run_to(6);
        assert!(
            faulted.converged_with(&pristine),
            "overwrite masks the fault"
        );
    }

    #[test]
    fn masked_convergence_absorbs_dormant_faults() {
        // The fault corrupts a byte that is read once more and then never
        // accessed again: strict convergence never fires (RAM differs
        // forever), masked convergence fires as soon as the byte is dead.
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[0x40]);
        a.lb(Reg::R1, Reg::R0, x.offset()); // only access to x
        a.slti(Reg::R2, Reg::R1, 100); // 1 for golden and faulted values
        a.mv(Reg::R1, Reg::R0); // kill the corrupted register copy
        a.serial_out(Reg::R2);
        a.nop();
        let p = a.build().unwrap();

        let mut pristine = Machine::new(&p);
        let mut faulted = Machine::new(&p);
        faulted.flip_bit(0); // x = 0x41: still < 100, comparison masks it
        pristine.run_to(4);
        faulted.run_to(4);
        assert!(!faulted.converged_with(&pristine), "RAM still differs");

        // x (byte 0) is dead from here on; everything else is live.
        let mut mask = ConvergenceMask::all_live(1);
        assert!(
            !faulted.converged_with_masked(&pristine, &mask),
            "all-live mask must behave like the strict comparison"
        );
        mask.ram_live[0] &= !1;
        assert!(faulted.converged_with_masked(&pristine, &mask));

        // A dead *register* difference is likewise absorbed.
        let mut faulted = pristine.clone();
        faulted.flip_reg_bit((3 - 1) * 32); // r3 never touched by the program
        assert!(!faulted.converged_with(&pristine));
        let mut mask = ConvergenceMask::all_live(1);
        mask.reg_live &= !(1 << 3);
        assert!(faulted.converged_with_masked(&pristine, &mask));
    }

    #[test]
    fn convergence_rejects_any_architectural_difference() {
        let mut a = Asm::new();
        a.data_space("buf", 8);
        for _ in 0..6 {
            a.nop();
        }
        let p = a.build().unwrap();
        let mut m1 = Machine::new(&p);
        m1.run_to(2);
        let m2 = m1.clone();
        assert!(m1.converged_with(&m2));

        let mut diverged = m2.clone();
        diverged.flip_reg_bit(0);
        assert!(!diverged.converged_with(&m1), "register difference");

        let mut diverged = m2.clone();
        diverged.flip_bit(0);
        assert!(!diverged.converged_with(&m1), "RAM difference");

        let mut diverged = m2.clone();
        diverged.run_to(3);
        assert!(!diverged.converged_with(&m1), "cycle difference");

        let mut halted = m2.clone();
        halted.run(100);
        assert!(
            !halted.converged_with(&m1),
            "stopped machines never converge"
        );
    }

    #[test]
    fn convergence_ignores_detect_count_but_not_serial_length() {
        // Equal-length paths: the faulted path signals a detection and
        // scrubs the register, re-aligning cycle, pc and registers with
        // the pristine run — only detect_count differs afterwards, and
        // that must not block convergence (it decides NoEffect vs
        // DetectedCorrected, not *whether* the tail is identical).
        let mut a = Asm::new();
        let clean = a.new_label();
        let join = a.new_label();
        a.beq(Reg::R1, Reg::R0, clean);
        a.detect_signal(Reg::R1); // faulted path, 3 cycles
        a.mv(Reg::R1, Reg::R0);
        a.j(join);
        a.bind(clean);
        a.nop(); // pristine path, 3 cycles
        a.nop();
        a.nop();
        a.bind(join);
        a.serial_out(Reg::R1);
        let p = a.build().unwrap();

        let mut pristine = Machine::new(&p);
        let mut faulted = Machine::new(&p);
        faulted.flip_reg_bit(0); // r1 = 1: takes the detect path
        pristine.run_to(4);
        faulted.run_to(4);
        assert_eq!(faulted.detect_count(), 1);
        assert_eq!(pristine.detect_count(), 0);
        assert!(faulted.converged_with(&pristine));

        // A path that *wrote serial output* instead never converges, even
        // with registers, pc and cycle re-aligned: the extra byte makes
        // the final output differ from golden, which pure state
        // comparison cannot absorb.
        let mut a = Asm::new();
        let clean = a.new_label();
        let join = a.new_label();
        a.beq(Reg::R1, Reg::R0, clean);
        a.serial_out(Reg::R1);
        a.mv(Reg::R1, Reg::R0);
        a.j(join);
        a.bind(clean);
        a.nop();
        a.nop();
        a.nop();
        a.bind(join);
        a.halt(0);
        let p = a.build().unwrap();
        let mut pristine = Machine::new(&p);
        let mut faulted = Machine::new(&p);
        faulted.flip_reg_bit(0);
        pristine.run_to(4);
        faulted.run_to(4);
        assert_eq!(faulted.pc(), pristine.pc());
        assert_eq!(faulted.serial().len(), 1);
        assert!(!faulted.converged_with(&pristine));
    }

    #[test]
    fn state_digest_separates_architectural_differences() {
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[1, 2, 3, 4]);
        a.lb(Reg::R1, Reg::R0, x.offset());
        a.serial_out(Reg::R1);
        a.sb(Reg::R0, Reg::R0, x.offset());
        a.nop();
        let p = a.build().unwrap();

        let mut m = Machine::new(&p);
        m.run_to(2);
        let base = m.state_digest();
        assert_eq!(m.clone().state_digest(), base, "clone digests equal");
        assert_eq!(m.state_digest(), base, "digesting is idempotent");

        // Every digested component, perturbed one at a time.
        let mut d = m.clone();
        d.flip_reg_bit(0);
        assert_ne!(d.state_digest(), base, "register difference");
        let mut d = m.clone();
        d.flip_bit(x.addr() as u64 * 8 + 9);
        assert_ne!(d.state_digest(), base, "RAM difference");
        let mut d = m.clone();
        d.run_to(3);
        assert_ne!(d.state_digest(), base, "cycle/pc difference");
        let mut d = m.clone();
        d.run(100);
        assert_ne!(d.state_digest(), base, "halted vs running");

        // An involution restores the digest exactly.
        let mut d = m.clone();
        d.flip_bit(x.addr() as u64 * 8);
        d.flip_bit(x.addr() as u64 * 8);
        assert_eq!(d.state_digest(), base);
    }

    #[test]
    fn state_digest_covers_serial_content_not_just_length() {
        // Two runs emitting equal-length but different serial bytes must
        // digest differently: classification (SDC vs NoEffect) depends
        // on the content, and the memoizing executor keys outcomes on
        // the digest.
        let mut a = Asm::new();
        let x = a.data_bytes("x", b"a");
        a.lb(Reg::R1, Reg::R0, x.offset());
        a.serial_out(Reg::R1);
        a.nop();
        let p = a.build().unwrap();

        let mut clean = Machine::new(&p);
        let mut faulted = Machine::new(&p);
        faulted.flip_bit(0); // emits 'a' ^ 1 = '`'
        clean.run_to(2);
        faulted.run_to(2);
        assert_eq!(clean.serial().len(), faulted.serial().len());
        assert_ne!(clean.state_digest(), faulted.state_digest());

        // Restoring the flipped (already dead) byte re-aligns everything
        // but the serial content: still different digests.
        faulted.flip_bit(0);
        assert_eq!(clean.ram().to_vec(), faulted.ram().to_vec());
        assert_ne!(clean.state_digest(), faulted.state_digest());
    }

    #[test]
    fn state_digest_ignores_cow_sharing_structure() {
        // Digests are content-determined: a machine rebuilt from scratch
        // and a forked machine in the same state digest identically even
        // though their RAM page tables share nothing.
        let mut a = Asm::new();
        a.data_space("buf", 600);
        a.li(Reg::R1, 0x55);
        a.sb(Reg::R1, Reg::R0, 0);
        a.sb(Reg::R1, Reg::R0, 300);
        a.nop();
        let p = a.build().unwrap();
        let mut m1 = Machine::new(&p);
        m1.run_to(3);
        let mut fork = m1.clone();
        let mut m2 = Machine::new(&p);
        m2.run_to(3);
        assert!(!m1.ram().shares_all_pages_with(m2.ram()) || m1.ram() == m2.ram());
        assert_eq!(m1.state_digest(), m2.state_digest());
        assert_eq!(fork.state_digest(), m2.state_digest());
    }

    #[test]
    fn observer_sees_ram_accesses_only() {
        use crate::observer::RecordingObserver;
        let mut a = Asm::new();
        let x = a.data_word("x", 5);
        a.lw(Reg::R1, Reg::R0, x.offset()); // RAM read
        a.serial_out(Reg::R1); // MMIO: not reported
        a.sw(Reg::R1, Reg::R0, x.offset()); // RAM write
        let p = a.build().unwrap();
        let mut obs = RecordingObserver::default();
        let mut m = Machine::new(&p);
        m.run_observed(100, &mut obs);
        assert_eq!(obs.accesses.len(), 2);
        assert_eq!(obs.accesses[0].kind, AccessKind::Read);
        assert_eq!(obs.accesses[0].cycle, 1);
        assert_eq!(obs.accesses[1].kind, AccessKind::Write);
        assert_eq!(obs.accesses[1].cycle, 3);
    }

    /// A looping program plus its machine under both engine configs.
    fn engine_pair() -> (Machine, Machine) {
        let mut a = Asm::new();
        let buf = a.data_space("buf", 8);
        a.li(Reg::R1, 25);
        let top = a.label_here();
        a.sw(Reg::R1, Reg::R0, buf.offset());
        a.lw(Reg::R2, Reg::R0, buf.offset());
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, top);
        a.serial_out(Reg::R2);
        let p = a.build().unwrap();
        let blocks = Machine::new(&p);
        let steps = Machine::with_config(
            &p,
            MachineConfig {
                block_engine: false,
                ..MachineConfig::default()
            },
        );
        (blocks, steps)
    }

    #[test]
    fn block_engine_run_to_is_cycle_exact() {
        // Every run_to bound — including mid-block ones — must leave the
        // two engines in identical architectural states.
        let (mut blocks, mut steps) = engine_pair();
        for bound in [1u64, 2, 5, 7, 8, 13, 50, 200] {
            assert_eq!(blocks.run_to(bound), steps.run_to(bound), "bound {bound}");
            assert_eq!(blocks.cycle(), steps.cycle(), "bound {bound}");
            assert_eq!(blocks.pc(), steps.pc(), "bound {bound}");
            assert_eq!(blocks.state_digest(), steps.state_digest(), "bound {bound}");
        }
        assert_eq!(blocks.status(), Some(RunStatus::Halted { code: 0 }));
    }

    #[test]
    fn block_stats_partition_the_cycle_count() {
        let (mut blocks, mut steps) = engine_pair();
        blocks.run(100_000);
        steps.run(100_000);
        let b = blocks.block_stats();
        assert_eq!(
            b.block_cycles + b.step_cycles,
            blocks.cycle(),
            "every retired instruction is attributed to exactly one engine"
        );
        assert!(b.block_cycles > 0, "default config must use the µop loop");
        assert!(b.blocks > 0);
        let s = steps.block_stats();
        assert_eq!(s.block_cycles, 0, "disabled engine must never dispatch");
        assert_eq!(s.step_cycles, steps.cycle());
        assert!(blocks.rom_block_count() > 1);
    }

    #[test]
    fn block_engine_latches_events_on_exact_cycles() {
        // The input latch flips mid-run; µop bursts must stop short of
        // each latch cycle so the delivery lands on the same instruction
        // as under single-stepping.
        let mut a = Asm::new();
        a.li(Reg::R3, 6);
        let top = a.label_here();
        a.read_input(Reg::R1);
        a.serial_out(Reg::R1);
        a.addi(Reg::R3, Reg::R3, -1);
        a.bne(Reg::R3, Reg::R0, top);
        let p = a.build().unwrap();
        // The latch is polled at cycles 2, 6, 10, 14, 18, 22. The second
        // event lands *exactly* on a poll cycle (its instruction must
        // already read the new value), the others land mid-loop.
        let events = vec![
            ExternalEvent { cycle: 4, value: 7 },
            ExternalEvent {
                cycle: 10,
                value: 8,
            },
            ExternalEvent {
                cycle: 15,
                value: 9,
            },
        ];
        let mut blocks = Machine::with_events(&p, MachineConfig::default(), events.clone());
        let mut steps = Machine::with_events(
            &p,
            MachineConfig {
                block_engine: false,
                ..MachineConfig::default()
            },
            events,
        );
        assert_eq!(blocks.run(1_000), steps.run(1_000));
        assert_eq!(blocks.serial(), steps.serial());
        assert_eq!(blocks.state_digest(), steps.state_digest());
        // And the latch really was observed changing: three distinct
        // values must appear in the poll log.
        assert!(blocks.serial().contains(&7));
        assert!(blocks.serial().contains(&8));
        assert!(blocks.serial().contains(&9));
    }

    #[test]
    fn block_engine_reads_cycle_counter_exactly() {
        // MMIO_CYCLE returns the number of *completed* instructions; the
        // µop loop computes it from its local cycle register.
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.read_cycle(Reg::R1);
        a.serial_out(Reg::R1);
        a.read_cycle(Reg::R2);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100);
        assert!(m.block_stats().block_cycles > 0);
        assert_eq!(m.serial(), &[2]);
        assert_eq!(m.reg(Reg::R2), 4);
    }

    #[test]
    fn block_engine_traps_keep_pc_and_consume_the_cycle() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.lw(Reg::R1, Reg::R0, 1); // misaligned: traps at pc 2, cycle 3
        let p = a.build().unwrap();
        let mut blocks = Machine::new(&p);
        let mut steps = Machine::with_config(
            &p,
            MachineConfig {
                block_engine: false,
                ..MachineConfig::default()
            },
        );
        let a_status = blocks.run(100);
        let b_status = steps.run(100);
        assert_eq!(a_status, b_status);
        assert!(matches!(
            a_status,
            RunStatus::Trapped(Trap::Misaligned { .. })
        ));
        assert_eq!(blocks.cycle(), 3);
        assert_eq!(blocks.pc(), 2, "trap must not advance the pc");
        assert_eq!(blocks.state_digest(), steps.state_digest());
    }
}
