//! Execution status types.

use crate::trap::Trap;

/// Result of a single [`crate::Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The instruction executed; the machine can continue.
    Running,
    /// The machine halted (explicit `halt` or run-to-completion).
    Halted {
        /// Exit code (0 = normal completion).
        code: u16,
    },
    /// A CPU exception occurred; the machine is stopped.
    Trapped(Trap),
}

/// Result of running a machine until completion or a cycle limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RunStatus {
    /// The program finished (explicit `halt` or fell off the end of ROM).
    Halted {
        /// Exit code (0 = normal completion).
        code: u16,
    },
    /// A CPU exception stopped the machine.
    Trapped(Trap),
    /// The cycle limit was reached before the program finished. In an FI
    /// experiment this is classified as a timeout failure.
    CycleLimit,
}

impl RunStatus {
    /// `true` for a clean `Halted { code: 0 }`.
    pub fn is_clean_halt(self) -> bool {
        matches!(self, RunStatus::Halted { code: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_halt() {
        assert!(RunStatus::Halted { code: 0 }.is_clean_halt());
        assert!(!RunStatus::Halted { code: 1 }.is_clean_halt());
        assert!(!RunStatus::CycleLimit.is_clean_halt());
        assert!(!RunStatus::Trapped(Trap::SerialOverflow).is_clean_halt());
    }
}
