//! Memory-access observation hooks.
//!
//! The def/use pruning of §III-C needs the exact cycle of every RAM read and
//! write in the golden run. Rather than baking trace collection into the CPU
//! (and paying for it in the hot campaign loop), the machine's step function
//! is generic over a [`MemObserver`]; the default [`NullObserver`] compiles
//! to nothing.

use sofi_isa::{MemWidth, Reg};

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load ("use" in def/use terms).
    Read,
    /// A store ("def" in def/use terms).
    Write,
}

/// One RAM access in a program run. MMIO accesses are *not* reported: the
/// device page is outside the fault space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemAccess {
    /// Cycle of the access (1-based: the n-th executed instruction runs in
    /// cycle n).
    pub cycle: u64,
    /// Byte address of the access.
    pub addr: u32,
    /// Access width.
    pub width: MemWidth,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Iterates over the flat bit indices (`addr * 8 + bit`) this access
    /// touches, lowest first.
    pub fn bits(&self) -> impl Iterator<Item = u64> {
        let start = self.addr as u64 * 8;
        start..start + self.width.bits() as u64
    }
}

/// One register-file access in a program run. The zero register is never
/// reported (it is hard-wired and fault-immune).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegAccess {
    /// Cycle of the access (1-based).
    pub cycle: u64,
    /// The register (never `Reg::R0`).
    pub reg: Reg,
    /// Read or write. All register accesses are full-width (32 bit).
    pub kind: AccessKind,
}

impl RegAccess {
    /// Flat register-fault-space bit indices of this access:
    /// `(reg − 1) · 32 + bit` over `r1..r15` (480 bits total).
    pub fn bits(&self) -> impl Iterator<Item = u64> {
        let start = (self.reg.index() as u64 - 1) * 32;
        start..start + 32
    }
}

/// Total size in bits of the register fault-space axis (`r1..r15`).
pub const REG_FILE_BITS: u64 = 15 * 32;

/// Receives RAM access events during execution.
pub trait MemObserver {
    /// Whether this observer consumes register-access events. The block
    /// engine's µop loop uses this to *statically* skip its precomputed
    /// register-event bookkeeping: on the monomorphized
    /// [`NullObserver`] path (`OBSERVES == false`) the branch folds to
    /// nothing at compile time. Memory-access events are cheap enough to
    /// leave to ordinary inlining. Observers that override
    /// [`MemObserver::on_reg_access`] must leave this `true`.
    const OBSERVES: bool = true;

    /// Called for every RAM access, in execution order.
    fn on_access(&mut self, access: MemAccess);

    /// Called for every register-file access, in execution order (reads
    /// of an instruction before its write). Default: ignored, so
    /// memory-only observers pay nothing.
    #[inline(always)]
    fn on_reg_access(&mut self, _access: RegAccess) {}
}

/// Observer that discards everything (zero-cost in the campaign hot loop).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl MemObserver for NullObserver {
    const OBSERVES: bool = false;

    #[inline(always)]
    fn on_access(&mut self, _access: MemAccess) {}
}

/// Observer that records every access in order.
///
/// # Examples
///
/// ```
/// use sofi_machine::{Machine, RecordingObserver, AccessKind};
/// use sofi_isa::{Asm, Reg};
///
/// let mut a = Asm::new();
/// let x = a.data_word("x", 7);
/// a.lw(Reg::R1, Reg::R0, x.offset());
/// let p = a.build().unwrap();
///
/// let mut obs = RecordingObserver::default();
/// let mut m = Machine::new(&p);
/// m.run_observed(100, &mut obs);
/// assert_eq!(obs.accesses.len(), 1);
/// assert_eq!(obs.accesses[0].kind, AccessKind::Read);
/// assert_eq!(obs.accesses[0].cycle, 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    /// All RAM accesses in execution order.
    pub accesses: Vec<MemAccess>,
    /// All register-file accesses in execution order.
    pub reg_accesses: Vec<RegAccess>,
}

impl MemObserver for RecordingObserver {
    fn on_access(&mut self, access: MemAccess) {
        self.accesses.push(access);
    }

    fn on_reg_access(&mut self, access: RegAccess) {
        self.reg_accesses.push(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_enumeration() {
        let a = MemAccess {
            cycle: 1,
            addr: 2,
            width: MemWidth::Half,
            kind: AccessKind::Read,
        };
        assert_eq!(
            a.bits().collect::<Vec<_>>(),
            vec![16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31]
        );
    }

    #[test]
    fn byte_bits() {
        let a = MemAccess {
            cycle: 1,
            addr: 1,
            width: MemWidth::Byte,
            kind: AccessKind::Write,
        };
        let bits: Vec<_> = a.bits().collect();
        assert_eq!(bits, vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }
}
