//! Byte-addressable main memory with single-bit-flip injection.

use crate::trap::Trap;
use sofi_isa::MemWidth;

/// Main memory: the only fault-susceptible component in the paper's model.
///
/// Addresses run from `0` to `size() - 1`; the fault space's memory extent
/// is `size() * 8` bits. All multi-byte accesses are little-endian and must
/// be naturally aligned.
///
/// # Examples
///
/// ```
/// use sofi_machine::Ram;
/// use sofi_isa::MemWidth;
///
/// let mut ram = Ram::new(4);
/// ram.write(0, MemWidth::Word, 0xDEAD_BEEF).unwrap();
/// ram.flip_bit(0); // flip bit 0 of byte 0
/// assert_eq!(ram.read(0, MemWidth::Word).unwrap(), 0xDEAD_BEEE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ram {
    bytes: Vec<u8>,
}

impl Ram {
    /// Creates zero-filled RAM of `size` bytes.
    pub fn new(size: u32) -> Self {
        Ram {
            bytes: vec![0; size as usize],
        }
    }

    /// Creates RAM initialized with `image` (zero-padded to `size`).
    ///
    /// # Panics
    ///
    /// Panics if `image` is longer than `size`.
    pub fn with_image(size: u32, image: &[u8]) -> Self {
        assert!(
            image.len() <= size as usize,
            "image ({}) larger than RAM ({size})",
            image.len()
        );
        let mut bytes = vec![0; size as usize];
        bytes[..image.len()].copy_from_slice(image);
        Ram { bytes }
    }

    /// RAM size in bytes.
    #[inline]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// RAM size in bits (the fault-space memory extent `Δm`).
    #[inline]
    pub fn size_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Raw view of memory contents.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn check(&self, addr: u32, width: MemWidth) -> Result<usize, Trap> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(Trap::Misaligned { addr, width });
        }
        let end = addr as u64 + bytes as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::OutOfRange { addr });
        }
        Ok(addr as usize)
    }

    /// Reads `width` bytes at `addr` (little-endian, zero-extended to u32).
    ///
    /// # Errors
    ///
    /// [`Trap::Misaligned`] if `addr` is not naturally aligned,
    /// [`Trap::OutOfRange`] if the access crosses the end of RAM.
    pub fn read(&self, addr: u32, width: MemWidth) -> Result<u32, Trap> {
        let i = self.check(addr, width)?;
        Ok(match width {
            MemWidth::Byte => self.bytes[i] as u32,
            MemWidth::Half => u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]) as u32,
            MemWidth::Word => u32::from_le_bytes([
                self.bytes[i],
                self.bytes[i + 1],
                self.bytes[i + 2],
                self.bytes[i + 3],
            ]),
        })
    }

    /// Writes the low `width` bytes of `value` at `addr` (little-endian).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ram::read`].
    pub fn write(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), Trap> {
        let i = self.check(addr, width)?;
        match width {
            MemWidth::Byte => self.bytes[i] = value as u8,
            MemWidth::Half => self.bytes[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Flips one bit. `bit` is a flat index: `addr * 8 + bit_in_byte`,
    /// exactly the memory axis of the fault space.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= size_bits()`.
    #[inline]
    pub fn flip_bit(&mut self, bit: u64) {
        assert!(bit < self.size_bits(), "bit {bit} outside RAM");
        self.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    /// Reads a single bit (for diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= size_bits()`.
    #[inline]
    pub fn bit(&self, bit: u64) -> bool {
        assert!(bit < self.size_bits(), "bit {bit} outside RAM");
        self.bytes[(bit / 8) as usize] & (1 << (bit % 8)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut ram = Ram::new(8);
        ram.write(4, MemWidth::Word, 0x0102_0304).unwrap();
        assert_eq!(ram.as_bytes()[4..8], [0x04, 0x03, 0x02, 0x01]);
        assert_eq!(ram.read(4, MemWidth::Half).unwrap(), 0x0304);
        assert_eq!(ram.read(6, MemWidth::Half).unwrap(), 0x0102);
        assert_eq!(ram.read(7, MemWidth::Byte).unwrap(), 0x01);
    }

    #[test]
    fn misaligned_rejected() {
        let mut ram = Ram::new(8);
        assert_eq!(
            ram.read(1, MemWidth::Half),
            Err(Trap::Misaligned {
                addr: 1,
                width: MemWidth::Half
            })
        );
        assert_eq!(
            ram.write(2, MemWidth::Word, 0),
            Err(Trap::Misaligned {
                addr: 2,
                width: MemWidth::Word
            })
        );
        assert!(ram.read(1, MemWidth::Byte).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let ram = Ram::new(4);
        assert_eq!(
            ram.read(4, MemWidth::Byte),
            Err(Trap::OutOfRange { addr: 4 })
        );
        assert_eq!(
            ram.read(2, MemWidth::Word),
            Err(Trap::Misaligned {
                addr: 2,
                width: MemWidth::Word
            })
        );
        // Aligned but crossing the end.
        let ram = Ram::new(2);
        assert_eq!(
            ram.read(0, MemWidth::Word),
            Err(Trap::OutOfRange { addr: 0 })
        );
    }

    #[test]
    fn flip_is_involution() {
        let mut ram = Ram::with_image(2, &[0xFF, 0x00]);
        for bit in 0..16 {
            let before = ram.as_bytes().to_vec();
            ram.flip_bit(bit);
            assert_ne!(ram.as_bytes(), &before[..]);
            ram.flip_bit(bit);
            assert_eq!(ram.as_bytes(), &before[..]);
        }
    }

    #[test]
    fn bit_indexing_matches_flip() {
        let mut ram = Ram::new(2);
        assert!(!ram.bit(9));
        ram.flip_bit(9); // byte 1, bit 1
        assert!(ram.bit(9));
        assert_eq!(ram.as_bytes(), &[0x00, 0x02]);
    }

    #[test]
    #[should_panic(expected = "outside RAM")]
    fn flip_out_of_range_panics() {
        Ram::new(1).flip_bit(8);
    }

    #[test]
    fn image_padding() {
        let ram = Ram::with_image(4, &[1, 2]);
        assert_eq!(ram.as_bytes(), &[1, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "larger than RAM")]
    fn oversized_image_panics() {
        Ram::with_image(1, &[1, 2]);
    }
}
