//! Byte-addressable main memory with single-bit-flip injection.
//!
//! Storage is paged and copy-on-write: pages are [`Arc`]-shared between
//! clones, and a clone only materializes its own copy of a page on the
//! first write to it. Forking a machine for an injection experiment
//! therefore costs `O(pages)` pointer bumps instead of a full RAM
//! memcpy, and the campaign executor's convergence check can compare two
//! related RAM images mostly by pointer equality.

use crate::trap::Trap;
use sofi_isa::MemWidth;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Bytes per copy-on-write page. A power of two no smaller than the
/// widest access (4 bytes), so a naturally aligned access never crosses
/// a page boundary.
pub const PAGE_BYTES: usize = 256;

type Page = [u8; PAGE_BYTES];

/// The all-zero page, shared by every freshly created RAM (and by every
/// zero-initialized tail page), so `Ram::new` allocates nothing per page.
fn zero_page() -> Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0; PAGE_BYTES])).clone()
}

/// The splitmix64 output permutation: a cheap, statistically strong
/// bijection on `u64`. Used as the mixing step of the content hashes
/// backing the campaign executor's fault-equivalence memoization, where
/// an (astronomically unlikely) collision would silently misclassify an
/// experiment — hence 128 hash bits built from two independent lanes.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one word into a two-lane 128-bit accumulator. Both lanes are
/// position-dependent chains of [`mix64`] (a bijection, so unequal lane
/// states stay unequal); the lanes differ by seed and by how the word
/// enters the chain.
#[inline]
pub(crate) fn fold128(acc: (u64, u64), x: u64) -> (u64, u64) {
    (
        mix64(acc.0 ^ x).wrapping_add(0x9E37_79B9_7F4A_7C15),
        mix64(acc.1.wrapping_add(x ^ 0xD1B5_4A32_D192_ED03)),
    )
}

/// Content hash of one page (both lanes packed into a `u128`).
fn hash_page(page: &Page) -> u128 {
    let mut acc = (0x243F_6A88_85A3_08D3, 0x1319_8A2E_0370_7344);
    for chunk in page.chunks_exact(8) {
        acc = fold128(acc, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    (acc.0 as u128) << 64 | acc.1 as u128
}

/// A page's position-mixed contribution to the rolling whole-RAM hash.
///
/// The whole-RAM hash combines pages by per-lane wrapping *sums* of
/// these contributions, so a single page's contribution can be
/// subtracted back out when the page is dirtied — that is what makes
/// [`Ram::content_hash`] incremental. Each contribution mixes the page
/// *index* into both lanes through [`mix64`] before and after the page
/// hash enters, so permuted or duplicated page contents never produce
/// colliding sums the way a plain XOR/sum of raw page hashes would.
#[inline]
fn page_contrib(ph: u128, p: usize) -> (u64, u64) {
    let pos = p as u64;
    (
        mix64((ph >> 64) as u64 ^ mix64(pos ^ 0x8509_4E22_45C4_BC83)),
        mix64((ph as u64).wrapping_add(mix64(pos ^ 0x6A09_E667_F3BC_C909))),
    )
}

/// Folds the accumulated page-contribution sums (and the RAM size) into
/// the final 128-bit content hash.
#[inline]
fn finish_content_hash(size: u32, acc: (u64, u64)) -> u128 {
    let mut h = fold128((0x4528_21E6_38D0_1377, 0xBE54_66CF_34E9_0C6C), size as u64);
    h = fold128(h, acc.0);
    h = fold128(h, acc.1);
    (h.0 as u128) << 64 | h.1 as u128
}

/// Main memory: the only fault-susceptible component in the paper's model.
///
/// Addresses run from `0` to `size() - 1`; the fault space's memory extent
/// is `size() * 8` bits. All multi-byte accesses are little-endian and must
/// be naturally aligned.
///
/// # Examples
///
/// ```
/// use sofi_machine::Ram;
/// use sofi_isa::MemWidth;
///
/// let mut ram = Ram::new(4);
/// ram.write(0, MemWidth::Word, 0xDEAD_BEEF).unwrap();
/// ram.flip_bit(0); // flip bit 0 of byte 0
/// assert_eq!(ram.read(0, MemWidth::Word).unwrap(), 0xDEAD_BEEE);
/// ```
#[derive(Clone)]
pub struct Ram {
    size: u32,
    /// COW pages; the last page is zero-padded past `size` and the
    /// padding is unreachable through the bounds-checked API.
    pages: Vec<Arc<Page>>,
    /// Cached per-page content hashes, invalidated on write. A clone
    /// inherits the cache (its content is identical at clone time), so a
    /// fork only re-hashes the pages it subsequently dirties — this is
    /// what makes whole-RAM hashing O(dirty pages) for the campaign
    /// executor's fault-equivalence memoization.
    ///
    /// Keyed by page *index*, never by page *pointer*: `Arc::make_mut`
    /// mutates a page in place when the refcount is 1, so a
    /// pointer-keyed cache would silently go stale.
    page_hashes: Vec<Option<u128>>,
    /// Rolling per-lane wrapping sums of [`page_contrib`] over exactly
    /// the pages whose `page_hashes` entry is populated. Dirtying a page
    /// subtracts its old contribution (ℤ/2⁶⁴ group arithmetic, exact);
    /// re-hashing adds the new one back.
    hash_acc: (u64, u64),
    /// Page indices missing from `hash_acc` — exactly the `None` entries
    /// of `page_hashes`, maintained duplicate-free so a probe pays
    /// `O(pages dirtied since the last probe)`, never `O(pages)`.
    stale_pages: Vec<u32>,
}

impl Ram {
    /// Creates zero-filled RAM of `size` bytes.
    pub fn new(size: u32) -> Self {
        let count = (size as usize).div_ceil(PAGE_BYTES);
        Ram {
            size,
            pages: vec![zero_page(); count],
            page_hashes: vec![None; count],
            hash_acc: (0, 0),
            stale_pages: (0..count as u32).collect(),
        }
    }

    /// Creates RAM initialized with `image` (zero-padded to `size`).
    ///
    /// # Panics
    ///
    /// Panics if `image` is longer than `size`.
    pub fn with_image(size: u32, image: &[u8]) -> Self {
        assert!(
            image.len() <= size as usize,
            "image ({}) larger than RAM ({size})",
            image.len()
        );
        let mut ram = Ram::new(size);
        for (p, chunk) in image.chunks(PAGE_BYTES).enumerate() {
            if chunk.iter().any(|&b| b != 0) {
                let mut page = [0u8; PAGE_BYTES];
                page[..chunk.len()].copy_from_slice(chunk);
                ram.pages[p] = Arc::new(page);
            }
        }
        ram
    }

    /// RAM size in bytes.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// RAM size in bits (the fault-space memory extent `Δm`).
    #[inline]
    pub fn size_bits(&self) -> u64 {
        self.size as u64 * 8
    }

    /// Contiguous copy of the memory contents (diagnostics and tests;
    /// the storage itself is paged, so this materializes a fresh `Vec`).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size as usize);
        for page in &self.pages {
            let take = (self.size as usize - out.len()).min(PAGE_BYTES);
            out.extend_from_slice(&page[..take]);
        }
        out
    }

    /// Reads one byte without width/alignment ceremony (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `addr >= size()`.
    #[inline]
    pub fn byte(&self, addr: u32) -> u8 {
        assert!(addr < self.size, "address {addr} outside RAM");
        self.pages[addr as usize / PAGE_BYTES][addr as usize % PAGE_BYTES]
    }

    /// `true` if `self` and `other` share every page allocation (clone
    /// that nobody has written through yet). Used by tests to verify the
    /// copy-on-write behaviour; content equality is `==`.
    pub fn shares_all_pages_with(&self, other: &Ram) -> bool {
        self.size == other.size
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Content equality restricted to *live* bytes: byte `i` is compared
    /// only when bit `i` of `live` is set (flat bitmask, one bit per RAM
    /// byte). Pages still `Arc`-shared between the two RAMs are skipped
    /// by pointer equality.
    ///
    /// The campaign executor uses this to detect convergence of faulted
    /// runs: a byte whose next access in the reference run is a write —
    /// or that is never accessed again — is *dead*, and a lingering
    /// difference there can never influence execution or output.
    ///
    /// # Panics
    ///
    /// Panics if the RAM sizes differ or `live` is shorter than
    /// `size().div_ceil(8)`.
    pub fn eq_masked(&self, other: &Ram, live: &[u8]) -> bool {
        assert_eq!(self.size, other.size, "masked compare of unequal RAMs");
        assert!(
            live.len() >= (self.size as usize).div_ceil(8),
            "live mask shorter than RAM"
        );
        for (p, (a, b)) in self.pages.iter().zip(&other.pages).enumerate() {
            if Arc::ptr_eq(a, b) {
                continue;
            }
            let base = p * PAGE_BYTES;
            let len = (self.size as usize - base).min(PAGE_BYTES);
            for i in 0..len {
                if a[i] != b[i] && live[(base + i) / 8] & (1 << ((base + i) % 8)) != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// 128-bit content hash of the full memory image, position-sensitive
    /// over pages. Equal contents always hash equal (the hash never sees
    /// the COW sharing structure — or the incremental bookkeeping);
    /// unequal contents collide with probability ~2⁻¹²⁸ per pair.
    ///
    /// The hash is *incremental*: a rolling per-lane sum of
    /// position-mixed page contributions is maintained across writes —
    /// dirtying a page subtracts its old contribution, and a probe
    /// re-hashes and re-adds only the pages dirtied since the previous
    /// probe. Clones inherit the accumulator and per-page cache, so
    /// digesting a fork of an already-hashed RAM costs `O(pages dirtied
    /// since the fork)` and a clean re-probe costs `O(1)` — not
    /// `O(pages)` as in the pre-incremental sequential fold. This is the
    /// property the campaign executor's fault-equivalence memoization
    /// relies on to digest machine state at every injection and
    /// checkpoint crossing without making RAM-heavy plans lose.
    ///
    /// [`Ram::content_hash_from_scratch`] recomputes the same value with
    /// no cached state; the fuzz battery in `tests/memoization_fuzz.rs`
    /// holds the two equal across random write/flip/fork interleavings.
    pub fn content_hash(&mut self) -> u128 {
        while let Some(p) = self.stale_pages.pop() {
            let p = p as usize;
            let ph = hash_page(&self.pages[p]);
            self.page_hashes[p] = Some(ph);
            let (c0, c1) = page_contrib(ph, p);
            self.hash_acc.0 = self.hash_acc.0.wrapping_add(c0);
            self.hash_acc.1 = self.hash_acc.1.wrapping_add(c1);
        }
        finish_content_hash(self.size, self.hash_acc)
    }

    /// [`Ram::content_hash`] recomputed from the raw page contents alone,
    /// ignoring (and not touching) the incremental accumulator and
    /// per-page cache. The oracle the digest-equality fuzz battery
    /// compares the rolling hash against.
    pub fn content_hash_from_scratch(&self) -> u128 {
        let mut acc = (0u64, 0u64);
        for (p, page) in self.pages.iter().enumerate() {
            let (c0, c1) = page_contrib(hash_page(page), p);
            acc.0 = acc.0.wrapping_add(c0);
            acc.1 = acc.1.wrapping_add(c1);
        }
        finish_content_hash(self.size, acc)
    }

    /// Records that page `p` is about to change: subtracts its
    /// contribution from the rolling hash and queues it for re-hashing
    /// at the next probe. A page already dirty is already queued.
    #[inline]
    fn touch_page(&mut self, p: usize) {
        if let Some(ph) = self.page_hashes[p].take() {
            let (c0, c1) = page_contrib(ph, p);
            self.hash_acc.0 = self.hash_acc.0.wrapping_sub(c0);
            self.hash_acc.1 = self.hash_acc.1.wrapping_sub(c1);
            self.stale_pages.push(p as u32);
        }
    }

    fn check(&self, addr: u32, width: MemWidth) -> Result<usize, Trap> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(Trap::Misaligned { addr, width });
        }
        let end = addr as u64 + bytes as u64;
        if end > self.size as u64 {
            return Err(Trap::OutOfRange { addr });
        }
        Ok(addr as usize)
    }

    /// Reads `width` bytes at `addr` (little-endian, zero-extended to u32).
    ///
    /// # Errors
    ///
    /// [`Trap::Misaligned`] if `addr` is not naturally aligned,
    /// [`Trap::OutOfRange`] if the access crosses the end of RAM.
    pub fn read(&self, addr: u32, width: MemWidth) -> Result<u32, Trap> {
        let i = self.check(addr, width)?;
        // Natural alignment keeps the access inside one page.
        let page = &self.pages[i / PAGE_BYTES];
        let o = i % PAGE_BYTES;
        Ok(match width {
            MemWidth::Byte => page[o] as u32,
            MemWidth::Half => u16::from_le_bytes([page[o], page[o + 1]]) as u32,
            MemWidth::Word => u32::from_le_bytes([page[o], page[o + 1], page[o + 2], page[o + 3]]),
        })
    }

    /// Writes the low `width` bytes of `value` at `addr` (little-endian).
    ///
    /// The first write to an `Arc`-shared page copies it (copy-on-write);
    /// subsequent writes to the same page are in-place.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ram::read`].
    pub fn write(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), Trap> {
        let i = self.check(addr, width)?;
        self.touch_page(i / PAGE_BYTES);
        let page = Arc::make_mut(&mut self.pages[i / PAGE_BYTES]);
        let o = i % PAGE_BYTES;
        match width {
            MemWidth::Byte => page[o] = value as u8,
            MemWidth::Half => page[o..o + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => page[o..o + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Flips one bit. `bit` is a flat index: `addr * 8 + bit_in_byte`,
    /// exactly the memory axis of the fault space.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= size_bits()`.
    #[inline]
    pub fn flip_bit(&mut self, bit: u64) {
        assert!(bit < self.size_bits(), "bit {bit} outside RAM");
        let i = (bit / 8) as usize;
        self.touch_page(i / PAGE_BYTES);
        let page = Arc::make_mut(&mut self.pages[i / PAGE_BYTES]);
        page[i % PAGE_BYTES] ^= 1 << (bit % 8);
    }

    /// Reads a single bit (for diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= size_bits()`.
    #[inline]
    pub fn bit(&self, bit: u64) -> bool {
        assert!(bit < self.size_bits(), "bit {bit} outside RAM");
        let i = (bit / 8) as usize;
        self.pages[i / PAGE_BYTES][i % PAGE_BYTES] & (1 << (bit % 8)) != 0
    }
}

impl PartialEq for Ram {
    /// Content equality with an `Arc::ptr_eq` fast path per page — two
    /// RAMs forked from a common ancestor compare in O(pages) pointer
    /// checks plus a memcmp per diverged page.
    fn eq(&self, other: &Ram) -> bool {
        self.size == other.size
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a[..] == b[..])
    }
}

impl Eq for Ram {}

impl fmt::Debug for Ram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Dumping whole pages would swamp Machine's derived Debug.
        let owned = self.pages.iter().filter(|p| Arc::strong_count(p) == 1);
        f.debug_struct("Ram")
            .field("size", &self.size)
            .field("pages", &self.pages.len())
            .field("owned_pages", &owned.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut ram = Ram::new(8);
        ram.write(4, MemWidth::Word, 0x0102_0304).unwrap();
        assert_eq!(ram.to_vec()[4..8], [0x04, 0x03, 0x02, 0x01]);
        assert_eq!(ram.read(4, MemWidth::Half).unwrap(), 0x0304);
        assert_eq!(ram.read(6, MemWidth::Half).unwrap(), 0x0102);
        assert_eq!(ram.read(7, MemWidth::Byte).unwrap(), 0x01);
    }

    #[test]
    fn misaligned_rejected() {
        let mut ram = Ram::new(8);
        assert_eq!(
            ram.read(1, MemWidth::Half),
            Err(Trap::Misaligned {
                addr: 1,
                width: MemWidth::Half
            })
        );
        assert_eq!(
            ram.write(2, MemWidth::Word, 0),
            Err(Trap::Misaligned {
                addr: 2,
                width: MemWidth::Word
            })
        );
        assert!(ram.read(1, MemWidth::Byte).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let ram = Ram::new(4);
        assert_eq!(
            ram.read(4, MemWidth::Byte),
            Err(Trap::OutOfRange { addr: 4 })
        );
        assert_eq!(
            ram.read(2, MemWidth::Word),
            Err(Trap::Misaligned {
                addr: 2,
                width: MemWidth::Word
            })
        );
        // Aligned but crossing the end.
        let ram = Ram::new(2);
        assert_eq!(
            ram.read(0, MemWidth::Word),
            Err(Trap::OutOfRange { addr: 0 })
        );
    }

    #[test]
    fn flip_is_involution() {
        let mut ram = Ram::with_image(2, &[0xFF, 0x00]);
        for bit in 0..16 {
            let before = ram.to_vec();
            ram.flip_bit(bit);
            assert_ne!(ram.to_vec(), before);
            ram.flip_bit(bit);
            assert_eq!(ram.to_vec(), before);
        }
    }

    #[test]
    fn bit_indexing_matches_flip() {
        let mut ram = Ram::new(2);
        assert!(!ram.bit(9));
        ram.flip_bit(9); // byte 1, bit 1
        assert!(ram.bit(9));
        assert_eq!(ram.to_vec(), vec![0x00, 0x02]);
    }

    #[test]
    #[should_panic(expected = "outside RAM")]
    fn flip_out_of_range_panics() {
        Ram::new(1).flip_bit(8);
    }

    #[test]
    fn image_padding() {
        let ram = Ram::with_image(4, &[1, 2]);
        assert_eq!(ram.to_vec(), vec![1, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "larger than RAM")]
    fn oversized_image_panics() {
        Ram::with_image(1, &[1, 2]);
    }

    #[test]
    fn crosses_page_boundaries() {
        // Accesses and flips on both sides of the first page boundary.
        let size = (PAGE_BYTES as u32) * 2 + 8;
        let mut ram = Ram::new(size);
        let edge = PAGE_BYTES as u32;
        ram.write(edge - 4, MemWidth::Word, 0xAABB_CCDD).unwrap();
        ram.write(edge, MemWidth::Word, 0x1122_3344).unwrap();
        assert_eq!(ram.read(edge - 4, MemWidth::Word).unwrap(), 0xAABB_CCDD);
        assert_eq!(ram.read(edge, MemWidth::Word).unwrap(), 0x1122_3344);
        ram.flip_bit((edge as u64) * 8); // first bit of page 1
        assert_eq!(ram.read(edge, MemWidth::Word).unwrap(), 0x1122_3345);
        // Last byte of the partial tail page.
        ram.write(size - 1, MemWidth::Byte, 0x7F).unwrap();
        assert_eq!(ram.byte(size - 1), 0x7F);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut a = Ram::with_image(1024, &[9; 700]);
        let b = a.clone();
        assert!(a.shares_all_pages_with(&b));
        assert_eq!(a, b);
        // Writing through one side copies exactly that page.
        a.write(0, MemWidth::Byte, 1).unwrap();
        assert!(!a.shares_all_pages_with(&b));
        assert_ne!(a, b);
        assert_eq!(b.byte(0), 9, "clone must not observe the write");
        // Pages past the written one are still shared.
        assert!(Arc::ptr_eq(&a.pages[1], &b.pages[1]));
    }

    #[test]
    fn fresh_ram_shares_the_zero_page() {
        let a = Ram::new(4 * PAGE_BYTES as u32);
        let b = Ram::new(2 * PAGE_BYTES as u32);
        assert!(Arc::ptr_eq(&a.pages[3], &b.pages[0]));
    }

    #[test]
    fn equality_is_content_based_after_divergence() {
        // Write the same value through two independent clones: the pages
        // are no longer shared, but the RAMs still compare equal.
        let base = Ram::new(512);
        let mut a = base.clone();
        let mut b = base.clone();
        a.write(300, MemWidth::Word, 77).unwrap();
        b.write(300, MemWidth::Word, 77).unwrap();
        assert!(!a.shares_all_pages_with(&b));
        assert_eq!(a, b);
        b.flip_bit(300 * 8);
        assert_ne!(a, b);
    }

    #[test]
    fn masked_equality_ignores_dead_bytes() {
        let base = Ram::new(512);
        let mut a = base.clone();
        let mut b = base.clone();
        a.write(3, MemWidth::Byte, 0xAA).unwrap();
        a.write(300, MemWidth::Byte, 0x55).unwrap();
        b.write(300, MemWidth::Byte, 0x55).unwrap();
        assert_ne!(a, b);

        let mut all_live = vec![0xFFu8; 64];
        assert!(!a.eq_masked(&b, &all_live));
        // Mark byte 3 dead: the remaining difference is invisible.
        all_live[0] &= !(1 << 3);
        assert!(a.eq_masked(&b, &all_live));
        // Shared pages are skipped even with an all-live mask.
        assert!(base.eq_masked(&base.clone(), &[0xFFu8; 64]));
        // A live difference in the diverged page is still caught.
        b.flip_bit(301 * 8);
        assert!(!a.eq_masked(&b, &all_live));
    }

    #[test]
    fn content_hash_is_content_determined() {
        // Equal content ⇒ equal hash, regardless of COW structure or
        // cache population order.
        let base = Ram::with_image(1024, &[7; 700]);
        let mut a = base.clone();
        let mut b = Ram::with_image(1024, &[7; 700]); // no shared pages
        assert_eq!(a.content_hash(), b.content_hash());
        a.write(300, MemWidth::Word, 0xAB).unwrap();
        b.write(300, MemWidth::Word, 0xAB).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        // Different size, same (empty) content prefix ⇒ different hash.
        assert_ne!(Ram::new(256).content_hash(), Ram::new(512).content_hash());
    }

    #[test]
    fn content_hash_tracks_every_write_and_flip() {
        let mut ram = Ram::with_image(512, &[3; 300]);
        let h0 = ram.content_hash();
        ram.write(100, MemWidth::Byte, 99).unwrap();
        let h1 = ram.content_hash();
        assert_ne!(h0, h1, "write after hashing must change the hash");
        ram.write(100, MemWidth::Byte, 3).unwrap();
        assert_eq!(
            ram.content_hash(),
            h0,
            "restoring content restores the hash"
        );
        ram.flip_bit(400 * 8 + 5);
        assert_ne!(ram.content_hash(), h0);
        ram.flip_bit(400 * 8 + 5);
        assert_eq!(ram.content_hash(), h0, "flip is an involution on the hash");
    }

    #[test]
    fn clone_inherits_hash_cache_and_stays_correct() {
        // The stale-cache hazard this design must avoid: `Arc::make_mut`
        // mutates a uniquely-owned page *in place*, so a fork writing to
        // a page the parent already hashed must not reuse the parent's
        // entry for its own changed content — and vice versa.
        let mut parent = Ram::with_image(1024, &[5; 1000]);
        let h_parent = parent.content_hash(); // warm every page
        let mut fork = parent.clone();
        assert!(
            fork.page_hashes.iter().all(Option::is_some),
            "fork must inherit the parent's warm cache"
        );
        assert_eq!(fork.content_hash(), h_parent);
        fork.write(0, MemWidth::Byte, 6).unwrap();
        assert_ne!(fork.content_hash(), h_parent);
        assert_eq!(parent.content_hash(), h_parent, "parent unaffected by fork");
        // In-place mutation of a uniquely-owned page (refcount 1).
        let mut solo = Ram::with_image(256, &[1; 100]);
        let h = solo.content_hash();
        solo.write(0, MemWidth::Byte, 2).unwrap(); // make_mut in place
        assert_ne!(solo.content_hash(), h);
    }

    #[test]
    fn incremental_hash_matches_from_scratch() {
        // The rolling accumulator must agree with a cache-free rehash at
        // every probe point, through writes, flips, forks, and in-place
        // mutation of uniquely-owned pages.
        let mut s = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let size = 4 * PAGE_BYTES as u32 + 32;
        let mut ram = Ram::with_image(size, &[0xA5; 600]);
        let mut fork = ram.clone(); // cold-cache fork
        for step in 0..500u32 {
            match next() % 3 {
                0 => {
                    let addr = (next() % size as u64) as u32;
                    let _ = ram.write(addr, MemWidth::Byte, next() as u32);
                }
                1 => ram.flip_bit(next() % ram.size_bits()),
                _ => {
                    assert_eq!(ram.content_hash(), ram.content_hash_from_scratch());
                    if step % 7 == 0 {
                        fork = ram.clone(); // warm-cache fork
                    }
                    fork.flip_bit(next() % fork.size_bits());
                    assert_eq!(fork.content_hash(), fork.content_hash_from_scratch());
                }
            }
        }
        assert_eq!(ram.content_hash(), ram.content_hash_from_scratch());
        // A second probe with nothing dirtied takes the O(1) path and
        // must return the same value.
        assert_eq!(ram.content_hash(), ram.content_hash_from_scratch());
        assert!(ram.stale_pages.is_empty());
    }

    /// Equivalence sweep against the previous `Vec<u8>`-backed semantics:
    /// a flat byte vector modeling what the old implementation stored.
    #[test]
    fn cow_matches_flat_vec_model() {
        // Deterministic xorshift — the machine crate has no RNG dep.
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &size in &[1u32, 7, 255, 256, 257, 1000, 4096] {
            let image: Vec<u8> = (0..size.min(300)).map(|_| next() as u8).collect();
            let mut ram = Ram::with_image(size, &image);
            let mut model = vec![0u8; size as usize];
            model[..image.len()].copy_from_slice(&image);
            let mut fork: Option<(Ram, Vec<u8>)> = None;
            for step in 0..2_000u32 {
                let op = next() % 4;
                let addr = (next() % size as u64) as u32;
                match op {
                    0 => {
                        let width = match next() % 3 {
                            0 => MemWidth::Byte,
                            1 => MemWidth::Half,
                            _ => MemWidth::Word,
                        };
                        let value = next() as u32;
                        let got = ram.write(addr, width, value);
                        // Mirror into the model only on success.
                        if got.is_ok() {
                            let n = width.bytes() as usize;
                            model[addr as usize..addr as usize + n]
                                .copy_from_slice(&value.to_le_bytes()[..n]);
                        } else {
                            assert!(
                                !addr.is_multiple_of(width.bytes())
                                    || addr as u64 + width.bytes() as u64 > size as u64,
                                "write rejected in-bounds aligned access"
                            );
                        }
                    }
                    1 => {
                        let width = match next() % 3 {
                            0 => MemWidth::Byte,
                            1 => MemWidth::Half,
                            _ => MemWidth::Word,
                        };
                        if let Ok(v) = ram.read(addr, width) {
                            let n = width.bytes() as usize;
                            let mut bytes = [0u8; 4];
                            bytes[..n].copy_from_slice(&model[addr as usize..addr as usize + n]);
                            assert_eq!(v, u32::from_le_bytes(bytes));
                        }
                    }
                    2 => {
                        let bit = next() % (size as u64 * 8);
                        ram.flip_bit(bit);
                        model[(bit / 8) as usize] ^= 1 << (bit % 8);
                        assert_eq!(
                            ram.bit(bit),
                            model[(bit / 8) as usize] & (1 << (bit % 8)) != 0
                        );
                    }
                    _ => {
                        if step == 500 {
                            // Fork mid-sweep; the fork must stay frozen.
                            fork = Some((ram.clone(), model.clone()));
                        }
                    }
                }
            }
            assert_eq!(ram.to_vec(), model, "size {size} diverged");
            if let Some((fram, fmodel)) = fork {
                assert_eq!(fram.to_vec(), fmodel, "size {size} fork was disturbed");
            }
        }
    }
}
