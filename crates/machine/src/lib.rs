#![warn(missing_docs)]

//! Deterministic machine simulator implementing the paper's machine model.
//!
//! §II-C of the DSN'15 pitfalls paper defines the machine under test:
//!
//! > "We assume a simple RISC CPU with classic in-order execution, without
//! > any cache levels on the way to a wait-free main memory, and with a
//! > timing of one cycle per CPU instruction. The CPU executes programs from
//! > read-only memory. [...] benchmark runs can be carried out
//! > deterministically [...] Additionally, the machine can be paused at an
//! > arbitrary cycle during the run (e.g., to inject a fault by changing the
//! > machine state) and resumed afterwards."
//!
//! [`Machine`] implements exactly this: one instruction per cycle, a
//! fault-immune instruction ROM, byte-addressable RAM that supports
//! [`Machine::flip_bit`] injection, and a small MMIO page (serial output,
//! detection signal, cycle counter). Runs are bit-for-bit deterministic and
//! machines are cheaply cloneable, which the campaign engine exploits to
//! fork a pristine machine at each injection cycle.
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//! use sofi_machine::{Machine, RunStatus};
//!
//! let mut a = Asm::new();
//! let msg = a.data_bytes("msg", b"ok");
//! a.lb(Reg::R1, Reg::R0, msg.offset());
//! a.serial_out(Reg::R1);
//! a.lb(Reg::R1, Reg::R0, msg.at(1).offset());
//! a.serial_out(Reg::R1);
//! let program = a.build()?;
//!
//! let mut m = Machine::new(&program);
//! assert_eq!(m.run(1_000), RunStatus::Halted { code: 0 });
//! assert_eq!(m.serial(), b"ok");
//! assert_eq!(m.cycle(), 4); // four instructions, one cycle each
//! # Ok::<(), sofi_isa::AsmError>(())
//! ```

mod block;
mod cpu;
mod observer;
mod ram;
mod status;
mod trap;

pub use block::BlockStats;
pub use cpu::{ConvergenceMask, ExternalEvent, Machine, MachineConfig, StateDigest};
pub use observer::{
    AccessKind, MemAccess, MemObserver, NullObserver, RecordingObserver, RegAccess, REG_FILE_BITS,
};
pub use ram::Ram;
pub use status::{RunStatus, StepResult};
pub use trap::Trap;
