//! Decode-once basic-block execution engine: the pre-decoded µop IR.
//!
//! The campaign executor spends almost all of its time re-simulating the
//! same small ROM, so the per-instruction costs of the general
//! interpreter — the run-state match, the external-event scan, operand
//! extraction from the [`sofi_isa::Inst`] enum (with its `Reg`-typed
//! operands and unextended immediates), and observer bookkeeping — are
//! pure dispatch overhead. This module removes them by *decoding once*:
//!
//! * every ROM slot is lowered to one [`Uop`] with `u8` register indices,
//!   immediates already sign-/zero-extended to `u32`, shift amounts
//!   pre-masked, and branch/jump targets resolved to absolute
//!   instruction indices (statically out-of-range targets are lowered to
//!   dedicated trap µops, so the hot loop never re-validates);
//! * ALU results destined for the hard-wired `r0` are lowered to
//!   [`Uop::Nop`], eliminating the write-guard from every other write;
//! * the register-access events an instruction must report to a
//!   [`crate::MemObserver`] are precomputed per slot ([`RegEvents`]),
//!   and skipped entirely — statically, via
//!   [`crate::MemObserver::OBSERVES`] — for the `NullObserver` path;
//! * straight-line run lengths ([`BlockTable::straight`]) record the
//!   basic-block structure: the distance from each slot to (and
//!   including) its next control-flow instruction.
//!
//! The table is built at machine construction and shared by `Arc`: the
//! ROM is immutable (`Machine` executes from read-only memory and the
//! fault models never touch it), so the table needs **no invalidation**
//! and campaign forks inherit it for free. The tight execution loop over
//! this IR lives in `cpu.rs` (`Machine::exec_uops`), where the machine's
//! private state is in scope; cycle-exact boundaries — the injection
//! cycle, checkpoint probes, `cycle_limit`, and external-event latch
//! cycles — are enforced by the dispatcher (`Machine::run_blocks_to`),
//! which caps each µop burst so it can never cross one.

use sofi_isa::{BranchKind, Inst, MemWidth, Reg};

/// One pre-decoded micro-operation. Register operands are plain file
/// indices (always `< 16`; the executor masks with `& 15` to make the
/// bound visible to the compiler), immediates are pre-extended, and
/// control-flow targets are absolute and pre-validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Uop {
    /// No architectural effect (also the lowering of any ALU op whose
    /// destination is `r0`).
    Nop,
    /// `rd ← rs1 + rs2` (wrapping).
    Add { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 − rs2` (wrapping).
    Sub { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 & rs2`.
    And { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 | rs2`.
    Or { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 ^ rs2`.
    Xor { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 << (rs2 & 31)`.
    Sll { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 >> (rs2 & 31)` (logical).
    Srl { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 >> (rs2 & 31)` (arithmetic).
    Sra { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← (rs1 <ₛ rs2)`.
    Slt { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← (rs1 <ᵤ rs2)`.
    Sltu { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 × rs2` (wrapping, low 32 bits).
    Mul { rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 + imm` (imm pre-sign-extended).
    Addi { rd: u8, rs1: u8, imm: u32 },
    /// `rd ← rs1 & imm` (imm pre-zero-extended).
    Andi { rd: u8, rs1: u8, imm: u32 },
    /// `rd ← rs1 | imm` (imm pre-zero-extended).
    Ori { rd: u8, rs1: u8, imm: u32 },
    /// `rd ← rs1 ^ imm` (imm pre-zero-extended).
    Xori { rd: u8, rs1: u8, imm: u32 },
    /// `rd ← (rs1 <ₛ imm)` (imm pre-sign-extended).
    Slti { rd: u8, rs1: u8, imm: u32 },
    /// `rd ← rs1 << sh` (sh pre-masked to 0..31).
    Slli { rd: u8, rs1: u8, sh: u32 },
    /// `rd ← rs1 >> sh` (logical, sh pre-masked).
    Srli { rd: u8, rs1: u8, sh: u32 },
    /// `rd ← rs1 >> sh` (arithmetic, sh pre-masked).
    Srai { rd: u8, rs1: u8, sh: u32 },
    /// `rd ← value` (the `lui` immediate, pre-shifted).
    LoadImm { rd: u8, value: u32 },
    /// Memory/MMIO load; the address is dynamic so the RAM-vs-device
    /// split stays a runtime decision.
    Load {
        rd: u8,
        base: u8,
        off: u32,
        width: MemWidth,
        signed: bool,
    },
    /// Memory/MMIO store.
    Store {
        rs: u8,
        base: u8,
        off: u32,
        width: MemWidth,
    },
    /// Conditional branch with a pre-validated absolute `target`
    /// (`target ≤ rom.len()`; a branch *to* the ROM end is legal and
    /// halts cleanly on the next dispatch).
    Br {
        kind: BranchKind,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// Conditional branch whose target is statically out of range: taken
    /// ⇒ `Trap::BadJump { target: bad }` (pre-clamped exactly as the
    /// step interpreter reports it), not taken ⇒ ordinary fall-through.
    BrBad {
        kind: BranchKind,
        rs1: u8,
        rs2: u8,
        bad: u32,
    },
    /// Unconditional jump-and-link with a pre-validated target.
    Jal { rd: u8, target: u32 },
    /// `jal` whose static target is out of range: always traps, before
    /// the link register is written (mirroring the step interpreter).
    JalBad { target: u32 },
    /// Register-indirect jump; target computed and validated at runtime.
    Jalr { rd: u8, rs1: u8, off: u32 },
    /// Stop with `code` (consumes its cycle).
    Halt { code: u16 },
}

/// The register-file access events one instruction reports to a
/// [`crate::MemObserver`], precomputed from [`Inst::reg_ops`] with the
/// hard-wired `r0` already filtered out. Reads keep the datapath's
/// deduplicated order and are reported before execution; the write (if
/// any) after.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegEvents {
    /// Distinct non-`r0` source registers, in operand order.
    pub(crate) reads: [Option<Reg>; 2],
    /// Non-`r0` destination register, if any.
    pub(crate) write: Option<Reg>,
}

/// The decode-once execution table for one ROM: a µop and its observer
/// events per instruction slot, aligned by PC, plus the straight-line
/// block structure. Lookup is the identity on the PC — no hashing, no
/// discovery at run time, and (because the ROM is immutable) no
/// invalidation, ever.
#[derive(Debug)]
pub(crate) struct BlockTable {
    /// One µop per ROM slot.
    pub(crate) uops: Vec<Uop>,
    /// Observer reg-access events per ROM slot.
    pub(crate) events: Vec<RegEvents>,
    /// `straight[pc]`: number of instructions from `pc` through the end
    /// of its basic block (the next control-flow instruction, inclusive,
    /// or the ROM end). Always ≥ 1 for a non-empty ROM.
    pub(crate) straight: Vec<u32>,
}

impl BlockTable {
    /// Lowers a ROM into its execution table. `O(rom.len())`, run once
    /// per [`crate::Machine`] construction (clones share the result).
    pub(crate) fn decode(rom: &[Inst]) -> BlockTable {
        let n = rom.len();
        let mut uops = Vec::with_capacity(n);
        let mut events = Vec::with_capacity(n);
        for (pc, inst) in rom.iter().enumerate() {
            uops.push(lower(*inst, pc as u32, n as u32));
            events.push(reg_events(*inst));
        }
        let mut straight = vec![0u32; n];
        for pc in (0..n).rev() {
            straight[pc] = if rom[pc].is_control() || pc + 1 == n {
                1
            } else {
                straight[pc + 1] + 1
            };
        }
        BlockTable {
            uops,
            events,
            straight,
        }
    }

    /// Number of basic blocks in the ROM (block = maximal straight-line
    /// run; diagnostics only — surfaced as
    /// `crate::Machine::rom_block_count`).
    pub(crate) fn block_count(&self) -> usize {
        let mut pc = 0usize;
        let mut count = 0usize;
        while pc < self.straight.len() {
            pc += self.straight[pc] as usize;
            count += 1;
        }
        count
    }
}

/// Register index of `r` as the µop operand encoding.
fn idx(r: Reg) -> u8 {
    r.index() as u8
}

/// Lowers one instruction. `rom_len` pre-validates static control-flow
/// targets so the execution loop never range-checks them again.
fn lower(inst: Inst, pc: u32, rom_len: u32) -> Uop {
    use Inst::*;
    // ALU results into the hard-wired zero register have no architectural
    // effect (the observer events still come from `reg_events`, which is
    // derived from the original instruction).
    macro_rules! alu {
        ($rd:expr, $v:expr) => {
            if $rd == Reg::R0 {
                Uop::Nop
            } else {
                $v
            }
        };
    }
    match inst {
        Add { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Add {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Sub { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Sub {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        And { rd, rs1, rs2 } => alu!(
            rd,
            Uop::And {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Or { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Or {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Xor { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Xor {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Sll { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Sll {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Srl { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Srl {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Sra { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Sra {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Slt { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Slt {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Sltu { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Sltu {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Mul { rd, rs1, rs2 } => alu!(
            rd,
            Uop::Mul {
                rd: idx(rd),
                rs1: idx(rs1),
                rs2: idx(rs2),
            }
        ),
        Addi { rd, rs1, imm } => alu!(
            rd,
            Uop::Addi {
                rd: idx(rd),
                rs1: idx(rs1),
                imm: imm as i32 as u32,
            }
        ),
        Andi { rd, rs1, imm } => alu!(
            rd,
            Uop::Andi {
                rd: idx(rd),
                rs1: idx(rs1),
                imm: imm as u16 as u32,
            }
        ),
        Ori { rd, rs1, imm } => alu!(
            rd,
            Uop::Ori {
                rd: idx(rd),
                rs1: idx(rs1),
                imm: imm as u16 as u32,
            }
        ),
        Xori { rd, rs1, imm } => alu!(
            rd,
            Uop::Xori {
                rd: idx(rd),
                rs1: idx(rs1),
                imm: imm as u16 as u32,
            }
        ),
        Slti { rd, rs1, imm } => alu!(
            rd,
            Uop::Slti {
                rd: idx(rd),
                rs1: idx(rs1),
                imm: imm as i32 as u32,
            }
        ),
        Slli { rd, rs1, shamt } => alu!(
            rd,
            Uop::Slli {
                rd: idx(rd),
                rs1: idx(rs1),
                sh: (shamt & 31) as u32,
            }
        ),
        Srli { rd, rs1, shamt } => alu!(
            rd,
            Uop::Srli {
                rd: idx(rd),
                rs1: idx(rs1),
                sh: (shamt & 31) as u32,
            }
        ),
        Srai { rd, rs1, shamt } => alu!(
            rd,
            Uop::Srai {
                rd: idx(rd),
                rs1: idx(rs1),
                sh: (shamt & 31) as u32,
            }
        ),
        Lui { rd, imm } => alu!(
            rd,
            Uop::LoadImm {
                rd: idx(rd),
                value: (imm as u32) << 16,
            }
        ),
        Load {
            rd,
            base,
            offset,
            width,
            signed,
        } => Uop::Load {
            // `rd` may be r0 here: the load still performs the (possibly
            // trapping, observer-visible) memory access; only the
            // register write is suppressed, at run time.
            rd: idx(rd),
            base: idx(base),
            off: offset as i32 as u32,
            width,
            signed,
        },
        Store {
            rs,
            base,
            offset,
            width,
        } => Uop::Store {
            rs: idx(rs),
            base: idx(base),
            off: offset as i32 as u32,
            width,
        },
        Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let t = (pc as i64) + 1 + (offset as i64);
            if t < 0 || t > rom_len as i64 {
                Uop::BrBad {
                    kind,
                    rs1: idx(rs1),
                    rs2: idx(rs2),
                    bad: t.clamp(0, u32::MAX as i64) as u32,
                }
            } else {
                Uop::Br {
                    kind,
                    rs1: idx(rs1),
                    rs2: idx(rs2),
                    target: t as u32,
                }
            }
        }
        Jal { rd, target } => {
            if target > rom_len {
                Uop::JalBad { target }
            } else {
                Uop::Jal {
                    rd: idx(rd),
                    target,
                }
            }
        }
        Jalr { rd, rs1, offset } => Uop::Jalr {
            rd: idx(rd),
            rs1: idx(rs1),
            off: offset as i32 as u32,
        },
        Halt { code } => Uop::Halt { code },
    }
}

/// Branch-condition evaluation shared by the µop loop's `Br`/`BrBad`
/// arms (semantics identical to the step interpreter's `Inst::Branch`).
#[inline(always)]
pub(crate) fn branch_taken(kind: BranchKind, a: u32, b: u32) -> bool {
    match kind {
        BranchKind::Eq => a == b,
        BranchKind::Ne => a != b,
        BranchKind::Lt => (a as i32) < (b as i32),
        BranchKind::Ge => (a as i32) >= (b as i32),
        BranchKind::Ltu => a < b,
        BranchKind::Geu => a >= b,
    }
}

/// Precomputes the observer events for one instruction (see
/// [`RegEvents`]).
fn reg_events(inst: Inst) -> RegEvents {
    let ops = inst.reg_ops();
    let mut reads = [None, None];
    let mut n = 0;
    for r in ops.reads() {
        if r != Reg::R0 {
            reads[n] = Some(r);
            n += 1;
        }
    }
    RegEvents {
        reads,
        write: ops.write.filter(|&r| r != Reg::R0),
    }
}

/// Per-machine execution-engine counters, cloned along with the machine
/// (campaign workers diff snapshots around each faulted run). All three
/// cover only the [`crate::Machine::run_blocks_to`]-family entry points;
/// direct `step`/`step_observed` calls are not attributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Instructions retired through the pre-decoded µop loop.
    pub block_cycles: u64,
    /// Instructions retired by cycle-exact single-stepping (external-event
    /// latch cycles, or the engine disabled via
    /// [`crate::MachineConfig::block_engine`]).
    pub step_cycles: u64,
    /// Straight-line µop segments executed (one per dispatcher entry plus
    /// one per control-flow transfer taken inside the fast loop).
    pub blocks: u64,
}

impl BlockStats {
    /// Counter deltas accumulated since `base` was snapshotted
    /// (saturating, so a caller diffing across unrelated machines gets
    /// zeros rather than wrap-around garbage).
    pub fn delta_since(self, base: BlockStats) -> BlockStats {
        BlockStats {
            block_cycles: self.block_cycles.saturating_sub(base.block_cycles),
            step_cycles: self.step_cycles.saturating_sub(base.step_cycles),
            blocks: self.blocks.saturating_sub(base.blocks),
        }
    }

    /// Folds another counter record into this one (associative,
    /// commutative, `default()` as identity — mirrors
    /// `ExecutorStats::absorb`).
    pub fn absorb(&mut self, other: BlockStats) {
        self.block_cycles += other.block_cycles;
        self.step_cycles += other.step_cycles;
        self.blocks += other.blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};

    fn table_of(f: impl FnOnce(&mut Asm)) -> BlockTable {
        let mut a = Asm::new();
        f(&mut a);
        BlockTable::decode(&a.build().unwrap().insts)
    }

    #[test]
    fn straight_runs_end_at_control_flow() {
        let t = table_of(|a| {
            a.li(Reg::R1, 3); // 0
            a.addi(Reg::R1, Reg::R1, -1); // 1
            let top = a.new_label();
            a.bind(top);
            a.nop(); // 2
            a.nop(); // 3
            a.bne(Reg::R1, Reg::R0, top); // 4  ← block end
            a.nop(); // 5
            a.halt(0); // 6  ← block end
        });
        assert_eq!(t.straight, vec![5, 4, 3, 2, 1, 2, 1]);
        // Maximal straight-line runs under a linear scan: [0..=4] (ends
        // at the bne) and [5..=6] (ends at the halt). Branch *targets*
        // are not leaders here — `straight` measures run lengths, not
        // CFG partitioning.
        assert_eq!(t.block_count(), 2);
    }

    #[test]
    fn immediates_are_pre_extended() {
        let t = table_of(|a| {
            a.addi(Reg::R1, Reg::R2, -5);
            a.andi(Reg::R1, Reg::R2, -1);
            a.lui(Reg::R1, 0xABCD);
        });
        assert_eq!(
            t.uops[0],
            Uop::Addi {
                rd: 1,
                rs1: 2,
                imm: (-5i32) as u32
            }
        );
        assert_eq!(
            t.uops[1],
            Uop::Andi {
                rd: 1,
                rs1: 2,
                imm: 0xFFFF
            }
        );
        assert_eq!(
            t.uops[2],
            Uop::LoadImm {
                rd: 1,
                value: 0xABCD_0000
            }
        );
    }

    #[test]
    fn r0_destinations_lower_to_nop_but_keep_events() {
        let t = table_of(|a| {
            a.add(Reg::R0, Reg::R3, Reg::R4);
        });
        assert_eq!(t.uops[0], Uop::Nop);
        // The datapath still reads r3 and r4; an observer must see that.
        assert_eq!(t.events[0].reads, [Some(Reg::R3), Some(Reg::R4)]);
        assert_eq!(t.events[0].write, None);
    }

    #[test]
    fn duplicate_reads_deduplicated_and_r0_filtered() {
        let t = table_of(|a| {
            a.add(Reg::R1, Reg::R2, Reg::R2);
            a.add(Reg::R1, Reg::R0, Reg::R5);
        });
        assert_eq!(t.events[0].reads, [Some(Reg::R2), None]);
        assert_eq!(t.events[0].write, Some(Reg::R1));
        assert_eq!(t.events[1].reads, [Some(Reg::R5), None]);
    }

    #[test]
    fn static_targets_pre_validated() {
        // Branch to the exact ROM end is legal (clean halt on next
        // dispatch); anything beyond lowers to the trap µop.
        let insts = vec![
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::R0,
                rs2: Reg::R0,
                offset: 1, // target 2 == rom len: legal
            },
            Inst::Jal {
                rd: Reg::R0,
                target: 7, // beyond rom len: statically bad
            },
        ];
        let t = BlockTable::decode(&insts);
        assert!(matches!(t.uops[0], Uop::Br { target: 2, .. }));
        assert_eq!(t.uops[1], Uop::JalBad { target: 7 });

        let back = vec![Inst::Branch {
            kind: BranchKind::Ne,
            rs1: Reg::R1,
            rs2: Reg::R0,
            offset: -9, // target -8: statically bad, clamped to 0
        }];
        let t = BlockTable::decode(&back);
        assert!(matches!(t.uops[0], Uop::BrBad { bad: 0, .. }));
    }
}
