//! Implementation of the `sofi` command-line tool.
//!
//! The CLI assembles `.s` sources (see [`sofi_isa::assemble_text`] for the
//! syntax) and runs them through the pipeline:
//!
//! ```text
//! sofi run <prog.s> [--limit N]            execute, show output and cycles
//! sofi campaign <prog.s> [--registers] [--json]
//!                                          full def/use fault-space scan
//! sofi sample <prog.s> --draws N [--seed S] [--mode raw|weighted|biased]
//!                                          sampling campaign + extrapolation
//! sofi diagram <prog.s>                    ASCII fault-space diagram
//! sofi compare <baseline.s> <hardened.s>   soundly compare two variants
//! ```
//!
//! All functions return the text they would print, so they are directly
//! testable; the binary's `main` is a thin shell around [`dispatch`].

use sofi_campaign::{Campaign, CampaignResult, SamplingMode};
use sofi_isa::{assemble_text, Program};
use sofi_metrics::{
    compare_failures, exact_failures, extrapolated_failures, fault_coverage, outcome_breakdown,
    Weighting,
};
use sofi_report::{fault_space_diagram, Table};
use sofi_rng::DefaultRng;
use std::fmt::Write as _;

/// CLI failure: bad usage or a failing pipeline step, with a user-facing
/// message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> CliError {
        CliError(s)
    }
}

/// Usage text.
pub const USAGE: &str = "\
sofi — fault-injection methodology toolkit (DSN'15 pitfalls paper)

USAGE:
  sofi run <prog.s> [--limit N]
  sofi campaign <prog.s> [--registers] [--json]
  sofi sample <prog.s> --draws N [--seed S] [--mode raw|weighted|biased]
  sofi diagram <prog.s>
  sofi compare <baseline.s> <hardened.s>
";

/// Entry point: dispatches an argument vector (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad usage,
/// unreadable files, assembly errors or failing golden runs.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("diagram") => cmd_diagram(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    assemble_text(name, &source).map_err(|e| CliError(format!("{path}: {e}")))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("{flag} expects a number, got `{v}`"))),
    }
}

fn positional(args: &[String], n: usize) -> Result<&str, CliError> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip values that directly follow a flag.
            let idx = args.iter().position(|x| x == *a).unwrap_or(0);
            idx == 0 || !args[idx - 1].starts_with("--")
        })
        .nth(n)
        .map(String::as_str)
        .ok_or_else(|| CliError(format!("missing argument #{n}\n\n{USAGE}")))
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let program = load_program(positional(args, 0)?)?;
    let limit = parse_u64(args, "--limit", 50_000_000)?;
    let mut m = sofi_machine::Machine::new(&program);
    let status = m.run(limit);
    let mut out = String::new();
    let _ = writeln!(out, "program : {}", program.name);
    let _ = writeln!(out, "status  : {status:?}");
    let _ = writeln!(out, "cycles  : {}", m.cycle());
    let _ = writeln!(out, "output  : {:?}", m.serial());
    if let Ok(text) = std::str::from_utf8(m.serial()) {
        if text.chars().all(|c| !c.is_control() || c == '\n') {
            let _ = writeln!(out, "as text : {text:?}");
        }
    }
    Ok(out)
}

fn campaign_report(result: &CampaignResult, campaign: &Campaign) -> String {
    let mut out = String::new();
    let plan_len = result.results.len();
    let _ = writeln!(
        out,
        "fault space     : {} cycles x {} bits = {} coordinates ({:?})",
        result.space.cycles,
        result.space.bits,
        result.space.size(),
        result.domain,
    );
    let _ = writeln!(
        out,
        "def/use pruning : {} experiments (x{:.0} reduction)",
        plan_len,
        result.space.size() as f64 / plan_len.max(1) as f64
    );
    let _ = writeln!(out, "golden runtime  : {} cycles", campaign.golden().cycles);
    let _ = writeln!(
        out,
        "failures        : F = {} (weighted; raw experiment count {})",
        result.failure_weight(),
        result.failure_raw()
    );
    let _ = writeln!(
        out,
        "fault coverage  : {:.2}% weighted / {:.2}% unweighted (do NOT compare across programs)",
        fault_coverage(result, Weighting::Weighted) * 100.0,
        fault_coverage(result, Weighting::Unweighted) * 100.0,
    );
    let breakdown = outcome_breakdown(result);
    let mut t = Table::new(vec!["failure mode", "weighted count"]);
    for (label, count) in breakdown.failure_rows() {
        if count > 0.0 {
            t.row(vec![label.to_string(), format!("{count:.0}")]);
        }
    }
    if !t.is_empty() {
        let _ = writeln!(out, "{t}");
    }
    out
}

fn cmd_campaign(args: &[String]) -> Result<String, CliError> {
    let program = load_program(positional(args, 0)?)?;
    let campaign =
        Campaign::new(&program).map_err(|e| CliError(format!("golden run failed: {e}")))?;
    let result = if args.iter().any(|a| a == "--registers") {
        campaign.run_full_defuse_registers()
    } else {
        campaign.run_full_defuse()
    };
    if args.iter().any(|a| a == "--json") {
        return Ok(sofi_report::to_json(&result));
    }
    Ok(campaign_report(&result, &campaign))
}

fn cmd_sample(args: &[String]) -> Result<String, CliError> {
    let program = load_program(positional(args, 0)?)?;
    let draws = parse_u64(args, "--draws", 10_000)?;
    let seed = parse_u64(args, "--seed", 1)?;
    let mode = match flag_value(args, "--mode").unwrap_or("raw") {
        "raw" => SamplingMode::UniformRaw,
        "weighted" => SamplingMode::WeightedClasses,
        "biased" => SamplingMode::BiasedPerClass,
        other => return Err(CliError(format!("unknown sampling mode `{other}`"))),
    };
    let campaign =
        Campaign::new(&program).map_err(|e| CliError(format!("golden run failed: {e}")))?;
    let mut rng = DefaultRng::seed_from_u64(seed);
    let sampled = campaign.run_sampled(draws, mode, &mut rng);
    let est = extrapolated_failures(&sampled, 0.95);
    let mut out = String::new();
    let _ = writeln!(out, "mode            : {mode:?}");
    let _ = writeln!(
        out,
        "draws           : {} (over population {})",
        sampled.draws, sampled.population
    );
    let _ = writeln!(out, "experiments run : {}", sampled.experiments_run());
    let _ = writeln!(out, "failure draws   : {}", sampled.failure_hits());
    let _ = writeln!(
        out,
        "F extrapolated  : {:.0}  (95% CI [{:.0}, {:.0}])",
        est.failures, est.ci.0, est.ci.1
    );
    if mode == SamplingMode::BiasedPerClass {
        let _ = writeln!(
            out,
            "WARNING: per-class sampling ignores class weights (Pitfall 2); the\n\
             estimate above is not a valid extrapolation."
        );
    }
    Ok(out)
}

fn cmd_diagram(args: &[String]) -> Result<String, CliError> {
    let program = load_program(positional(args, 0)?)?;
    let campaign =
        Campaign::new(&program).map_err(|e| CliError(format!("golden run failed: {e}")))?;
    fault_space_diagram(campaign.analysis()).ok_or_else(|| {
        CliError(format!(
            "fault space too large to draw ({} cycles x {} bits)",
            campaign.golden().cycles,
            campaign.golden().ram_bits
        ))
    })
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let baseline = load_program(positional(args, 0)?)?;
    let hardened = load_program(positional(args, 1)?)?;
    let cb = Campaign::new(&baseline)
        .map_err(|e| CliError(format!("{}: golden run failed: {e}", baseline.name)))?;
    let ch = Campaign::new(&hardened)
        .map_err(|e| CliError(format!("{}: golden run failed: {e}", hardened.name)))?;
    let rb = cb.run_full_defuse();
    let rh = ch.run_full_defuse();
    let cmp = compare_failures(&exact_failures(&rb), &exact_failures(&rh));
    let mut out = String::new();
    let mut t = Table::new(vec!["variant", "w", "F", "coverage"]);
    for r in [&rb, &rh] {
        t.row(vec![
            r.benchmark.clone(),
            r.space.size().to_string(),
            r.failure_weight().to_string(),
            format!("{:.2}%", fault_coverage(r, Weighting::Weighted) * 100.0),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(out, "comparison (absolute failure counts): {cmp}");
    let _ = writeln!(
        out,
        "(coverage percentages are shown for reference only — they are not a\n\
         valid comparison metric; see the paper's Pitfall 3)"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sofi-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    const HI: &str = "
        .data
        msg: .space 2
        .text
        li r1, 'H'
        sb r1, msg(r0)
        li r1, 'i'
        sb r1, msg+1(r0)
        lb r2, msg(r0)
        serial r2
        lb r2, msg+1(r0)
        serial r2
    ";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_command() {
        let p = write_temp("hi.s", HI);
        let out = dispatch(&args(&["run", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("cycles  : 8"), "{out}");
        assert!(out.contains("\"Hi\""), "{out}");
    }

    #[test]
    fn campaign_command() {
        let p = write_temp("hi2.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("F = 48"), "{out}");
        assert!(out.contains("62.50% weighted"), "{out}");
        assert!(out.contains("SDC"), "{out}");
    }

    #[test]
    fn campaign_registers_command() {
        let p = write_temp("hi3.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap(), "--registers"])).unwrap();
        assert!(out.contains("RegisterFile"), "{out}");
    }

    #[test]
    fn campaign_json_command() {
        let p = write_temp("hi4.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap(), "--json"])).unwrap();
        assert!(out.contains("\"benchmark\""), "{out}");
        let parsed = sofi_report::Json::parse(&out).unwrap();
        let cycles = parsed.get("space").and_then(|s| s.get("cycles"));
        assert_eq!(cycles.and_then(sofi_report::Json::as_u64), Some(8));
    }

    #[test]
    fn sample_command() {
        let p = write_temp("hi5.s", HI);
        let out = dispatch(&args(&[
            "sample",
            p.to_str().unwrap(),
            "--draws",
            "5000",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("F extrapolated"), "{out}");
    }

    #[test]
    fn diagram_command() {
        let p = write_temp("hi6.s", HI);
        let out = dispatch(&args(&["diagram", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("bit   0 |"), "{out}");
    }

    #[test]
    fn compare_command() {
        let base = write_temp("cmp_base.s", HI);
        let hard = write_temp("cmp_hard.s", &format!("nop\nnop\nnop\nnop\n{HI}"));
        let out = dispatch(&args(&[
            "compare",
            base.to_str().unwrap(),
            hard.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("r = 1.000"), "{out}");
    }

    #[test]
    fn errors_are_friendly() {
        assert!(dispatch(&args(&["run", "/nonexistent.s"]))
            .unwrap_err()
            .0
            .contains("cannot read"));
        assert!(dispatch(&args(&["frobnicate"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        let bad = write_temp("bad.s", "frobnicate r1\n");
        assert!(dispatch(&args(&["run", bad.to_str().unwrap()]))
            .unwrap_err()
            .0
            .contains("parse error"));
    }

    #[test]
    fn help_text() {
        assert!(dispatch(&[]).unwrap().contains("USAGE"));
        assert!(dispatch(&args(&["help"])).unwrap().contains("sofi"));
    }
}
