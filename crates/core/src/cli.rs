//! Implementation of the `sofi` command-line tool.
//!
//! The CLI assembles `.s` sources (see [`sofi_isa::assemble_text`] for the
//! syntax) and runs them through the pipeline:
//!
//! ```text
//! sofi run <prog.s> [--limit N]            execute, show output and cycles
//! sofi campaign <prog.s> [--registers] [--json] [--threads N]
//!                                          full def/use fault-space scan
//! sofi sample <prog.s> --draws N [--seed S] [--mode raw|weighted|biased]
//!                                          sampling campaign + extrapolation
//! sofi diagram <prog.s>                    ASCII fault-space diagram
//! sofi compare <baseline.s> <hardened.s>   soundly compare two variants
//! sofi serve [--addr A] [--journal PATH] [--store FILE]
//!                                          campaign service daemon
//! sofi submit <prog.s> [--registers|--memory] [--wait] [--cold]
//!                                          queue a campaign on the daemon
//! sofi status [job-id]                     job table with live progress/rates
//! sofi stats [job-id] [--watch]            telemetry snapshot from the daemon
//! sofi cancel <job-id>                     cancel a queued/running job
//! sofi shutdown                            ask the daemon to drain and exit
//! ```
//!
//! All functions return the text they would print, so they are directly
//! testable; the binary's `main` is a thin shell around [`dispatch`].
//! (`sofi serve` additionally logs its bound address to stderr up front,
//! since its return value only materializes after shutdown.)

use sofi_campaign::{Campaign, CampaignConfig, CampaignResult, FaultDomain, SamplingMode};
use sofi_isa::{assemble_text, Program};
use sofi_metrics::{
    compare_failures, exact_failures, extrapolated_failures, fault_coverage, outcome_breakdown,
    Weighting,
};
use sofi_report::{fault_space_diagram, Table};
use sofi_rng::DefaultRng;
use sofi_serve::{Client, JobSpec, ServeConfig, Server};
use sofi_telemetry::Snapshot;
use std::fmt::Write as _;

/// Default daemon address for `serve`/`submit`/`status`/`cancel`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4715";
/// Default journal path for `sofi serve`.
pub const DEFAULT_JOURNAL: &str = "sofi.journal";

/// CLI failure: bad usage or a failing pipeline step, with a user-facing
/// message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> CliError {
        CliError(s)
    }
}

/// Usage text.
pub const USAGE: &str = "\
sofi — fault-injection methodology toolkit (DSN'15 pitfalls paper)

USAGE:
  sofi run <prog.s> [--limit N]
  sofi campaign <prog.s> [--registers] [--json] [--threads N] [--telemetry FILE]
  sofi sample <prog.s> --draws N [--seed S] [--mode raw|weighted|biased]
  sofi diagram <prog.s>
  sofi compare <baseline.s> <hardened.s>
  sofi serve [--addr A] [--journal PATH] [--store FILE] [--workers N]
             [--queue N] [--batch N]
  sofi submit <prog.s> [--addr A] [--registers|--memory] [--wait]
              [--threads N] [--cold] [--json] [--out FILE]
  sofi status [job-id] [--addr A]
  sofi stats [job-id] [--addr A] [--watch] [--json] [--out FILE]
  sofi cancel <job-id> [--addr A]
  sofi shutdown [--addr A]

Addresses containing `/` are Unix socket paths; anything else is TCP
host:port. The default address is 127.0.0.1:4715.
";

/// Entry point: dispatches an argument vector (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad usage,
/// unreadable files, assembly errors or failing golden runs.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("sample") => cmd_sample(&args[1..]),
        Some("diagram") => cmd_diagram(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("cancel") => cmd_cancel(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// One accepted flag: its name and whether it consumes a value argument.
type FlagSpec = (&'static str, bool);

/// Rejects any `--flag` not in `known`, naming the offending flag in the
/// error so typos are diagnosable (`--thread` vs `--threads`).
fn reject_unknown_flags(args: &[String], known: &[FlagSpec]) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(&(_, takes_value)) = known.iter().find(|(name, _)| *name == arg) {
            i += 1 + usize::from(takes_value);
        } else if arg.starts_with("--") {
            let mut names: Vec<&str> = known.iter().map(|&(name, _)| name).collect();
            names.sort_unstable();
            return Err(CliError(format!(
                "unknown flag `{arg}` (accepted here: {})",
                if names.is_empty() {
                    "none".to_string()
                } else {
                    names.join(", ")
                }
            )));
        } else {
            i += 1; // positional argument
        }
    }
    Ok(())
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    assemble_text(name, &source).map_err(|e| CliError(format!("{path}: {e}")))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("{flag} expects a number, got `{v}`"))),
    }
}

fn positional(args: &[String], n: usize) -> Result<&str, CliError> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip values that directly follow a flag.
            let idx = args.iter().position(|x| x == *a).unwrap_or(0);
            idx == 0 || !args[idx - 1].starts_with("--")
        })
        .nth(n)
        .map(String::as_str)
        .ok_or_else(|| CliError(format!("missing argument #{n}\n\n{USAGE}")))
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[("--limit", true)])?;
    let program = load_program(positional(args, 0)?)?;
    let limit = parse_u64(args, "--limit", 50_000_000)?;
    let mut m = sofi_machine::Machine::new(&program);
    let status = m.run(limit);
    let mut out = String::new();
    let _ = writeln!(out, "program : {}", program.name);
    let _ = writeln!(out, "status  : {status:?}");
    let _ = writeln!(out, "cycles  : {}", m.cycle());
    let _ = writeln!(out, "output  : {:?}", m.serial());
    if let Ok(text) = std::str::from_utf8(m.serial()) {
        if text.chars().all(|c| !c.is_control() || c == '\n') {
            let _ = writeln!(out, "as text : {text:?}");
        }
    }
    Ok(out)
}

fn campaign_report(result: &CampaignResult, campaign: &Campaign) -> String {
    let mut out = String::new();
    let plan_len = result.results.len();
    let _ = writeln!(
        out,
        "fault space     : {} cycles x {} bits = {} coordinates ({:?})",
        result.space.cycles,
        result.space.bits,
        result.space.size(),
        result.domain,
    );
    let _ = writeln!(
        out,
        "def/use pruning : {} experiments (x{:.0} reduction)",
        plan_len,
        result.space.size() as f64 / plan_len.max(1) as f64
    );
    let _ = writeln!(out, "golden runtime  : {} cycles", campaign.golden().cycles);
    let _ = writeln!(
        out,
        "failures        : F = {} (weighted; raw experiment count {})",
        result.failure_weight(),
        result.failure_raw()
    );
    let _ = writeln!(
        out,
        "fault coverage  : {:.2}% weighted / {:.2}% unweighted (do NOT compare across programs)",
        fault_coverage(result, Weighting::Weighted) * 100.0,
        fault_coverage(result, Weighting::Unweighted) * 100.0,
    );
    let breakdown = outcome_breakdown(result);
    let mut t = Table::new(vec!["failure mode", "weighted count"]);
    for (label, count) in breakdown.failure_rows() {
        if count > 0.0 {
            t.row(vec![label.to_string(), format!("{count:.0}")]);
        }
    }
    if !t.is_empty() {
        let _ = writeln!(out, "{t}");
    }
    out
}

fn cmd_campaign(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(
        args,
        &[
            ("--registers", false),
            ("--json", false),
            ("--threads", true),
            ("--telemetry", true),
        ],
    )?;
    let program = load_program(positional(args, 0)?)?;
    let telemetry_path = flag_value(args, "--telemetry");
    let config = CampaignConfig {
        threads: parse_u64(args, "--threads", 0)? as usize,
        telemetry: telemetry_path.is_some(),
        ..CampaignConfig::default()
    };
    let campaign = Campaign::with_config(&program, config)
        .map_err(|e| CliError(format!("golden run failed: {e}")))?;
    let result = if args.iter().any(|a| a == "--registers") {
        campaign.run_full_defuse_registers()
    } else {
        campaign.run_full_defuse()
    };
    if let Some(path) = telemetry_path {
        let artifact = sofi_report::telemetry_artifact(&campaign.telemetry().snapshot());
        std::fs::write(path, artifact.pretty())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    if args.iter().any(|a| a == "--json") {
        return Ok(sofi_report::to_json(&result));
    }
    Ok(campaign_report(&result, &campaign))
}

fn cmd_sample(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(
        args,
        &[("--draws", true), ("--seed", true), ("--mode", true)],
    )?;
    let program = load_program(positional(args, 0)?)?;
    let draws = parse_u64(args, "--draws", 10_000)?;
    let seed = parse_u64(args, "--seed", 1)?;
    let mode = match flag_value(args, "--mode").unwrap_or("raw") {
        "raw" => SamplingMode::UniformRaw,
        "weighted" => SamplingMode::WeightedClasses,
        "biased" => SamplingMode::BiasedPerClass,
        other => return Err(CliError(format!("unknown sampling mode `{other}`"))),
    };
    let campaign =
        Campaign::new(&program).map_err(|e| CliError(format!("golden run failed: {e}")))?;
    let mut rng = DefaultRng::seed_from_u64(seed);
    let sampled = campaign.run_sampled(draws, mode, &mut rng);
    let est = extrapolated_failures(&sampled, 0.95);
    let mut out = String::new();
    let _ = writeln!(out, "mode            : {mode:?}");
    let _ = writeln!(
        out,
        "draws           : {} (over population {})",
        sampled.draws, sampled.population
    );
    let _ = writeln!(out, "experiments run : {}", sampled.experiments_run());
    let _ = writeln!(out, "failure draws   : {}", sampled.failure_hits());
    let _ = writeln!(
        out,
        "F extrapolated  : {:.0}  (95% CI [{:.0}, {:.0}])",
        est.failures, est.ci.0, est.ci.1
    );
    if mode == SamplingMode::BiasedPerClass {
        let _ = writeln!(
            out,
            "WARNING: per-class sampling ignores class weights (Pitfall 2); the\n\
             estimate above is not a valid extrapolation."
        );
    }
    Ok(out)
}

fn cmd_diagram(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[])?;
    let program = load_program(positional(args, 0)?)?;
    let campaign =
        Campaign::new(&program).map_err(|e| CliError(format!("golden run failed: {e}")))?;
    fault_space_diagram(campaign.analysis()).ok_or_else(|| {
        CliError(format!(
            "fault space too large to draw ({} cycles x {} bits)",
            campaign.golden().cycles,
            campaign.golden().ram_bits
        ))
    })
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[])?;
    let baseline = load_program(positional(args, 0)?)?;
    let hardened = load_program(positional(args, 1)?)?;
    let cb = Campaign::new(&baseline)
        .map_err(|e| CliError(format!("{}: golden run failed: {e}", baseline.name)))?;
    let ch = Campaign::new(&hardened)
        .map_err(|e| CliError(format!("{}: golden run failed: {e}", hardened.name)))?;
    let rb = cb.run_full_defuse();
    let rh = ch.run_full_defuse();
    let cmp = compare_failures(&exact_failures(&rb), &exact_failures(&rh));
    let mut out = String::new();
    let mut t = Table::new(vec!["variant", "w", "F", "coverage"]);
    for r in [&rb, &rh] {
        t.row(vec![
            r.benchmark.clone(),
            r.space.size().to_string(),
            r.failure_weight().to_string(),
            format!("{:.2}%", fault_coverage(r, Weighting::Weighted) * 100.0),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(out, "comparison (absolute failure counts): {cmp}");
    let _ = writeln!(
        out,
        "(coverage percentages are shown for reference only — they are not a\n\
         valid comparison metric; see the paper's Pitfall 3)"
    );
    Ok(out)
}

// --- service subcommands ------------------------------------------------

fn addr_of(args: &[String]) -> String {
    flag_value(args, "--addr")
        .unwrap_or(DEFAULT_ADDR)
        .to_string()
}

fn connect(args: &[String]) -> Result<Client, CliError> {
    let addr = addr_of(args);
    Client::connect(&addr).map_err(|e| CliError(format!("{addr}: {e}")))
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(
        args,
        &[
            ("--addr", true),
            ("--journal", true),
            ("--workers", true),
            ("--queue", true),
            ("--batch", true),
            ("--store", true),
        ],
    )?;
    let addr = addr_of(args);
    let journal = flag_value(args, "--journal").unwrap_or(DEFAULT_JOURNAL);
    let store = flag_value(args, "--store").map(std::path::PathBuf::from);
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        workers: parse_u64(args, "--workers", defaults.workers as u64)? as usize,
        queue_capacity: parse_u64(args, "--queue", defaults.queue_capacity as u64)? as usize,
        batch_size: parse_u64(args, "--batch", defaults.batch_size as u64)? as usize,
        warm_store: store.clone(),
        ..defaults
    };
    let server = Server::bind(&addr, std::path::Path::new(journal), config)
        .map_err(|e| CliError(format!("cannot start daemon on {addr}: {e}")))?;
    match &store {
        Some(path) => eprintln!(
            "sofi-serve listening on {} (journal: {journal}, warm store: {})",
            server.local_addr(),
            path.display()
        ),
        None => eprintln!(
            "sofi-serve listening on {} (journal: {journal})",
            server.local_addr()
        ),
    }
    server
        .run()
        .map_err(|e| CliError(format!("daemon failed: {e}")))?;
    Ok("daemon exited after graceful drain\n".to_string())
}

fn submit_spec(args: &[String]) -> Result<JobSpec, CliError> {
    let path = positional(args, 0)?;
    let source =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    // Assemble locally first purely for early diagnostics — the daemon
    // re-assembles from source and is the source of truth.
    assemble_text(&name, &source).map_err(|e| CliError(format!("{path}: {e}")))?;
    let domain = match (
        args.iter().any(|a| a == "--registers"),
        args.iter().any(|a| a == "--memory"),
    ) {
        (true, true) => {
            return Err(CliError(
                "--registers and --memory are mutually exclusive".into(),
            ));
        }
        (true, false) => FaultDomain::RegisterFile,
        _ => FaultDomain::Memory,
    };
    Ok(JobSpec {
        name,
        source,
        domain,
        config: CampaignConfig {
            threads: parse_u64(args, "--threads", 0)? as usize,
            ..CampaignConfig::default()
        },
        // Warm-store participation is the default; `--cold` opts out for
        // ablation runs and store-independent benchmarking.
        warm_store: !args.iter().any(|a| a == "--cold"),
    })
}

fn cmd_submit(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(
        args,
        &[
            ("--addr", true),
            ("--registers", false),
            ("--memory", false),
            ("--wait", false),
            ("--threads", true),
            ("--cold", false),
            ("--json", false),
            ("--out", true),
        ],
    )?;
    let spec = submit_spec(args)?;
    let mut client = connect(args)?;
    if !args.iter().any(|a| a == "--wait") {
        let job = client.submit(spec).map_err(|e| CliError(e.to_string()))?;
        return Ok(format!("job {job} queued on {}\n", addr_of(args)));
    }
    let (job, result, stats) = client
        .submit_wait(spec, |done, total, stats| {
            eprint!(
                "\rprogress: {done}/{total} experiments ({:.0}% early-term, {:.0}% memo hits, {:.0}% warm, gate {}/{})",
                stats.early_termination_rate() * 100.0,
                stats.memo_hit_rate() * 100.0,
                stats.store_hit_rate() * 100.0,
                stats.gate_shards_on,
                stats.gate_shards_on + stats.gate_shards_off,
            );
            if total > 0 && done == total {
                eprintln!();
            }
        })
        .map_err(|e| CliError(e.to_string()))?;
    let artifact = sofi_report::job_artifact(job, &result, &stats);
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, artifact.pretty())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    if args.iter().any(|a| a == "--json") {
        return Ok(artifact.pretty());
    }
    let mut out = String::new();
    let _ = writeln!(out, "job         : {job}");
    let _ = writeln!(
        out,
        "benchmark   : {} ({:?})",
        result.benchmark, result.domain
    );
    let _ = writeln!(out, "experiments : {}", result.results.len());
    let _ = writeln!(
        out,
        "failures    : F = {} (weighted; raw experiment count {})",
        result.failure_weight(),
        result.failure_raw()
    );
    let _ = writeln!(
        out,
        "executor    : {} workers, {} faulted cycles simulated",
        stats.workers, stats.faulted_cycles
    );
    let _ = writeln!(
        out,
        "memoization : {:.0}% hits ({:.0}% from warm store), gate on for {}/{} shards",
        stats.memo_hit_rate() * 100.0,
        stats.store_hit_rate() * 100.0,
        stats.gate_shards_on,
        stats.gate_shards_on + stats.gate_shards_off,
    );
    Ok(out)
}

fn cmd_status(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[("--addr", true)])?;
    let job = match positional(args, 0) {
        Ok(id) => Some(
            id.parse::<u64>()
                .map_err(|_| CliError(format!("job id must be a number, got `{id}`")))?,
        ),
        Err(_) => None,
    };
    let mut client = connect(args)?;
    let jobs = client.status(job).map_err(|e| CliError(e.to_string()))?;
    if jobs.is_empty() {
        return Ok("no jobs\n".to_string());
    }
    let mut t = Table::new(vec![
        "job",
        "benchmark",
        "domain",
        "state",
        "progress",
        "early-term",
        "memo hits",
        "warm hits",
        "gate",
    ]);
    for j in &jobs {
        // Jobs replayed from a journal know their covered count but not
        // the plan size (the golden run isn't redone for terminal jobs).
        let progress = if j.total > 0 {
            format!("{}/{}", j.done, j.total)
        } else if j.done > 0 {
            format!("{} covered", j.done)
        } else {
            "-".to_string()
        };
        let state = if j.error.is_empty() {
            j.state.to_string()
        } else {
            format!("{} ({})", j.state, j.error)
        };
        // Rates are ratios of the counters merged from every committed
        // batch, so they are meaningful mid-run; recovered terminal jobs
        // replayed without stats show "-" instead of misleading zeros.
        let (early, memo, warm) = if j.stats.experiments > 0 {
            (
                format!("{:.0}%", j.stats.early_termination_rate() * 100.0),
                format!("{:.0}%", j.stats.memo_hit_rate() * 100.0),
                format!("{:.0}%", j.stats.store_hit_rate() * 100.0),
            )
        } else {
            ("-".to_string(), "-".to_string(), "-".to_string())
        };
        let gate_total = j.stats.gate_shards_on + j.stats.gate_shards_off;
        let gate = if gate_total > 0 {
            format!("{}/{} on", j.stats.gate_shards_on, gate_total)
        } else {
            "-".to_string()
        };
        t.row(vec![
            j.id.to_string(),
            j.name.clone(),
            format!("{:?}", j.domain),
            state,
            progress,
            early,
            memo,
            warm,
            gate,
        ]);
    }
    Ok(format!("{t}"))
}

/// Renders a telemetry snapshot as scalar and histogram tables.
fn render_snapshot(snap: &Snapshot) -> String {
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        return "no telemetry recorded yet\n".to_string();
    }
    let mut out = String::new();
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let mut t = Table::new(vec!["metric", "value"]);
        for (name, value) in &snap.counters {
            t.row(vec![name.clone(), value.to_string()]);
        }
        for (name, value) in &snap.gauges {
            t.row(vec![format!("{name} (gauge)"), value.to_string()]);
        }
        let _ = writeln!(out, "{t}");
    }
    if !snap.histograms.is_empty() {
        let mut t = Table::new(vec!["histogram", "count", "mean", "p50", "p99", "max"]);
        for (name, h) in &snap.histograms {
            t.row(vec![
                name.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.quantile(0.5).to_string(),
                h.quantile(0.99).to_string(),
                h.max.to_string(),
            ]);
        }
        let _ = writeln!(out, "{t}");
    }
    out
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(
        args,
        &[
            ("--addr", true),
            ("--watch", false),
            ("--json", false),
            ("--out", true),
        ],
    )?;
    let job = match positional(args, 0) {
        Ok(id) => Some(
            id.parse::<u64>()
                .map_err(|_| CliError(format!("job id must be a number, got `{id}`")))?,
        ),
        Err(_) => None,
    };
    let mut client = connect(args)?;
    let mut snapshot = client.stats(job).map_err(|e| CliError(e.to_string()))?;
    if args.iter().any(|a| a == "--watch") {
        // Repaint to stderr roughly once a second until the snapshot
        // stops changing (an idle daemon records nothing new), then fall
        // through and return the final render like a plain `stats` call.
        loop {
            eprintln!("{}", render_snapshot(&snapshot));
            std::thread::sleep(std::time::Duration::from_millis(1000));
            let next = client.stats(job).map_err(|e| CliError(e.to_string()))?;
            if next == snapshot {
                break;
            }
            snapshot = next;
        }
    }
    let artifact = sofi_report::telemetry_artifact(&snapshot);
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, artifact.pretty())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    if args.iter().any(|a| a == "--json") {
        return Ok(artifact.pretty());
    }
    Ok(render_snapshot(&snapshot))
}

fn cmd_cancel(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[("--addr", true)])?;
    let id = positional(args, 0)?;
    let id: u64 = id
        .parse()
        .map_err(|_| CliError(format!("job id must be a number, got `{id}`")))?;
    let mut client = connect(args)?;
    client.cancel(id).map_err(|e| CliError(e.to_string()))?;
    Ok(format!("job {id} cancelled\n"))
}

fn cmd_shutdown(args: &[String]) -> Result<String, CliError> {
    reject_unknown_flags(args, &[("--addr", true)])?;
    let mut client = connect(args)?;
    client.shutdown().map_err(|e| CliError(e.to_string()))?;
    Ok("daemon is draining\n".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sofi-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    const HI: &str = "
        .data
        msg: .space 2
        .text
        li r1, 'H'
        sb r1, msg(r0)
        li r1, 'i'
        sb r1, msg+1(r0)
        lb r2, msg(r0)
        serial r2
        lb r2, msg+1(r0)
        serial r2
    ";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_command() {
        let p = write_temp("hi.s", HI);
        let out = dispatch(&args(&["run", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("cycles  : 8"), "{out}");
        assert!(out.contains("\"Hi\""), "{out}");
    }

    #[test]
    fn campaign_command() {
        let p = write_temp("hi2.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("F = 48"), "{out}");
        assert!(out.contains("62.50% weighted"), "{out}");
        assert!(out.contains("SDC"), "{out}");
    }

    #[test]
    fn campaign_registers_command() {
        let p = write_temp("hi3.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap(), "--registers"])).unwrap();
        assert!(out.contains("RegisterFile"), "{out}");
    }

    #[test]
    fn campaign_json_command() {
        let p = write_temp("hi4.s", HI);
        let out = dispatch(&args(&["campaign", p.to_str().unwrap(), "--json"])).unwrap();
        assert!(out.contains("\"benchmark\""), "{out}");
        let parsed = sofi_report::Json::parse(&out).unwrap();
        let cycles = parsed.get("space").and_then(|s| s.get("cycles"));
        assert_eq!(cycles.and_then(sofi_report::Json::as_u64), Some(8));
    }

    #[test]
    fn sample_command() {
        let p = write_temp("hi5.s", HI);
        let out = dispatch(&args(&[
            "sample",
            p.to_str().unwrap(),
            "--draws",
            "5000",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("F extrapolated"), "{out}");
    }

    #[test]
    fn diagram_command() {
        let p = write_temp("hi6.s", HI);
        let out = dispatch(&args(&["diagram", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("bit   0 |"), "{out}");
    }

    #[test]
    fn compare_command() {
        let base = write_temp("cmp_base.s", HI);
        let hard = write_temp("cmp_hard.s", &format!("nop\nnop\nnop\nnop\n{HI}"));
        let out = dispatch(&args(&[
            "compare",
            base.to_str().unwrap(),
            hard.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("r = 1.000"), "{out}");
    }

    #[test]
    fn errors_are_friendly() {
        assert!(dispatch(&args(&["run", "/nonexistent.s"]))
            .unwrap_err()
            .0
            .contains("cannot read"));
        assert!(dispatch(&args(&["frobnicate"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        let bad = write_temp("bad.s", "frobnicate r1\n");
        assert!(dispatch(&args(&["run", bad.to_str().unwrap()]))
            .unwrap_err()
            .0
            .contains("parse error"));
    }

    #[test]
    fn help_text() {
        assert!(dispatch(&[]).unwrap().contains("USAGE"));
        assert!(dispatch(&args(&["help"])).unwrap().contains("sofi"));
        assert!(dispatch(&[]).unwrap().contains("sofi serve"));
    }

    #[test]
    fn unknown_flags_are_named() {
        let p = write_temp("hi7.s", HI);
        let err = dispatch(&args(&["campaign", p.to_str().unwrap(), "--frobnicate"]))
            .unwrap_err()
            .0;
        assert!(err.contains("unknown flag `--frobnicate`"), "{err}");
        assert!(
            err.contains("--threads"),
            "should list accepted flags: {err}"
        );
        // A typo'd flag taking a value is still caught, not swallowed as
        // a positional.
        let err = dispatch(&args(&["run", p.to_str().unwrap(), "--limits", "5"]))
            .unwrap_err()
            .0;
        assert!(err.contains("unknown flag `--limits`"), "{err}");
    }

    #[test]
    fn campaign_threads_flag() {
        let p = write_temp("hi8.s", HI);
        let sequential = dispatch(&args(&["campaign", p.to_str().unwrap(), "--threads", "1"]));
        let parallel = dispatch(&args(&["campaign", p.to_str().unwrap(), "--threads", "4"]));
        assert_eq!(sequential.unwrap(), parallel.unwrap());
        let err = dispatch(&args(&[
            "campaign",
            p.to_str().unwrap(),
            "--threads",
            "lots",
        ]))
        .unwrap_err()
        .0;
        assert!(err.contains("--threads expects a number"), "{err}");
    }

    #[test]
    fn campaign_telemetry_flag_writes_snapshot_json() {
        let p = write_temp("hi10.s", HI);
        let out_path = std::env::temp_dir().join("sofi-cli-tests/hi10.telemetry.json");
        let out = dispatch(&args(&[
            "campaign",
            p.to_str().unwrap(),
            "--telemetry",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("F = 48"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        let parsed = sofi_report::Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(sofi_report::Json::as_str),
            Some(sofi_report::TELEMETRY_SCHEMA)
        );
        let experiments = parsed
            .get("counters")
            .and_then(|c| c.get("executor.experiments"))
            .and_then(sofi_report::Json::as_u64);
        assert!(experiments.is_some_and(|n| n > 0), "{json}");
        assert!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("executor.faulted_run_cycles"))
                .is_some(),
            "{json}"
        );
    }

    #[test]
    fn submit_rejects_conflicting_domains() {
        let p = write_temp("hi9.s", HI);
        let err = dispatch(&args(&[
            "submit",
            p.to_str().unwrap(),
            "--registers",
            "--memory",
        ]))
        .unwrap_err()
        .0;
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn client_commands_fail_cleanly_without_daemon() {
        // Port 1 on localhost is never listening in the test environment.
        let err = dispatch(&args(&["status", "--addr", "127.0.0.1:1"]))
            .unwrap_err()
            .0;
        assert!(err.contains("cannot connect"), "{err}");
        let err = dispatch(&args(&["stats", "--addr", "127.0.0.1:1"]))
            .unwrap_err()
            .0;
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn stats_rejects_bad_job_id() {
        let err = dispatch(&args(&["stats", "seven"])).unwrap_err().0;
        assert!(err.contains("job id must be a number"), "{err}");
    }
}
