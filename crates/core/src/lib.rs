#![warn(missing_docs)]

//! # sofi — sound fault-injection comparison of programs
//!
//! A complete implementation of the methodology from *"Avoiding Pitfalls
//! in Fault-Injection Based Comparison of Program Susceptibility to Soft
//! Errors"* (DSN 2015): a deterministic machine model, def/use fault-space
//! pruning, parallel FI campaign execution, and — crucially — result
//! accounting that avoids the paper's three pitfalls:
//!
//! 1. **Unweighted result accounting** — def/use-pruned results must be
//!    weighted by equivalence-class size (data lifetime);
//! 2. **Biased sampling** — samples must be drawn from the raw fault
//!    space, not uniformly from the pruned class list;
//! 3. **Fault coverage as a comparison metric** — programs must be
//!    compared by *extrapolated absolute failure counts*, never by
//!    coverage percentages (which any runtime/memory padding inflates).
//!
//! ## Quickstart
//!
//! ```
//! use sofi::prelude::*;
//!
//! // The paper's "Hi" micro-benchmark vs its NOP-diluted "DFT" variant.
//! let baseline = sofi::workloads::hi();
//! let diluted = sofi::workloads::hi_dft(4);
//!
//! let eval = Evaluation::full_scan(&baseline, &diluted)?;
//!
//! // Pitfall 3: coverage "improves" from 62.5 % to 75.0 %...
//! let (cb, ch) = eval.coverages(Weighting::Weighted);
//! assert_eq!((cb, ch), (0.625, 0.75));
//!
//! // ...but the sound metric sees through the dilution: r = 1.
//! let cmp = eval.comparison();
//! assert_eq!(cmp.ratio, 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`isa`] | instruction set, assembler, programs |
//! | [`machine`] | the deterministic CPU/RAM simulator |
//! | [`trace`] | golden runs and access traces |
//! | [`space`] | fault space, def/use pruning, samplers |
//! | [`campaign`] | experiment execution |
//! | [`metrics`] | coverage, failure counts, Poisson model, comparison |
//! | [`harden`] | SUM+DMR, TMR, and the DFT dilution cheats |
//! | [`workloads`] | benchmark programs (hi, bin_sem2, sync2, ...) |
//! | [`report`] | ASCII diagrams, tables, JSON export |

pub use sofi_campaign as campaign;
pub use sofi_harden as harden;
pub use sofi_isa as isa;
pub use sofi_machine as machine;
pub use sofi_metrics as metrics;
pub use sofi_report as report;
pub use sofi_space as space;
pub use sofi_trace as trace;
pub use sofi_workloads as workloads;

pub mod cli;
mod evaluation;

pub use evaluation::{compare_sampled, sampled_pair, Evaluation};

/// The types most programs need.
pub mod prelude {
    pub use crate::evaluation::Evaluation;
    pub use sofi_campaign::{Campaign, CampaignConfig, Outcome, OutcomeClass, SamplingMode};
    pub use sofi_isa::{Asm, Program, Reg};
    pub use sofi_machine::{Machine, RunStatus};
    pub use sofi_metrics::{
        compare_failures, exact_failures, extrapolated_failures, fault_coverage, Comparison,
        Weighting,
    };
    pub use sofi_space::{DefUseAnalysis, FaultCoord, FaultSpace, InjectionPlan};
    pub use sofi_trace::GoldenRun;
    pub use sofi_workloads::Variant;
}
