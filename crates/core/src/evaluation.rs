//! End-to-end baseline-vs-hardened evaluation.

use sofi_campaign::{Campaign, CampaignConfig, CampaignResult, SampledResult, SamplingMode};
use sofi_isa::Program;
use sofi_metrics::{
    compare_failures, exact_failures, extrapolated_failures, fault_coverage, Comparison, Weighting,
};
use sofi_trace::GoldenError;

/// A completed baseline-vs-hardened comparison: both campaigns' results
/// plus the metric computations, correct and (for demonstration) wrong.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Full-scan result of the baseline variant.
    pub baseline: CampaignResult,
    /// Full-scan result of the hardened variant.
    pub hardened: CampaignResult,
}

impl Evaluation {
    /// Runs full def/use fault-space scans on both variants.
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError`] if either program's fault-free run fails.
    pub fn full_scan(baseline: &Program, hardened: &Program) -> Result<Evaluation, GoldenError> {
        Self::full_scan_with_config(baseline, hardened, CampaignConfig::default())
    }

    /// [`Evaluation::full_scan`] with explicit campaign parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError`] if either program's fault-free run fails.
    pub fn full_scan_with_config(
        baseline: &Program,
        hardened: &Program,
        config: CampaignConfig,
    ) -> Result<Evaluation, GoldenError> {
        let cb = Campaign::with_config(baseline, config)?;
        let ch = Campaign::with_config(hardened, config)?;
        Ok(Evaluation {
            baseline: cb.run_full_defuse(),
            hardened: ch.run_full_defuse(),
        })
    }

    /// The paper's sound comparison: `r = F_hardened / F_baseline`
    /// over weighted absolute failure counts (`r < 1` ⇔ improvement).
    ///
    /// # Panics
    ///
    /// Panics if the baseline has zero failures (ratio undefined).
    pub fn comparison(&self) -> Comparison {
        compare_failures(
            &exact_failures(&self.baseline),
            &exact_failures(&self.hardened),
        )
    }

    /// Fault coverages `(baseline, hardened)` — **not** a valid comparison
    /// metric (Pitfall 3); exposed for demonstrating exactly that.
    pub fn coverages(&self, weighting: Weighting) -> (f64, f64) {
        (
            fault_coverage(&self.baseline, weighting),
            fault_coverage(&self.hardened, weighting),
        )
    }

    /// Weighted absolute failure counts `(baseline, hardened)`.
    pub fn failure_counts(&self) -> (u64, u64) {
        (
            self.baseline.failure_weight(),
            self.hardened.failure_weight(),
        )
    }
}

/// Compares two independently obtained sampling campaigns by extrapolated
/// failure counts (§V-C, avoiding Pitfall 3's corollaries). The sample
/// sizes may differ — extrapolation normalizes them.
///
/// # Panics
///
/// Panics if either sample is empty or the baseline extrapolates to zero
/// failures.
pub fn compare_sampled(
    baseline: &SampledResult,
    hardened: &SampledResult,
    confidence: f64,
) -> Comparison {
    compare_failures(
        &extrapolated_failures(baseline, confidence),
        &extrapolated_failures(hardened, confidence),
    )
}

/// Convenience re-run of a pair of sampling campaigns with a common setup.
///
/// # Errors
///
/// Returns [`GoldenError`] if either program's fault-free run fails.
pub fn sampled_pair<R: sofi_rng::Rng + ?Sized>(
    baseline: &Program,
    hardened: &Program,
    draws: u64,
    mode: SamplingMode,
    rng: &mut R,
) -> Result<(SampledResult, SampledResult), GoldenError> {
    let cb = Campaign::new(baseline)?;
    let ch = Campaign::new(hardened)?;
    Ok((
        cb.run_sampled(draws, mode, rng),
        ch.run_sampled(draws, mode, rng),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_metrics::Weighting;
    use sofi_workloads::{fib, hi, hi_dft, hi_dft_prime, Variant};

    #[test]
    fn dilution_fools_coverage_but_not_failure_counts() {
        let eval = Evaluation::full_scan(&hi(), &hi_dft(4)).unwrap();
        let (cb, ch) = eval.coverages(Weighting::Weighted);
        assert_eq!(cb, 0.625);
        assert_eq!(ch, 0.75);
        assert_eq!(eval.failure_counts(), (48, 48));
        let cmp = eval.comparison();
        assert_eq!(cmp.ratio, 1.0);
        assert!(!cmp.improves());
    }

    #[test]
    fn dft_prime_equally_futile() {
        let eval = Evaluation::full_scan(&hi(), &hi_dft_prime(4)).unwrap();
        let (_, ch) = eval.coverages(Weighting::Weighted);
        assert_eq!(ch, 0.75);
        assert_eq!(eval.comparison().ratio, 1.0);
    }

    #[test]
    fn real_protection_actually_improves() {
        let eval = Evaluation::full_scan(&fib(Variant::Baseline), &fib(Variant::SumDmr)).unwrap();
        let cmp = eval.comparison();
        assert!(
            cmp.improves(),
            "SUM+DMR fib should reduce failures, got r = {}",
            cmp.ratio
        );
    }
}
