//! The `sofi` command-line tool. See [`sofi::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sofi::cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
