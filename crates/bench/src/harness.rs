//! Minimal in-tree wall-clock benchmark harness.
//!
//! A dependency-free stand-in for the subset of the `criterion` API the
//! bench targets use (`benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, throughput annotations and the `criterion_group!` /
//! `criterion_main!` macros). Timing is plain [`std::time::Instant`]
//! around batches of iterations: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the minimum, median and
//! mean time per iteration (plus elements/s when a throughput is set).
//!
//! This keeps `cargo bench --features bench` fully offline; statistical
//! sophistication is explicitly out of scope — the numbers are meant for
//! the relative comparisons in EXPERIMENTS.md, not microbenchmark
//! rigor.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("{name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: 20,
        }
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the in-tree harness
/// always runs one setup per measured iteration, so the variants only
/// exist for criterion source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
    /// One setup per iteration (what this harness always does).
    PerIteration,
}

/// A group of benchmarks sharing throughput/sample-size settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets how many timed samples to take (default 20).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up: run the routine untimed until ~50 ms have elapsed so
        // caches/allocators settle and we learn roughly how long one
        // iteration takes.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warmup_start.elapsed() < Duration::from_millis(50) {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        }
        // Aim for ~10 ms per sample, at least one iteration.
        let iters_per_sample = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = (samples[samples.len() / 2] + samples[(samples.len() - 1) / 2]) / 2.0;
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let mut line = format!(
            "  {id:<24} min {:>10}  median {:>10}  mean {:>10}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                line.push_str(&format!("  {:>12} elem/s", fmt_count(n as f64 / median)));
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                line.push_str(&format!("  {:>12} B/s", fmt_count(n as f64 / median)));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(self) {
        println!();
    }
}

/// Handed to the benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            elapsed += start.elapsed();
            black_box(out);
        }
        self.elapsed = elapsed;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Declares a bench group function running each target in order
/// (in-tree replacement for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` (in-tree replacement for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn bencher_iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        let mut runs = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |s| {
                runs += 1;
                s
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_count(1.5e9), "1.50G");
        assert_eq!(fmt_count(1.5e6), "1.50M");
        assert_eq!(fmt_count(1.5e3), "1.50k");
        assert_eq!(fmt_count(15.0), "15");
    }
}
