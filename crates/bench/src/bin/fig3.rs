//! Figure 3 and §IV: the "Hi" benchmark and the Fault-Space Dilution
//! Delusion.
//!
//! Runs full fault-space scans of the 8-instruction "Hi" program and its
//! DFT (NOP-diluted) and DFT′ (load-diluted) variants, reproducing the
//! §IV numbers: coverage rises from 62.5 % to 75.0 % (and arbitrarily
//! further with more padding) while the absolute failure count stays at
//! exactly 48 — the proof that coverage cannot compare programs.

use sofi::campaign::Campaign;
use sofi::metrics::{fault_coverage, Weighting};
use sofi::report::outcome_diagram;
use sofi::workloads::{hi, hi_dft, hi_dft_prime};
use sofi_bench::save_artifact;

struct Fig3Row {
    variant: String,
    fault_space: u64,
    failures_weighted: u64,
    coverage: f64,
}
sofi::report::impl_to_json!(Fig3Row {
    variant,
    fault_space,
    failures_weighted,
    coverage
});

fn scan(program: &sofi::isa::Program, draw: bool) -> Fig3Row {
    let campaign = Campaign::new(program).expect("golden run");
    let result = campaign.run_full_defuse();
    if draw {
        println!(
            "{}",
            outcome_diagram(campaign.analysis(), &result).expect("small space")
        );
    }
    Fig3Row {
        variant: program.name.clone(),
        fault_space: result.space.size(),
        failures_weighted: result.failure_weight(),
        coverage: fault_coverage(&result, Weighting::Weighted),
    }
}

fn main() {
    println!("== Figure 3a: the \"Hi\" benchmark (x = failing class member) ==");
    let base = scan(&hi(), true);
    println!("== Figure 3b: \"Hi\" + DFT (4 NOPs prepended) ==");
    let dft = scan(&hi_dft(4), true);
    println!("== \"Hi\" + DFT' (4 discarded loads prepended, §IV-B) ==");
    let dft_p = scan(&hi_dft_prime(4), true);

    let mut rows = vec![base, dft, dft_p];
    // Coverage can be pushed arbitrarily close to 100 % (§IV-B).
    for nops in [16, 64, 256] {
        rows.push(scan(&hi_dft(nops), false));
    }

    println!("== §IV: the numbers ==");
    let mut t = sofi::report::Table::new(vec!["variant", "w", "F", "coverage"]);
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            r.fault_space.to_string(),
            r.failures_weighted.to_string(),
            format!("{:.2}%", r.coverage * 100.0),
        ]);
    }
    println!("{t}");

    assert!(
        rows.iter().all(|r| r.failures_weighted == 48),
        "dilution must never change the absolute failure count"
    );
    println!("=> every variant fails in exactly F = 48 coordinates;");
    println!("   the coverage 'improvement' is pure fault-space dilution.");

    save_artifact("fig3.json", &rows);
}
