//! Ablation: where does hardening flip from win to loss?
//!
//! The paper's sync2 worsens because the protection's runtime overhead
//! inflates the exposure of data the mechanism does not cover. This
//! experiment sweeps the overhead knob — a per-pass scrub pool added to
//! the (normally winning) hardened bin_sem2 — and locates the *crossover*
//! where `r = F_hardened / F_baseline` passes 1: to the left the
//! protection pays off, to the right it is a net loss, while the (bogus)
//! coverage verdict stays "improved" across the whole sweep.

use sofi::campaign::Campaign;
use sofi::metrics::{fault_coverage, Weighting};
use sofi::report::{bar_chart, Table};
use sofi::workloads::{bin_sem2_param, Variant};
use sofi_bench::save_artifact;

struct SweepRow {
    scrub_pool: usize,
    runtime_ratio: f64,
    r: f64,
    coverage_baseline: f64,
    coverage_hardened: f64,
    coverage_says_improved: bool,
}
sofi::report::impl_to_json!(SweepRow {
    scrub_pool,
    runtime_ratio,
    r,
    coverage_baseline,
    coverage_hardened,
    coverage_says_improved
});

fn main() {
    let baseline = bin_sem2_param(Variant::Baseline, 0);
    let cb = Campaign::new(&baseline).expect("golden run");
    let fb = cb.run_full_defuse();
    let f_base = fb.failure_weight() as f64;
    let c_base = fault_coverage(&fb, Weighting::Weighted);

    let mut rows = Vec::new();
    for scrub_pool in [0usize, 1, 2, 4, 8, 16, 24, 32] {
        eprintln!("scrub pool {scrub_pool} ...");
        let hardened = bin_sem2_param(Variant::SumDmr, scrub_pool);
        let ch = Campaign::new(&hardened).expect("golden run");
        let fh = ch.run_full_defuse();
        rows.push(SweepRow {
            scrub_pool,
            runtime_ratio: ch.golden().cycles as f64 / cb.golden().cycles as f64,
            r: fh.failure_weight() as f64 / f_base,
            coverage_baseline: c_base,
            coverage_hardened: fault_coverage(&fh, Weighting::Weighted),
            coverage_says_improved: fault_coverage(&fh, Weighting::Weighted) > c_base,
        });
    }

    println!("== crossover sweep: bin_sem2 SUM+DMR with growing scrub overhead ==");
    let mut t = Table::new(vec![
        "scrub pool",
        "runtime x",
        "r = F_h/F_b",
        "c_hardened",
        "coverage verdict",
        "true verdict",
    ]);
    for r in &rows {
        t.row(vec![
            r.scrub_pool.to_string(),
            format!("{:.2}", r.runtime_ratio),
            format!("{:.3}", r.r),
            format!("{:.1}%", r.coverage_hardened * 100.0),
            if r.coverage_says_improved {
                "improved"
            } else {
                "worsened"
            }
            .into(),
            if r.r < 1.0 { "improves" } else { "WORSENS" }.into(),
        ]);
    }
    println!("{t}");
    println!(
        "(baseline coverage: {:.1}%)",
        rows[0].coverage_baseline * 100.0
    );

    println!("r vs overhead:");
    println!(
        "{}",
        bar_chart(
            &rows
                .iter()
                .map(|r| (format!("pool {:>2}", r.scrub_pool), r.r))
                .collect::<Vec<_>>(),
            50
        )
    );

    let crossover = rows.windows(2).find(|w| w[0].r < 1.0 && w[1].r >= 1.0);
    match crossover {
        Some(w) => println!(
            "crossover between pool sizes {} and {} (runtime x{:.2} → x{:.2})",
            w[0].scrub_pool, w[1].scrub_pool, w[0].runtime_ratio, w[1].runtime_ratio
        ),
        None => println!("no crossover inside the sweep range"),
    }
    println!("The coverage metric calls every point an improvement; the absolute");
    println!("failure count locates exactly where the mechanism stops paying off.");

    save_artifact("crossover.json", &rows);
}
