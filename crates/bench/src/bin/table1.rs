//! Table I: Poisson probabilities for k = 0, 1, 2, ... independent faults
//! hitting one benchmark run.
//!
//! Parameters follow §III-A: soft-error rate g from the mean of three
//! published DRAM FIT rates (0.057 FIT/Mbit), benchmark runtime
//! Δt = 1 s (10⁹ cycles at the 1 GHz model CPU), memory usage
//! Δm = 1 MiB.

use sofi::metrics::{poisson::fit_per_mbit_to_per_bit_ns, table1, MEAN_FIT_PER_MBIT};
use sofi::report::Table;
use sofi_bench::save_artifact;

fn main() {
    let g = fit_per_mbit_to_per_bit_ns(MEAN_FIT_PER_MBIT);
    println!("soft-error rate: {MEAN_FIT_PER_MBIT:.3} FIT/Mbit  =>  g = {g:.3e} / (ns * bit)");
    println!("benchmark: Delta_t = 1e9 cycles, Delta_m = 1 MiB = 2^23 bit");
    println!();

    let rows = table1(5);
    let mut t = Table::new(vec!["k", "P(k Faults)"]);
    for r in &rows {
        t.row(vec![r.k.to_string(), format!("{:.3e}", r.probability)]);
    }
    println!("== Table I ==");
    println!("{t}");
    println!(
        "P(>=2 faults) / P(1 fault) = {:.3e}  — single-fault injection is justified (§III-A)",
        rows[2..].iter().map(|r| r.probability).sum::<f64>() / rows[1].probability
    );

    save_artifact("table1.json", &rows);
}
