//! Figure 2: FI result interpretation with and without avoidance of
//! Pitfalls 1 and 3, on the `bin_sem2` and `sync2` benchmark pairs.
//!
//! Regenerates all seven panels:
//! (a) unweighted fault coverage, (b) weighted fault coverage,
//! (c) sampled coverage with 95 % confidence intervals,
//! (d) unweighted failure counts, (e) weighted failure counts,
//! (f) extrapolated failure counts from sampling,
//! (g) runtime and memory usage.

use sofi::metrics::{extrapolated_failures, fault_coverage, sampled_coverage, Weighting};
use sofi::report::{bar_chart, Table};
use sofi_bench::{evaluate, pct, save_artifact, EvaluatedVariant};

const SAMPLE_DRAWS: u64 = 20_000;

struct PanelRow {
    variant: String,
    unweighted_coverage: f64,
    weighted_coverage: f64,
    sampled_coverage: f64,
    sampled_coverage_ci: (f64, f64),
    unweighted_failures: u64,
    weighted_failures: u64,
    extrapolated_failures: f64,
    extrapolated_ci: (f64, f64),
    runtime_cycles: u64,
    ram_bytes: u64,
}
sofi::report::impl_to_json!(PanelRow {
    variant,
    unweighted_coverage,
    weighted_coverage,
    sampled_coverage,
    sampled_coverage_ci,
    unweighted_failures,
    weighted_failures,
    extrapolated_failures,
    extrapolated_ci,
    runtime_cycles,
    ram_bytes
});

fn row(v: &EvaluatedVariant) -> PanelRow {
    let est = sampled_coverage(&v.sampled, 0.95);
    let f_est = extrapolated_failures(&v.sampled, 0.95);
    PanelRow {
        variant: v.name.clone(),
        unweighted_coverage: fault_coverage(&v.full, Weighting::Unweighted),
        weighted_coverage: fault_coverage(&v.full, Weighting::Weighted),
        sampled_coverage: est.coverage,
        sampled_coverage_ci: est.ci,
        unweighted_failures: v.full.failure_raw(),
        weighted_failures: v.full.failure_weight(),
        extrapolated_failures: f_est.failures,
        extrapolated_ci: f_est.ci,
        runtime_cycles: v.stats.cycles,
        ram_bytes: v.stats.ram_bits / 8,
    }
}

fn main() {
    let pairs = sofi::workloads::benchmark_pairs();
    let mut rows = Vec::new();
    for (name, base, hard) in &pairs {
        if !matches!(*name, "bin_sem2" | "sync2") {
            continue; // Figure 2 uses the two eCos benchmarks
        }
        eprintln!("running campaigns for {name} ...");
        rows.push(row(&evaluate(base, SAMPLE_DRAWS, 0xF162)));
        rows.push(row(&evaluate(hard, SAMPLE_DRAWS, 0xF162)));
    }

    println!("== Figure 2(a): fault coverage, UNWEIGHTED (Pitfall 1 committed) ==");
    println!(
        "{}",
        bar_chart(
            &rows
                .iter()
                .map(|r| (r.variant.clone(), r.unweighted_coverage * 100.0))
                .collect::<Vec<_>>(),
            50
        )
    );

    println!("== Figure 2(b): fault coverage, WEIGHTED (Pitfall 1 avoided) ==");
    println!(
        "{}",
        bar_chart(
            &rows
                .iter()
                .map(|r| (r.variant.clone(), r.weighted_coverage * 100.0))
                .collect::<Vec<_>>(),
            50
        )
    );

    println!("== Figure 2(c): sampled coverage estimate, 95% CI ({SAMPLE_DRAWS} draws) ==");
    let mut t = Table::new(vec!["variant", "coverage", "95% CI"]);
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            pct(r.sampled_coverage),
            format!(
                "[{}, {}]",
                pct(r.sampled_coverage_ci.0),
                pct(r.sampled_coverage_ci.1)
            ),
        ]);
    }
    println!("{t}");

    println!("== Figure 2(d): failure counts, UNWEIGHTED (wrong) ==");
    println!(
        "{}",
        bar_chart(
            &rows
                .iter()
                .map(|r| (r.variant.clone(), r.unweighted_failures as f64))
                .collect::<Vec<_>>(),
            50
        )
    );

    println!("== Figure 2(e): failure counts, WEIGHTED (the paper's sound metric) ==");
    println!(
        "{}",
        bar_chart(
            &rows
                .iter()
                .map(|r| (r.variant.clone(), r.weighted_failures as f64))
                .collect::<Vec<_>>(),
            50
        )
    );

    println!("== Figure 2(f): extrapolated failure counts from sampling ==");
    let mut t = Table::new(vec!["variant", "F_extrapolated", "95% CI"]);
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            format!("{:.0}", r.extrapolated_failures),
            format!("[{:.0}, {:.0}]", r.extrapolated_ci.0, r.extrapolated_ci.1),
        ]);
    }
    println!("{t}");

    println!("== Figure 2(g): runtime and memory usage ==");
    let mut t = Table::new(vec!["variant", "runtime [cycles]", "memory [bytes]"]);
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            r.runtime_cycles.to_string(),
            r.ram_bytes.to_string(),
        ]);
    }
    println!("{t}");

    // The §V-B verdicts.
    println!("== Comparison ratios r = F_hardened / F_baseline (r < 1 improves) ==");
    let mut t = Table::new(vec!["benchmark", "r (weighted full scan)", "verdict"]);
    for pair in rows.chunks(2) {
        let (b, h) = (&pair[0], &pair[1]);
        let r = h.weighted_failures as f64 / b.weighted_failures as f64;
        t.row(vec![
            b.variant.clone(),
            format!("{r:.3}"),
            if r < 1.0 { "improves" } else { "WORSENS" }.into(),
        ]);
    }
    println!("{t}");

    save_artifact("fig2.json", &rows);
}
