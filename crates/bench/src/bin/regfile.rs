//! §VI-B: extending the fault space to the CPU register file.
//!
//! Runs full def/use scans of both domains — main memory and the
//! general-purpose register file — for every benchmark pair, and compares
//! susceptibility per domain. The methodology (pruning, weighting,
//! absolute failure counts) carries over unchanged; only the location
//! axis differs, exactly as the paper's generalization argues.

use sofi::campaign::Campaign;
use sofi::metrics::{fault_coverage, Weighting};
use sofi::report::Table;
use sofi_bench::save_artifact;

struct DomainRow {
    variant: String,
    mem_space: u64,
    mem_failures: u64,
    mem_coverage: f64,
    reg_space: u64,
    reg_failures: u64,
    reg_coverage: f64,
}
sofi::report::impl_to_json!(DomainRow {
    variant,
    mem_space,
    mem_failures,
    mem_coverage,
    reg_space,
    reg_failures,
    reg_coverage
});

fn main() {
    let mut rows = Vec::new();
    for (name, base, hard) in sofi::workloads::benchmark_pairs() {
        if name == "sync2" {
            // sync2's hardened register plan is large; keep the demo fast.
        }
        for program in [base, hard] {
            eprintln!("scanning {} (memory + registers) ...", program.name);
            let campaign = Campaign::new(&program).expect("golden run");
            let mem = campaign.run_full_defuse();
            let reg = campaign.run_full_defuse_registers();
            rows.push(DomainRow {
                variant: program.name.clone(),
                mem_space: mem.space.size(),
                mem_failures: mem.failure_weight(),
                mem_coverage: fault_coverage(&mem, Weighting::Weighted),
                reg_space: reg.space.size(),
                reg_failures: reg.failure_weight(),
                reg_coverage: fault_coverage(&reg, Weighting::Weighted),
            });
        }
    }

    println!("== §VI-B: memory vs register-file susceptibility (weighted full scans) ==");
    let mut t = Table::new(vec![
        "variant",
        "F_mem",
        "c_mem",
        "F_reg",
        "c_reg",
        "F_reg/F_mem",
    ]);
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            r.mem_failures.to_string(),
            format!("{:.1}%", r.mem_coverage * 100.0),
            r.reg_failures.to_string(),
            format!("{:.1}%", r.reg_coverage * 100.0),
            format!(
                "{:.3}",
                r.reg_failures as f64 / r.mem_failures.max(1) as f64
            ),
        ]);
    }
    println!("{t}");

    // The §V comparison works identically in the register domain.
    println!("== hardening verdicts per domain (r = F_hardened / F_baseline) ==");
    let mut t = Table::new(vec!["benchmark", "r (memory)", "r (registers)"]);
    for pair in rows.chunks(2) {
        let (b, h) = (&pair[0], &pair[1]);
        t.row(vec![
            b.variant.clone(),
            format!(
                "{:.3}",
                h.mem_failures as f64 / b.mem_failures.max(1) as f64
            ),
            format!(
                "{:.3}",
                h.reg_failures as f64 / b.reg_failures.max(1) as f64
            ),
        ]);
    }
    println!("{t}");
    println!("Memory-targeting mechanisms (SUM+DMR) do not cover register faults;");
    println!("their register-domain ratio reflects only the runtime overhead.");

    save_artifact("regfile.json", &rows);
}
