//! §III-D: data lifetimes and the size of the weighting bias.
//!
//! "The results are extremely skewed depending on the amount of memory
//! accesses the benchmark executes, and the variance in memory-data
//! lifetimes." This experiment quantifies that: for every benchmark it
//! prints the lifetime distribution of its def/use classes and the
//! resulting gap between unweighted and weighted fault coverage.

use sofi::campaign::Campaign;
use sofi::metrics::{fault_coverage, Weighting};
use sofi::report::{bar_chart, Table};
use sofi_bench::save_artifact;

struct LifetimeRow {
    benchmark: String,
    classes: u64,
    min: u64,
    median: f64,
    max: u64,
    mean: f64,
    std_dev: f64,
    coverage_gap_pp: f64,
}
sofi::report::impl_to_json!(LifetimeRow {
    benchmark,
    classes,
    min,
    median,
    max,
    mean,
    std_dev,
    coverage_gap_pp
});

fn main() {
    let mut rows = Vec::new();
    let mut histogram_demo = None;
    for program in sofi::workloads::all_baselines() {
        eprintln!("analyzing {} ...", program.name);
        let campaign = Campaign::new(&program).expect("golden run");
        let stats = campaign.analysis().lifetime_stats();
        let result = campaign.run_full_defuse();
        let gap = (fault_coverage(&result, Weighting::Weighted)
            - fault_coverage(&result, Weighting::Unweighted))
            * 100.0;
        if program.name == "bin_sem2" {
            histogram_demo = Some(stats.clone());
        }
        rows.push(LifetimeRow {
            benchmark: program.name.clone(),
            classes: stats.classes,
            min: stats.min,
            median: stats.median,
            max: stats.max,
            mean: stats.mean,
            std_dev: stats.std_dev,
            coverage_gap_pp: gap,
        });
    }

    println!("== §III-D: data-lifetime distributions and the weighting bias ==");
    let mut t = Table::new(vec![
        "benchmark",
        "classes",
        "min",
        "median",
        "max",
        "mean",
        "std dev",
        "cov gap [pp]",
    ]);
    for r in &rows {
        t.row(vec![
            r.benchmark.clone(),
            r.classes.to_string(),
            r.min.to_string(),
            format!("{:.1}", r.median),
            r.max.to_string(),
            format!("{:.1}", r.mean),
            format!("{:.1}", r.std_dev),
            format!("{:+.1}", r.coverage_gap_pp),
        ]);
    }
    println!("{t}");

    if let Some(stats) = histogram_demo {
        println!("lifetime histogram, bin_sem2 (log2 buckets of cycles):");
        let bars: Vec<(String, f64)> = stats
            .histogram
            .iter()
            .enumerate()
            .take_while(|&(k, _)| stats.histogram[k..].iter().any(|&c| c > 0))
            .map(|(k, &c)| (format!("2^{k:<2}"), c as f64))
            .collect();
        println!("{}", bar_chart(&bars, 50));
    }

    println!("Benchmarks whose lifetimes span orders of magnitude (large std dev,");
    println!("max >> median) show the biggest unweighted-vs-weighted coverage gaps —");
    println!("exactly the correlation §III-D describes.");

    save_artifact("lifetimes.json", &rows);
}
