//! §VIII future work: multi-bit (burst) faults.
//!
//! Extends the single-bit model to adjacent multi-bit upsets and measures
//! how extrapolated absolute failure counts grow with burst width — and
//! whether hardening verdicts survive the fault-model change. SUM+DMR
//! detects any corruption *within one protected word*, so bursts that stay
//! inside a word are still corrected; bursts straddling a replica boundary
//! can defeat it.

use sofi::campaign::Campaign;
use sofi::report::Table;
use sofi::workloads::{bin_sem2, fib, Variant};
use sofi_bench::save_artifact;

const DRAWS: u64 = 25_000;

struct BurstRow {
    benchmark: String,
    width: u32,
    failure_fraction: f64,
    extrapolated_failures: f64,
}
sofi::report::impl_to_json!(BurstRow {
    benchmark,
    width,
    failure_fraction,
    extrapolated_failures
});

fn main() {
    let mut rows = Vec::new();
    let programs = [
        fib(Variant::Baseline),
        fib(Variant::SumDmr),
        bin_sem2(Variant::Baseline),
        bin_sem2(Variant::SumDmr),
    ];
    for program in &programs {
        eprintln!("burst-sampling {} ...", program.name);
        let campaign = Campaign::new(program).expect("golden run");
        for width in [1u32, 2, 4, 8] {
            let mut rng = sofi_rng::DefaultRng::seed_from_u64(0xB0B5);
            let b = campaign.run_burst_sampled(DRAWS, width, &mut rng);
            rows.push(BurstRow {
                benchmark: program.name.clone(),
                width,
                failure_fraction: b.failure_draws as f64 / b.draws as f64,
                extrapolated_failures: b.extrapolated_failures(),
            });
        }
    }

    println!("== burst faults: failure fraction and extrapolated F by width ==");
    let mut t = Table::new(vec!["benchmark", "width", "P(fail)", "F_extrapolated"]);
    for r in &rows {
        t.row(vec![
            r.benchmark.clone(),
            r.width.to_string(),
            format!("{:.4}", r.failure_fraction),
            format!("{:.0}", r.extrapolated_failures),
        ]);
    }
    println!("{t}");

    println!("== hardening verdicts per fault model (r = F_h / F_b) ==");
    let mut t = Table::new(vec!["benchmark", "w=1", "w=2", "w=4", "w=8"]);
    for pair in rows.chunks(8) {
        let (b, h) = (&pair[..4], &pair[4..]);
        t.row(vec![
            b[0].benchmark.clone(),
            format!(
                "{:.3}",
                h[0].extrapolated_failures / b[0].extrapolated_failures.max(1.0)
            ),
            format!(
                "{:.3}",
                h[1].extrapolated_failures / b[1].extrapolated_failures.max(1.0)
            ),
            format!(
                "{:.3}",
                h[2].extrapolated_failures / b[2].extrapolated_failures.max(1.0)
            ),
            format!(
                "{:.3}",
                h[3].extrapolated_failures / b[3].extrapolated_failures.max(1.0)
            ),
        ]);
    }
    println!("{t}");
    println!("Failure mass grows with burst width; the sound comparison (extrapolated");
    println!("absolute counts) transfers to the wider fault model unchanged.");

    save_artifact("burst.json", &rows);
}
