//! Diagnostic: per-byte vulnerability hotspots of a benchmark variant.
//!
//! Usage: `vulnmap [benchmark]` where benchmark is one of the suite names
//! (default: all Figure 2 variants). Prints each RAM byte's weighted
//! failure fraction with its data-section symbol, highest first.

use sofi::campaign::Campaign;
use sofi::isa::Program;
use sofi::metrics::byte_vulnerability;
use sofi::report::Table;
use sofi::workloads::{bin_sem2, sync2, Variant};

fn symbol_for(program: &Program, addr: u32) -> String {
    // The symbol with the greatest address <= addr.
    let mut best: Option<(&str, u32)> = None;
    for (name, a) in &program.symbols {
        if *a <= addr && best.is_none_or(|(_, b)| *a >= b) {
            best = Some((name, *a));
        }
    }
    match best {
        Some((name, a)) => format!("{name}+{}", addr - a),
        None => "?".into(),
    }
}

fn report(program: &Program) {
    let campaign = Campaign::new(program).expect("golden run");
    let result = campaign.run_full_defuse();
    let map = byte_vulnerability(&result);
    println!(
        "== {} (F_weighted = {}, w = {}) ==",
        program.name,
        result.failure_weight(),
        result.space.size()
    );
    let mut t = Table::new(vec!["addr", "symbol", "vulnerability", "failure weight"]);
    for (addr, v) in map.hotspots().into_iter().take(30) {
        if v == 0.0 {
            break;
        }
        let fail_w = (v * 8.0 * result.space.cycles as f64).round() as u64;
        t.row(vec![
            format!("{addr:#06x}"),
            symbol_for(program, addr),
            format!("{v:.3}"),
            fail_w.to_string(),
        ]);
    }
    println!("{t}");
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all: Vec<Program> = vec![
        bin_sem2(Variant::Baseline),
        bin_sem2(Variant::SumDmr),
        sync2(Variant::Baseline),
        sync2(Variant::SumDmr),
    ];
    for p in all {
        if which.is_empty() || which.iter().any(|w| p.name.contains(w)) {
            report(&p);
        }
    }
}
