//! §V summary: comparison ratios r = F_hardened / F_baseline for every
//! benchmark pair, computed from full scans and — to validate Pitfall 3's
//! corollaries — re-estimated from sampling with *different* sample sizes
//! per variant (extrapolation makes them comparable anyway).

use sofi::campaign::{Campaign, SamplingMode};
use sofi::metrics::{compare_failures, exact_failures, extrapolated_failures};
use sofi::report::Table;
use sofi_bench::save_artifact;
use sofi_rng::DefaultRng;

struct SummaryRow {
    benchmark: String,
    f_baseline: u64,
    f_hardened: u64,
    ratio_full_scan: f64,
    ratio_sampled: f64,
    ratio_sampled_ci: (f64, f64),
    improves: bool,
}
sofi::report::impl_to_json!(SummaryRow {
    benchmark,
    f_baseline,
    f_hardened,
    ratio_full_scan,
    ratio_sampled,
    ratio_sampled_ci,
    improves
});

fn main() {
    let mut rows = Vec::new();
    let mut exec_rows = Vec::new();
    for (name, base, hard) in sofi::workloads::benchmark_pairs() {
        eprintln!("evaluating {name} ...");
        let cb = Campaign::new(&base).expect("golden run");
        let ch = Campaign::new(&hard).expect("golden run");
        let (fb, sb_stats) = cb.run_full_defuse_stats();
        let (fh, sh_stats) = ch.run_full_defuse_stats();
        exec_rows.push((format!("{name} (base)"), sb_stats));
        exec_rows.push((format!("{name} (hard)"), sh_stats));
        let exact = compare_failures(&exact_failures(&fb), &exact_failures(&fh));

        // Deliberately different sample sizes: extrapolation (Pitfall 3,
        // Corollary 2) makes the counts comparable regardless.
        let mut rng = DefaultRng::seed_from_u64(0x5EED);
        let sb = cb.run_sampled(30_000, SamplingMode::UniformRaw, &mut rng);
        let sh = ch.run_sampled(80_000, SamplingMode::UniformRaw, &mut rng);
        let sampled = compare_failures(
            &extrapolated_failures(&sb, 0.95),
            &extrapolated_failures(&sh, 0.95),
        );

        rows.push(SummaryRow {
            benchmark: name.to_string(),
            f_baseline: fb.failure_weight(),
            f_hardened: fh.failure_weight(),
            ratio_full_scan: exact.ratio,
            ratio_sampled: sampled.ratio,
            ratio_sampled_ci: sampled.ci,
            improves: exact.improves(),
        });
    }

    println!("== §V: r = F_hardened / F_baseline (r < 1 <=> hardening improves) ==");
    let mut t = Table::new(vec![
        "benchmark",
        "F_base",
        "F_hard",
        "r (exact)",
        "r (sampled)",
        "95% CI",
        "verdict",
    ]);
    for r in &rows {
        t.row(vec![
            r.benchmark.clone(),
            r.f_baseline.to_string(),
            r.f_hardened.to_string(),
            format!("{:.3}", r.ratio_full_scan),
            format!("{:.3}", r.ratio_sampled),
            format!("[{:.2}, {:.2}]", r.ratio_sampled_ci.0, r.ratio_sampled_ci.1),
            if r.improves { "improves" } else { "WORSENS" }.to_string(),
        ]);
    }
    println!("{t}");
    println!("The fault-coverage metric would have called every variant an improvement;");
    println!("the absolute-failure-count metric exposes the ones that are not (§V-B).");

    println!();
    println!("== Executor counters (full def/use scans, convergence + memoization on) ==");
    let mut e = Table::new(vec![
        "campaign",
        "experiments",
        "pristine cyc",
        "faulted cyc",
        "early-term",
        "cyc saved",
        "memo hits",
        "memo misses",
        "memo cyc saved",
    ]);
    for (name, s) in &exec_rows {
        e.row(vec![
            name.clone(),
            s.experiments.to_string(),
            s.pristine_cycles.to_string(),
            s.faulted_cycles.to_string(),
            format!(
                "{} ({:.0}%)",
                s.converged_early,
                s.early_termination_rate() * 100.0
            ),
            s.faulted_cycles_saved.to_string(),
            format!("{} ({:.0}%)", s.memo_hits, s.memo_hit_rate() * 100.0),
            s.memo_misses.to_string(),
            s.memoized_cycles_saved.to_string(),
        ]);
    }
    println!("{e}");

    save_artifact("summary.json", &rows);
}
