//! Pitfall 2: biased sampling.
//!
//! When def/use pruning and sampling are combined, the samples must be
//! drawn from the *raw* fault space (or weight-proportionally from the
//! classes). Drawing uniformly from the pruned class list ignores the
//! class weights and skews every estimate whenever class size correlates
//! with outcome.
//!
//! Two demonstrations:
//! 1. a purpose-built benchmark with strong correlation — long-lived data
//!    whose corruption always fails, plus a mass of short-lived scratch
//!    accesses whose corruption is always masked: the biased sampler is
//!    off by an order of magnitude;
//! 2. the `bin_sem2` baseline, where the correlation happens to be weak
//!    and the bias is correspondingly small — showing the pitfall is
//!    workload-dependent and therefore treacherous.

use sofi::campaign::{Campaign, SamplingMode};
use sofi::isa::{Asm, Program, Reg};
use sofi::report::Table;
use sofi::workloads::{bin_sem2, Variant};
use sofi_bench::save_artifact;
use sofi_rng::DefaultRng;

const DRAWS: u64 = 50_000;

/// A benchmark with maximal weight/outcome correlation: four config
/// bytes live untouched until a final read-and-print (long, failing
/// classes), while a scratch word is written and re-read hundreds of
/// times with the value discarded (short, benign classes).
fn skewed_program() -> Program {
    let mut a = Asm::with_name("skewed");
    let config = a.data_bytes("config", &[11, 22, 33, 44]);
    let scratch = a.data_word("scratch", 0);

    a.li(Reg::R4, 100);
    let top = a.label_here();
    a.sw(Reg::R4, Reg::R0, scratch.offset());
    a.lw(Reg::R5, Reg::R0, scratch.offset());
    // The loaded value is discarded: corruption here is always masked.
    a.and(Reg::R5, Reg::R5, Reg::R0);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, top);

    for i in 0..4 {
        a.lbu(Reg::R6, Reg::R0, config.at(i).offset());
        a.serial_out(Reg::R6);
    }
    a.build().expect("skewed benchmark is statically correct")
}

struct Estimate {
    benchmark: String,
    sampler: String,
    failure_fraction: f64,
    truth: f64,
}
sofi::report::impl_to_json!(Estimate {
    benchmark,
    sampler,
    failure_fraction,
    truth
});

fn run_estimates(program: &Program, out: &mut Vec<Estimate>) {
    let campaign = Campaign::new(program).expect("golden run");
    let full = campaign.run_full_defuse();
    let w_prime = campaign.plan().experiment_weight() as f64;
    let truth = full.failure_weight() as f64 / w_prime;

    let mut rng = DefaultRng::seed_from_u64(0xB1A5);
    for (mode, label) in [
        (
            SamplingMode::WeightedClasses,
            "weight-proportional (correct)",
        ),
        (
            SamplingMode::BiasedPerClass,
            "uniform per class (PITFALL 2)",
        ),
    ] {
        let s = campaign.run_sampled(DRAWS, mode, &mut rng);
        out.push(Estimate {
            benchmark: program.name.clone(),
            sampler: label.to_string(),
            failure_fraction: s.failure_hits() as f64 / s.draws as f64,
            truth,
        });
    }
}

fn main() {
    let mut estimates = Vec::new();
    run_estimates(&skewed_program(), &mut estimates);
    run_estimates(&bin_sem2(Variant::Baseline), &mut estimates);

    println!("== Pitfall 2: failure-fraction estimates ({DRAWS} draws each) ==");
    let mut t = Table::new(vec!["benchmark", "sampler", "estimate", "exact", "error"]);
    for e in &estimates {
        t.row(vec![
            e.benchmark.clone(),
            e.sampler.clone(),
            format!("{:.4}", e.failure_fraction),
            format!("{:.4}", e.truth),
            format!("{:+.4}", e.failure_fraction - e.truth),
        ]);
    }
    println!("{t}");

    let biased = &estimates[1];
    println!(
        "skewed benchmark: the biased sampler reports {:.1}% instead of {:.1}% — \
         an estimate off by {:.0}x",
        biased.failure_fraction * 100.0,
        biased.truth * 100.0,
        biased.truth / biased.failure_fraction.max(1e-9)
    );
    println!("bin_sem2: weights and outcomes happen to be nearly uncorrelated, so the");
    println!("same mistake is invisible there — which is what makes it a pitfall.");

    save_artifact("pitfall2.json", &estimates);
}
