//! Figure 1: the fault space spanned by CPU cycles × memory bits, and its
//! def/use equivalence classes.
//!
//! Reproduces the paper's illustrative setting — a 12-cycle run over 9
//! memory bits with an 8-bit store in cycle 4 and a load in cycle 11 —
//! showing how 108 raw coordinates collapse to 8 experiments (§III-C),
//! and then shows the same analysis on the real `sync2` benchmark, whose
//! fault space shrinks from ~10⁶ coordinates to a few thousand
//! experiments.

use sofi::campaign::Campaign;
use sofi::isa::MemWidth;
use sofi::machine::{AccessKind, MemAccess};
use sofi::report::fault_space_diagram;
use sofi::space::DefUseAnalysis;
use sofi::trace::Timelines;
use sofi::workloads::{sync2, Variant};
use sofi_bench::save_artifact;

struct Fig1Stats {
    raw_fault_space: u64,
    experiments_after_pruning: usize,
    known_benign_weight: u64,
    reduction_factor: f64,
}
sofi::report::impl_to_json!(Fig1Stats {
    raw_fault_space,
    experiments_after_pruning,
    known_benign_weight,
    reduction_factor
});

fn stats(analysis: &DefUseAnalysis) -> Fig1Stats {
    let plan = analysis.plan();
    Fig1Stats {
        raw_fault_space: analysis.space.size(),
        experiments_after_pruning: plan.experiments.len(),
        known_benign_weight: plan.known_benign_weight,
        reduction_factor: plan.reduction_factor(),
    }
}

fn main() {
    // --- Figure 1a/1b: the paper's illustrative 12 × 9 space. ---
    let trace = vec![
        MemAccess {
            cycle: 4,
            addr: 0,
            width: MemWidth::Byte,
            kind: AccessKind::Write,
        },
        MemAccess {
            cycle: 11,
            addr: 0,
            width: MemWidth::Byte,
            kind: AccessKind::Read,
        },
    ];
    let timelines = Timelines::build(&trace, 9);
    let analysis = DefUseAnalysis::from_timelines(&timelines, 12);
    let s = stats(&analysis);

    println!("== Figure 1: 12 cycles x 9 bits, W @ cycle 4, R @ cycle 11 ==");
    println!("{}", fault_space_diagram(&analysis).expect("small space"));
    println!(
        "raw coordinates: {}   experiments after def/use pruning: {}   (x{:.1} reduction)",
        s.raw_fault_space, s.experiments_after_pruning, s.reduction_factor
    );
    println!("each experiment stands for a class of weight 7 (cycles 5..=11)");
    println!();

    // --- The same pruning on a real benchmark (§III-C's sync2 numbers). ---
    let campaign = Campaign::new(&sync2(Variant::Baseline)).expect("golden run");
    let s2 = stats(campaign.analysis());
    println!("== def/use pruning on the real sync2 benchmark ==");
    println!(
        "raw fault-space size w = {}   experiments = {}   reduction factor = {:.0}x",
        s2.raw_fault_space, s2.experiments_after_pruning, s2.reduction_factor
    );
    println!("(the paper reports w ~ 1.5e8 -> 19,553 experiments for its eCos sync2)");

    save_artifact("fig1.json", &[s, s2]);
}
