//! §VI-C: cross-layer comparisons and the invalidity of comparing fault
//! coverages across simulators with different fault-space sizes.
//!
//! Cho et al. and Wei et al. validated high-level FI against low-level
//! simulators and reported errors "by more than an order of magnitude" —
//! measured with the coverage metric over *different* fault-space sizes.
//! The paper suggests much of that error is the metric's fault, not the
//! high-level FI's.
//!
//! We reproduce the setting with two "simulators" for the same program:
//!
//! * **fine** — our cycle-accurate machine: injections possible at every
//!   cycle (fault space `Δt · Δm`);
//! * **coarse** — a model of a higher-level tool that can only pause at
//!   every `k`-th cycle (fault space `(Δt/k) · Δm`, each injection
//!   standing for `k` cycles of exposure).
//!
//! Both observe the *same* physical machine, so the coarse results are
//! derived exactly by restricting the fine scan to granule coordinates.
//! Comparing the two layers by coverage yields large spurious "errors";
//! comparing extrapolated absolute failure counts (each coarse result
//! weighted by its granule) agrees within the aliasing error.

use sofi::campaign::{Campaign, OutcomeClass};
use sofi::space::{ClassIndex, ClassRef, FaultCoord};
use sofi::workloads::{bin_sem2, fib, Variant};
use sofi_bench::save_artifact;
use std::collections::HashMap;

struct LayerRow {
    benchmark: String,
    granule: u64,
    fine_coverage: f64,
    coarse_coverage: f64,
    coverage_error_pp: f64,
    fine_failures: u64,
    coarse_failures_extrapolated: f64,
    failure_ratio: f64,
}
sofi::report::impl_to_json!(LayerRow {
    benchmark,
    granule,
    fine_coverage,
    coarse_coverage,
    coverage_error_pp,
    fine_failures,
    coarse_failures_extrapolated,
    failure_ratio
});

fn evaluate(program: &sofi::isa::Program, granule: u64) -> LayerRow {
    let campaign = Campaign::new(program).expect("golden run");
    let fine = campaign.run_full_defuse();
    let index = ClassIndex::new(campaign.analysis(), campaign.plan());
    let class_of: HashMap<u32, OutcomeClass> = fine
        .results
        .iter()
        .map(|r| (r.experiment.id, r.outcome.class()))
        .collect();

    // The coarse simulator scans cycles k, 2k, 3k, ... — every bit, each
    // result standing for k cycles of exposure.
    let space = campaign.plan().space;
    let mut coarse_fail_points = 0u64;
    let mut coarse_points = 0u64;
    let mut cycle = granule;
    while cycle <= space.cycles {
        for bit in 0..space.bits {
            let class = index.lookup(FaultCoord { cycle, bit });
            let failed = match class {
                ClassRef::Experiment(id) => class_of[&id] == OutcomeClass::Failure,
                ClassRef::KnownBenign => false,
            };
            coarse_points += 1;
            coarse_fail_points += failed as u64;
        }
        cycle += granule;
    }

    let fine_cov = 1.0 - fine.failure_weight() as f64 / space.size() as f64;
    let coarse_cov = 1.0 - coarse_fail_points as f64 / coarse_points as f64;
    // Pitfall-3-aware cross-layer comparison: extrapolate the coarse
    // counts to the *physical* fault space (weight k per coarse point).
    let coarse_f_ext = coarse_fail_points as f64 * granule as f64;

    LayerRow {
        benchmark: program.name.clone(),
        granule,
        fine_coverage: fine_cov,
        coarse_coverage: coarse_cov,
        coverage_error_pp: (coarse_cov - fine_cov) * 100.0,
        fine_failures: fine.failure_weight(),
        coarse_failures_extrapolated: coarse_f_ext,
        failure_ratio: coarse_f_ext / fine.failure_weight().max(1) as f64,
    }
}

fn main() {
    let mut rows = Vec::new();
    for program in [fib(Variant::Baseline), bin_sem2(Variant::Baseline)] {
        for granule in [4u64, 16, 64] {
            eprintln!("evaluating {} at granule {granule} ...", program.name);
            rows.push(evaluate(&program, granule));
        }
    }

    println!("== §VI-C: fine (cycle-accurate) vs coarse (granule-k) simulators ==");
    let mut t = sofi::report::Table::new(vec![
        "benchmark",
        "k",
        "c_fine",
        "c_coarse",
        "cov err [pp]",
        "F_fine",
        "F_coarse_ext",
        "F ratio",
    ]);
    for r in &rows {
        t.row(vec![
            r.benchmark.clone(),
            r.granule.to_string(),
            format!("{:.2}%", r.fine_coverage * 100.0),
            format!("{:.2}%", r.coarse_coverage * 100.0),
            format!("{:+.2}", r.coverage_error_pp),
            r.fine_failures.to_string(),
            format!("{:.0}", r.coarse_failures_extrapolated),
            format!("{:.3}", r.failure_ratio),
        ]);
    }
    println!("{t}");
    println!("Extrapolated absolute failure counts stay near ratio 1 across layers");
    println!("(residual deviation = genuine temporal aliasing of the coarse tool),");
    println!("while raw coverage comparisons mix in the fault-space-size quotient.");

    save_artifact("crosslayer.json", &rows);
}
