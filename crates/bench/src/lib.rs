#![warn(missing_docs)]

//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md for the index).
//!
//! Each binary prints its table/figure to stdout and, when the
//! `SOFI_RESULTS_DIR` environment variable is set, writes a JSON artifact
//! with the underlying numbers into that directory.

pub mod harness;

use sofi::campaign::{Campaign, CampaignResult, SampledResult, SamplingMode};
use sofi::isa::Program;
use sofi::trace::TraceStats;
use std::path::PathBuf;

/// A fully evaluated benchmark variant: full scan + a sampling campaign.
#[derive(Debug)]
pub struct EvaluatedVariant {
    /// Program name.
    pub name: String,
    /// Golden-run statistics (runtime, memory — Figure 2g).
    pub stats: TraceStats,
    /// Full def/use fault-space scan.
    pub full: CampaignResult,
    /// Uniform raw-space sampling campaign.
    pub sampled: SampledResult,
}

/// Runs the standard evaluation pipeline on one program.
///
/// # Panics
///
/// Panics if the program's golden run fails — experiment binaries treat
/// that as a build error.
pub fn evaluate(program: &Program, sample_draws: u64, seed: u64) -> EvaluatedVariant {
    let campaign = Campaign::new(program).expect("golden run must succeed");
    let stats = TraceStats::from_golden(campaign.golden());
    let full = campaign.run_full_defuse();
    let mut rng = sofi_rng::DefaultRng::seed_from_u64(seed);
    let sampled = campaign.run_sampled(sample_draws, SamplingMode::UniformRaw, &mut rng);
    EvaluatedVariant {
        name: program.name.clone(),
        stats,
        full,
        sampled,
    }
}

/// Where JSON artifacts go, if requested via `SOFI_RESULTS_DIR`.
pub fn results_dir() -> Option<PathBuf> {
    std::env::var_os("SOFI_RESULTS_DIR").map(PathBuf::from)
}

/// Writes a JSON artifact when a results directory is configured.
pub fn save_artifact<T: sofi::report::ToJson>(name: &str, value: &T) {
    if let Some(dir) = results_dir() {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        match std::fs::File::create(&path) {
            Ok(f) => {
                if let Err(e) = sofi::report::write_json(value, f) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
        }
    }
}

/// Formats a probability as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_hi_pipeline() {
        let v = evaluate(&sofi::workloads::hi(), 1_000, 1);
        assert_eq!(v.stats.cycles, 8);
        assert_eq!(v.full.failure_weight(), 48);
        assert_eq!(v.sampled.draws, 1_000);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.625), "62.5%");
    }
}
