//! Simulator throughput: instructions per second and machine-fork cost —
//! the two quantities that bound campaign wall-clock time.

use sofi::machine::Machine;
use sofi::workloads::{crc32, matmul, sync2, Variant};
use sofi_bench::harness::{BatchSize, Criterion, Throughput};
use sofi_bench::{criterion_group, criterion_main};

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/execute");
    for program in [crc32(), matmul(), sync2(Variant::Baseline)] {
        let cycles = {
            let mut m = Machine::new(&program);
            m.run(10_000_000);
            m.cycle()
        };
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(program.name.clone(), |b| {
            b.iter_batched(
                || Machine::new(&program),
                |mut m| m.run(10_000_000),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/fork");
    let program = sync2(Variant::SumDmr);
    let mut m = Machine::new(&program);
    m.run_to(1_000);
    group.bench_function("clone_mid_run", |b| b.iter(|| m.clone()));
    group.finish();
}

fn bench_flip(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/flip_bit");
    let program = sync2(Variant::Baseline);
    let m = Machine::new(&program);
    group.bench_function("flip_and_restore", |b| {
        b.iter_batched(
            || m.clone(),
            |mut m| {
                m.flip_bit(64);
                m
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_execution, bench_fork, bench_flip);
criterion_main!(benches);
