//! Sampling-campaign throughput: draw resolution via the class index and
//! end-to-end sampled campaigns.

use sofi::campaign::{Campaign, SamplingMode};
use sofi::space::{sample, ClassIndex};
use sofi::workloads::{bin_sem2, Variant};
use sofi_bench::harness::{Criterion, Throughput};
use sofi_bench::{criterion_group, criterion_main};
use sofi_rng::DefaultRng;

fn bench_draw_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/resolve_draws");
    let campaign = Campaign::new(&bin_sem2(Variant::Baseline)).unwrap();
    let index = ClassIndex::new(campaign.analysis(), campaign.plan());
    let mut rng = DefaultRng::seed_from_u64(7);
    let coords = sample::draw_uniform(campaign.plan().space, 100_000, &mut rng);
    group.throughput(Throughput::Elements(coords.len() as u64));
    group.bench_function("bin_sem2_100k", |b| {
        b.iter(|| sample::resolve_draws(&coords, &index));
    });
    group.finish();
}

fn bench_sampled_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/campaign");
    group.sample_size(10);
    let campaign = Campaign::new(&bin_sem2(Variant::Baseline)).unwrap();
    for mode in [SamplingMode::UniformRaw, SamplingMode::WeightedClasses] {
        group.bench_function(format!("{mode:?}_10k"), |b| {
            b.iter(|| {
                let mut rng = DefaultRng::seed_from_u64(7);
                campaign.run_sampled(10_000, mode, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_draw_resolution, bench_sampled_campaign);
criterion_main!(benches);
