//! Campaign execution throughput: full def/use scans, sequential vs
//! parallel, plus the brute-force scan used for pruning validation.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::workloads::{fib, hi, Variant};
use sofi_bench::harness::{Criterion, Throughput};
use sofi_bench::{criterion_group, criterion_main};

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/full_defuse");
    group.sample_size(10);
    for program in [hi(), fib(Variant::Baseline)] {
        let campaign = Campaign::new(&program).unwrap();
        let experiments = campaign.plan().experiments.len() as u64;
        group.throughput(Throughput::Elements(experiments));
        group.bench_function(program.name.clone(), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/threads");
    group.sample_size(10);
    let program = fib(Variant::Baseline);
    for threads in [1usize, 4] {
        let config = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::with_config(&program, config).unwrap();
        group.bench_function(format!("fib_t{threads}"), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/brute_force");
    group.sample_size(10);
    let campaign = Campaign::new(&hi()).unwrap();
    group.throughput(Throughput::Elements(128));
    group.bench_function("hi_128_coords", |b| b.iter(|| campaign.run_brute_force()));
    group.finish();
}

/// One `BENCH_campaign.json` record: a (workload, domain) ablation over
/// the four executor modes (naive replay, pristine forking, forking +
/// convergence termination, and all of that + fault-equivalence
/// memoization), all sequential so speedups isolate the algorithmic
/// change. The memo timing resets the cache before every sample so it
/// measures a cold-cache campaign, not a warm replay.
struct AblationRow {
    workload: String,
    domain: String,
    experiments: u64,
    golden_cycles: u64,
    naive_secs: f64,
    fork_secs: f64,
    converge_secs: f64,
    memo_secs: f64,
    naive_exp_per_sec: f64,
    fork_exp_per_sec: f64,
    converge_exp_per_sec: f64,
    memo_exp_per_sec: f64,
    speedup_fork_vs_naive: f64,
    speedup_converge_vs_naive: f64,
    speedup_memo_vs_naive: f64,
    pristine_cycles: u64,
    faulted_cycles: u64,
    converged_early: u64,
    faulted_cycles_saved: u64,
    early_termination_rate: f64,
    memo_hits: u64,
    memo_misses: u64,
    memo_hit_rate: f64,
    memoized_cycles_saved: u64,
    telemetry_secs: f64,
    telemetry_overhead_pct: f64,
}
sofi::report::impl_to_json!(AblationRow {
    workload,
    domain,
    experiments,
    golden_cycles,
    naive_secs,
    fork_secs,
    converge_secs,
    memo_secs,
    naive_exp_per_sec,
    fork_exp_per_sec,
    converge_exp_per_sec,
    memo_exp_per_sec,
    speedup_fork_vs_naive,
    speedup_converge_vs_naive,
    speedup_memo_vs_naive,
    pristine_cycles,
    faulted_cycles,
    converged_early,
    faulted_cycles_saved,
    early_termination_rate,
    memo_hits,
    memo_misses,
    memo_hit_rate,
    memoized_cycles_saved,
    telemetry_secs,
    telemetry_overhead_pct
});

/// Minimum wall time of `f` over `samples` runs (plus one warm-up).
fn time_min(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_campaign_ablation(_c: &mut Criterion) {
    // Ablation of the executor optimizations, recorded machine-readably:
    // naive replay-from-zero vs pristine forking vs forking + golden-state
    // convergence termination vs all of that + fault-equivalence outcome
    // memoization. `SOFI_BENCH_SMOKE=1` restricts the sweep to the
    // smallest workload so CI can exercise the whole path in seconds.
    let smoke = std::env::var_os("SOFI_BENCH_SMOKE").is_some();
    let workloads = if smoke {
        vec![hi()]
    } else {
        sofi::workloads::all_baselines()
    };
    let samples = if smoke { 3 } else { 5 };

    println!("campaign/ablation (sequential; times are min of {samples} runs)");
    let mut rows = Vec::new();
    for program in workloads {
        let plain = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                memoization: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let converging = Campaign::with_config(
            &program,
            CampaignConfig {
                memoization: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let memoed = Campaign::with_config(&program, CampaignConfig::sequential()).unwrap();
        // Telemetry-enabled twin of `memoed`: the full optimization stack
        // with every counter/histogram/span record site live. The default
        // (`telemetry: false`) leaves the registry disabled, so `memo_secs`
        // above doubles as the telemetry-disabled baseline — identical
        // config to the pre-telemetry executor except for one never-taken
        // branch per record site.
        let telemetered = Campaign::with_config(
            &program,
            CampaignConfig {
                telemetry: true,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let experiments = match domain {
                FaultDomain::Memory => &plain.plan().experiments,
                FaultDomain::RegisterFile => &plain.register_plan().experiments,
            };
            let naive_secs = time_min(samples, || {
                drop(plain.run_experiments_naive(domain, experiments))
            });
            let fork_secs = time_min(samples, || {
                drop(plain.run_experiments_stats(domain, experiments))
            });
            let converge_secs = time_min(samples, || {
                drop(converging.run_experiments_stats(domain, experiments))
            });
            let memo_secs = time_min(samples, || {
                // Cold-cache timing: the memo survives between samples
                // (and between domains) otherwise, which would measure a
                // warm replay instead of a fresh campaign.
                memoed.reset_memo();
                drop(memoed.run_experiments_stats(domain, experiments))
            });
            let telemetry_secs = time_min(samples, || {
                telemetered.reset_memo();
                drop(telemetered.run_experiments_stats(domain, experiments))
            });
            // Overhead guard: live telemetry must stay within 2% of the
            // disabled path. Min-of-N timing suppresses scheduler noise;
            // the 10ms absolute slack keeps sub-millisecond smoke
            // workloads (where 2% is far below timer noise) meaningful.
            let overhead_budget = memo_secs * 1.02 + 0.010;
            assert!(
                telemetry_secs <= overhead_budget,
                "telemetry overhead guard: {} {:?} enabled {telemetry_secs:.4}s vs \
                 disabled {memo_secs:.4}s (budget {overhead_budget:.4}s)",
                program.name,
                domain,
            );
            let (_, stats) = converging.run_experiments_stats(domain, experiments);
            memoed.reset_memo();
            let (_, memo_stats) = memoed.run_experiments_stats(domain, experiments);

            let n = experiments.len() as f64;
            let row = AblationRow {
                workload: program.name.clone(),
                domain: format!("{domain:?}"),
                experiments: experiments.len() as u64,
                golden_cycles: converging.golden().cycles,
                naive_secs,
                fork_secs,
                converge_secs,
                memo_secs,
                naive_exp_per_sec: n / naive_secs,
                fork_exp_per_sec: n / fork_secs,
                converge_exp_per_sec: n / converge_secs,
                memo_exp_per_sec: n / memo_secs,
                speedup_fork_vs_naive: naive_secs / fork_secs,
                speedup_converge_vs_naive: naive_secs / converge_secs,
                speedup_memo_vs_naive: naive_secs / memo_secs,
                pristine_cycles: stats.pristine_cycles,
                faulted_cycles: stats.faulted_cycles,
                converged_early: stats.converged_early,
                faulted_cycles_saved: stats.faulted_cycles_saved,
                early_termination_rate: stats.early_termination_rate(),
                memo_hits: memo_stats.memo_hits,
                memo_misses: memo_stats.memo_misses,
                memo_hit_rate: memo_stats.memo_hit_rate(),
                memoized_cycles_saved: memo_stats.memoized_cycles_saved,
                telemetry_secs,
                telemetry_overhead_pct: (telemetry_secs / memo_secs - 1.0) * 100.0,
            };
            println!(
                "  {:<12} {:<12} naive {:>9.1} exp/s  fork {:>9.1} exp/s  converge {:>9.1} exp/s  \
                 +memo {:>9.1} exp/s  ({:.2}x / {:.2}x / {:.2}x, {:.0}% early, {:.0}% memo hits)",
                row.workload,
                row.domain,
                row.naive_exp_per_sec,
                row.fork_exp_per_sec,
                row.converge_exp_per_sec,
                row.memo_exp_per_sec,
                row.speedup_fork_vs_naive,
                row.speedup_converge_vs_naive,
                row.speedup_memo_vs_naive,
                row.early_termination_rate * 100.0,
                row.memo_hit_rate * 100.0
            );
            println!(
                "  {:<12} {:<12} telemetry on {:>9.1} exp/s  ({:+.1}% vs disabled)",
                row.workload,
                row.domain,
                n / row.telemetry_secs,
                row.telemetry_overhead_pct
            );
            rows.push(row);
        }
    }
    println!();
    sofi_bench::save_artifact("BENCH_campaign.json", &rows);
}

criterion_group!(
    benches,
    bench_full_scan,
    bench_parallelism,
    bench_brute_force,
    bench_campaign_ablation
);
criterion_main!(benches);
