//! Campaign execution throughput: full def/use scans, sequential vs
//! parallel, plus the brute-force scan used for pruning validation.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::machine::MachineConfig;
use sofi::workloads::{fib, hi, Variant};
use sofi_bench::harness::{Criterion, Throughput};
use sofi_bench::{criterion_group, criterion_main};

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/full_defuse");
    group.sample_size(10);
    for program in [hi(), fib(Variant::Baseline)] {
        let campaign = Campaign::new(&program).unwrap();
        let experiments = campaign.plan().experiments.len() as u64;
        group.throughput(Throughput::Elements(experiments));
        group.bench_function(program.name.clone(), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/threads");
    group.sample_size(10);
    let program = fib(Variant::Baseline);
    for threads in [1usize, 4] {
        let config = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::with_config(&program, config).unwrap();
        group.bench_function(format!("fib_t{threads}"), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/brute_force");
    group.sample_size(10);
    let campaign = Campaign::new(&hi()).unwrap();
    group.throughput(Throughput::Elements(128));
    group.bench_function("hi_128_coords", |b| b.iter(|| campaign.run_brute_force()));
    group.finish();
}

/// One `BENCH_campaign.json` record: a (workload, domain) ablation over
/// the executor modes (naive replay, pristine forking, forking +
/// convergence termination, all of that + ungated fault-equivalence
/// memoization, the same memoization behind the adaptive cost gate
/// (`+memo2`) — each on the single-step interpreter — and finally the
/// full stack on the pre-decoded block engine), all sequential so
/// speedups isolate the algorithmic change. The memo/memo2/blocks
/// timings reset the cache before every sample so they measure a
/// cold-cache campaign, not a warm replay.
struct AblationRow {
    workload: String,
    domain: String,
    experiments: u64,
    golden_cycles: u64,
    naive_secs: f64,
    fork_secs: f64,
    converge_secs: f64,
    memo_secs: f64,
    memo2_secs: f64,
    blocks_secs: f64,
    naive_exp_per_sec: f64,
    fork_exp_per_sec: f64,
    converge_exp_per_sec: f64,
    memo_exp_per_sec: f64,
    memo2_exp_per_sec: f64,
    blocks_exp_per_sec: f64,
    speedup_fork_vs_naive: f64,
    speedup_converge_vs_naive: f64,
    speedup_memo_vs_naive: f64,
    speedup_memo2_vs_naive: f64,
    speedup_memo2_vs_memo: f64,
    speedup_blocks_vs_naive: f64,
    speedup_blocks_vs_memo: f64,
    pristine_cycles: u64,
    faulted_cycles: u64,
    converged_early: u64,
    faulted_cycles_saved: u64,
    early_termination_rate: f64,
    memo_hits: u64,
    memo_misses: u64,
    memo_hit_rate: f64,
    memoized_cycles_saved: u64,
    memo2_gate_shards_on: u64,
    memo2_gate_shards_off: u64,
    memo2_memo_hit_rate: f64,
    block_cycles: u64,
    step_cycles: u64,
    block_cycle_fraction: f64,
    telemetry_secs: f64,
    telemetry_overhead_pct: f64,
}
sofi::report::impl_to_json!(AblationRow {
    workload,
    domain,
    experiments,
    golden_cycles,
    naive_secs,
    fork_secs,
    converge_secs,
    memo_secs,
    memo2_secs,
    blocks_secs,
    naive_exp_per_sec,
    fork_exp_per_sec,
    converge_exp_per_sec,
    memo_exp_per_sec,
    memo2_exp_per_sec,
    blocks_exp_per_sec,
    speedup_fork_vs_naive,
    speedup_converge_vs_naive,
    speedup_memo_vs_naive,
    speedup_memo2_vs_naive,
    speedup_memo2_vs_memo,
    speedup_blocks_vs_naive,
    speedup_blocks_vs_memo,
    pristine_cycles,
    faulted_cycles,
    converged_early,
    faulted_cycles_saved,
    early_termination_rate,
    memo_hits,
    memo_misses,
    memo_hit_rate,
    memoized_cycles_saved,
    memo2_gate_shards_on,
    memo2_gate_shards_off,
    memo2_memo_hit_rate,
    block_cycles,
    step_cycles,
    block_cycle_fraction,
    telemetry_secs,
    telemetry_overhead_pct
});

/// Minimum wall time of `f` over `samples` runs (plus one warm-up).
fn time_min(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Minimum wall times of `a` and `b`, *interleaved* (a, b, a, b, …) so a
/// noisy-neighbor or frequency-scaling episode hits both measurands
/// instead of biasing whichever ran during it. Used for the
/// telemetry-overhead guard, which compares two nearly identical code
/// paths and would otherwise be dominated by time-locality noise.
fn time_min_pair(samples: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b();
    let mut min_a = f64::INFINITY;
    let mut min_b = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        a();
        min_a = min_a.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        b();
        min_b = min_b.min(start.elapsed().as_secs_f64());
    }
    (min_a, min_b)
}

fn bench_campaign_ablation(_c: &mut Criterion) {
    // Ablation of the executor optimizations, recorded machine-readably:
    // naive replay-from-zero vs pristine forking vs forking + golden-state
    // convergence termination vs all of that + fault-equivalence outcome
    // memoization (all four on the single-step interpreter, preserving
    // the PR 2–4 baselines), and finally `+blocks`: the same full stack
    // executing through the pre-decoded µop engine (the default
    // configuration). `SOFI_BENCH_SMOKE=1` restricts the sweep to the
    // smallest workload so CI can exercise the whole path in seconds.
    let smoke = std::env::var_os("SOFI_BENCH_SMOKE").is_some();
    let workloads = if smoke {
        vec![hi()]
    } else {
        sofi::workloads::all_baselines()
    };
    let samples = if smoke { 3 } else { 5 };

    let stepping_machine = MachineConfig {
        block_engine: false,
        ..MachineConfig::default()
    };
    println!("campaign/ablation (sequential; times are min of {samples} runs)");
    let mut rows = Vec::new();
    for program in workloads {
        let plain = Campaign::with_config(
            &program,
            CampaignConfig {
                convergence: false,
                memoization: false,
                machine: stepping_machine,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let converging = Campaign::with_config(
            &program,
            CampaignConfig {
                memoization: false,
                machine: stepping_machine,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        // `+memo`: memoization v1 semantics — probing unconditionally on
        // (the adaptive gate disabled), preserving the PR 3 baseline
        // including its losses on tiny and RAM-heavy workloads.
        let memoed = Campaign::with_config(
            &program,
            CampaignConfig {
                memo_gate: false,
                machine: stepping_machine,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        // `+memo2`: the same memoization behind the adaptive cost gate
        // (the default), which switches probing off per shard when its
        // measured cost cannot pay for itself.
        let memoed2 = Campaign::with_config(
            &program,
            CampaignConfig {
                machine: stepping_machine,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        // The full optimization stack on the block engine — exactly
        // `CampaignConfig::sequential()`, since the engine is the default.
        let blocked = Campaign::with_config(&program, CampaignConfig::sequential()).unwrap();
        // Telemetry-enabled twin of `blocked`: the default executor with
        // every counter/histogram/span record site live. `blocks_secs`
        // doubles as the telemetry-disabled baseline — identical config
        // except for one never-taken branch per record site.
        let telemetered = Campaign::with_config(
            &program,
            CampaignConfig {
                telemetry: true,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let experiments = match domain {
                FaultDomain::Memory => &plain.plan().experiments,
                FaultDomain::RegisterFile => &plain.register_plan().experiments,
            };
            let naive_secs = time_min(samples, || {
                drop(plain.run_experiments_naive(domain, experiments))
            });
            let fork_secs = time_min(samples, || {
                drop(plain.run_experiments_stats(domain, experiments))
            });
            let converge_secs = time_min(samples, || {
                drop(converging.run_experiments_stats(domain, experiments))
            });
            // Cold-cache timings, interleaved: the memo survives between
            // samples (and between domains) otherwise, which would
            // measure a warm replay instead of a fresh campaign — and
            // the `+memo2` guard below compares these two figures, so
            // they must not be biased by when each happened to run.
            let (memo_secs, memo2_secs) = time_min_pair(
                samples,
                || {
                    memoed.reset_memo();
                    drop(memoed.run_experiments_stats(domain, experiments))
                },
                || {
                    memoed2.reset_memo();
                    drop(memoed2.run_experiments_stats(domain, experiments))
                },
            );
            let (blocks_secs, telemetry_secs) = time_min_pair(
                samples,
                || {
                    blocked.reset_memo();
                    drop(blocked.run_experiments_stats(domain, experiments))
                },
                || {
                    telemetered.reset_memo();
                    drop(telemetered.run_experiments_stats(domain, experiments))
                },
            );
            // Overhead guard: live telemetry must stay within 5% of the
            // disabled path. Interleaved min-of-N timing suppresses
            // scheduler and frequency-scaling noise (shared-CPU runners
            // show double-digit swings between back-to-back identical
            // runs); the 10ms absolute slack keeps sub-millisecond smoke
            // workloads (where 5% is far below timer noise) meaningful.
            let overhead_budget = blocks_secs * 1.05 + 0.010;
            assert!(
                telemetry_secs <= overhead_budget,
                "telemetry overhead guard: {} {:?} enabled {telemetry_secs:.4}s vs \
                 disabled {blocks_secs:.4}s (budget {overhead_budget:.4}s)",
                program.name,
                domain,
            );
            let (_, stats) = converging.run_experiments_stats(domain, experiments);
            memoed.reset_memo();
            let (_, memo_stats) = memoed.run_experiments_stats(domain, experiments);
            memoed2.reset_memo();
            let (_, memo2_stats) = memoed2.run_experiments_stats(domain, experiments);
            // Engine dispatch mix, accumulated by the telemetered twin
            // across its timed samples (evidence that faulted work
            // actually retires through the µop loop).
            let engine = telemetered.telemetry().snapshot();
            let block_cycles = engine.counter(sofi::campaign::telemetry_names::BLOCK_CYCLES);
            let step_cycles = engine.counter(sofi::campaign::telemetry_names::STEP_CYCLES);

            let n = experiments.len() as f64;
            let row = AblationRow {
                workload: program.name.clone(),
                domain: format!("{domain:?}"),
                experiments: experiments.len() as u64,
                golden_cycles: converging.golden().cycles,
                naive_secs,
                fork_secs,
                converge_secs,
                memo_secs,
                memo2_secs,
                blocks_secs,
                naive_exp_per_sec: n / naive_secs,
                fork_exp_per_sec: n / fork_secs,
                converge_exp_per_sec: n / converge_secs,
                memo_exp_per_sec: n / memo_secs,
                memo2_exp_per_sec: n / memo2_secs,
                blocks_exp_per_sec: n / blocks_secs,
                speedup_fork_vs_naive: naive_secs / fork_secs,
                speedup_converge_vs_naive: naive_secs / converge_secs,
                speedup_memo_vs_naive: naive_secs / memo_secs,
                speedup_memo2_vs_naive: naive_secs / memo2_secs,
                speedup_memo2_vs_memo: memo_secs / memo2_secs,
                speedup_blocks_vs_naive: naive_secs / blocks_secs,
                speedup_blocks_vs_memo: memo_secs / blocks_secs,
                pristine_cycles: stats.pristine_cycles,
                faulted_cycles: stats.faulted_cycles,
                converged_early: stats.converged_early,
                faulted_cycles_saved: stats.faulted_cycles_saved,
                early_termination_rate: stats.early_termination_rate(),
                memo_hits: memo_stats.memo_hits,
                memo_misses: memo_stats.memo_misses,
                memo_hit_rate: memo_stats.memo_hit_rate(),
                memoized_cycles_saved: memo_stats.memoized_cycles_saved,
                memo2_gate_shards_on: memo2_stats.gate_shards_on,
                memo2_gate_shards_off: memo2_stats.gate_shards_off,
                memo2_memo_hit_rate: memo2_stats.memo_hit_rate(),
                block_cycles,
                step_cycles,
                block_cycle_fraction: if block_cycles + step_cycles > 0 {
                    block_cycles as f64 / (block_cycles + step_cycles) as f64
                } else {
                    0.0
                },
                telemetry_secs,
                telemetry_overhead_pct: (telemetry_secs / blocks_secs - 1.0) * 100.0,
            };
            // Gated-memoization guard, both halves of ROADMAP item 2:
            // the gate must eliminate the v1 losses (hi-class tiny
            // workloads, RAM-heavy plans with short tails) without
            // giving up the wins. ≥0.9× naive everywhere, and strictly
            // faster than ungated `+memo` wherever v1 lost to naive.
            // The 10ms absolute slack keeps sub-millisecond smoke
            // workloads (where timer noise dwarfs 10%) meaningful.
            assert!(
                row.memo2_secs <= row.naive_secs / 0.9 + 0.010,
                "memo2 bench guard: {} {} gated memo {:.4}s is below 0.9x naive ({:.4}s)",
                row.workload,
                row.domain,
                row.memo2_secs,
                row.naive_secs,
            );
            if row.speedup_memo_vs_naive < 1.0 {
                assert!(
                    row.memo2_secs < row.memo_secs + 0.010,
                    "memo2 bench guard: {} {} is a workload where ungated memo loses \
                     ({:.2}x naive) but gated memo did not beat it ({:.4}s vs {:.4}s)",
                    row.workload,
                    row.domain,
                    row.speedup_memo_vs_naive,
                    row.memo2_secs,
                    row.memo_secs,
                );
            }
            println!(
                "  {:<12} {:<12} naive {:>9.1} exp/s  fork {:>9.1} exp/s  converge {:>9.1} exp/s  \
                 +memo {:>9.1} exp/s  +memo2 {:>9.1} exp/s  +blocks {:>9.1} exp/s  \
                 ({:.2}x / {:.2}x / {:.2}x / {:.2}x / {:.2}x, blocks vs memo {:.2}x)",
                row.workload,
                row.domain,
                row.naive_exp_per_sec,
                row.fork_exp_per_sec,
                row.converge_exp_per_sec,
                row.memo_exp_per_sec,
                row.memo2_exp_per_sec,
                row.blocks_exp_per_sec,
                row.speedup_fork_vs_naive,
                row.speedup_converge_vs_naive,
                row.speedup_memo_vs_naive,
                row.speedup_memo2_vs_naive,
                row.speedup_blocks_vs_naive,
                row.speedup_blocks_vs_memo,
            );
            println!(
                "  {:<12} {:<12} memo2 gate: {} (memo2 vs memo {:.2}x, {:.0}% hits when probing)",
                row.workload,
                row.domain,
                if row.memo2_gate_shards_off > 0 {
                    "off"
                } else {
                    "on"
                },
                row.speedup_memo2_vs_memo,
                row.memo2_memo_hit_rate * 100.0,
            );
            println!(
                "  {:<12} {:<12} {:.0}% early, {:.0}% memo hits, {:.0}% µop cycles, \
                 telemetry on {:>9.1} exp/s ({:+.1}% vs disabled)",
                row.workload,
                row.domain,
                row.early_termination_rate * 100.0,
                row.memo_hit_rate * 100.0,
                row.block_cycle_fraction * 100.0,
                n / row.telemetry_secs,
                row.telemetry_overhead_pct
            );
            rows.push(row);
        }
    }
    println!();
    sofi_bench::save_artifact("BENCH_campaign.json", &rows);
}

criterion_group!(
    benches,
    bench_full_scan,
    bench_parallelism,
    bench_brute_force,
    bench_campaign_ablation
);
criterion_main!(benches);
