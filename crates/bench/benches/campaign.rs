//! Campaign execution throughput: full def/use scans, sequential vs
//! parallel, plus the brute-force scan used for pruning validation.

use sofi::campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi::workloads::{fib, hi, Variant};
use sofi_bench::harness::{Criterion, Throughput};
use sofi_bench::{criterion_group, criterion_main};

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/full_defuse");
    group.sample_size(10);
    for program in [hi(), fib(Variant::Baseline)] {
        let campaign = Campaign::new(&program).unwrap();
        let experiments = campaign.plan().experiments.len() as u64;
        group.throughput(Throughput::Elements(experiments));
        group.bench_function(program.name.clone(), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/threads");
    group.sample_size(10);
    let program = fib(Variant::Baseline);
    for threads in [1usize, 4] {
        let config = CampaignConfig {
            threads,
            ..CampaignConfig::default()
        };
        let campaign = Campaign::with_config(&program, config).unwrap();
        group.bench_function(format!("fib_t{threads}"), |b| {
            b.iter(|| campaign.run_full_defuse());
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/brute_force");
    group.sample_size(10);
    let campaign = Campaign::new(&hi()).unwrap();
    group.throughput(Throughput::Elements(128));
    group.bench_function("hi_128_coords", |b| b.iter(|| campaign.run_brute_force()));
    group.finish();
}

fn bench_fork_ablation(c: &mut Criterion) {
    // Ablation: the pristine-fork optimization vs naive replay-from-zero.
    let mut group = c.benchmark_group("campaign/fork_ablation");
    group.sample_size(10);
    let campaign =
        Campaign::with_config(&fib(Variant::Baseline), CampaignConfig::sequential()).unwrap();
    let experiments = &campaign.plan().experiments;
    group.bench_function("forking", |b| {
        b.iter(|| campaign.run_experiments(experiments));
    });
    group.bench_function("naive_replay", |b| {
        b.iter(|| campaign.run_experiments_naive(FaultDomain::Memory, experiments));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_scan,
    bench_parallelism,
    bench_brute_force,
    bench_fork_ablation
);
criterion_main!(benches);
