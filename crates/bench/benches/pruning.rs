//! Def/use analysis throughput: golden-run capture, timeline digestion
//! and equivalence-class extraction (§III-C machinery).

use sofi::space::DefUseAnalysis;
use sofi::trace::GoldenRun;
use sofi::workloads::{bin_sem2, sync2, Variant};
use sofi_bench::harness::Criterion;
use sofi_bench::{criterion_group, criterion_main};

fn bench_golden_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/golden_capture");
    for program in [bin_sem2(Variant::Baseline), sync2(Variant::SumDmr)] {
        group.bench_function(program.name.clone(), |b| {
            b.iter(|| GoldenRun::capture(&program, 10_000_000).unwrap());
        });
    }
    group.finish();
}

fn bench_defuse_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/defuse_analysis");
    for program in [bin_sem2(Variant::Baseline), sync2(Variant::SumDmr)] {
        let golden = GoldenRun::capture(&program, 10_000_000).unwrap();
        group.bench_function(program.name.clone(), |b| {
            b.iter(|| DefUseAnalysis::from_golden(&golden));
        });
    }
    group.finish();
}

fn bench_plan_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/plan_build");
    let golden = GoldenRun::capture(&sync2(Variant::SumDmr), 10_000_000).unwrap();
    let analysis = DefUseAnalysis::from_golden(&golden);
    group.bench_function("sync2+sumdmr", |b| b.iter(|| analysis.plan()));
    group.finish();
}

criterion_group!(
    benches,
    bench_golden_capture,
    bench_defuse_analysis,
    bench_plan_build
);
criterion_main!(benches);
