//! In-place string reversal.

use sofi_isa::{Asm, Program, Reg};

/// The string reversed by the benchmark.
pub const TEXT: &[u8] = b"fault injection";

/// Builds the string-reversal benchmark: classic two-pointer in-place
/// swap, then the reversed buffer is emitted.
///
/// Register use: `r4` = left index, `r5` = right index, `r6`/`r7` = bytes,
/// `r8`/`r9` = addresses.
pub fn strrev() -> Program {
    let mut a = Asm::with_name("strrev");
    let s = a.data_bytes("s", TEXT);
    let len = TEXT.len() as i32;

    a.li(Reg::R4, 0);
    a.li(Reg::R5, len - 1);
    let swap = a.label_here();
    let done = a.new_label();
    a.bge(Reg::R4, Reg::R5, done);
    a.addi(Reg::R8, Reg::R4, s.offset());
    a.addi(Reg::R9, Reg::R5, s.offset());
    a.lbu(Reg::R6, Reg::R8, 0);
    a.lbu(Reg::R7, Reg::R9, 0);
    a.sb(Reg::R7, Reg::R8, 0);
    a.sb(Reg::R6, Reg::R9, 0);
    a.addi(Reg::R4, Reg::R4, 1);
    a.addi(Reg::R5, Reg::R5, -1);
    a.j(swap);
    a.bind(done);

    a.li(Reg::R4, 0);
    a.li(Reg::R5, len);
    let dump = a.label_here();
    a.addi(Reg::R8, Reg::R4, s.offset());
    a.lbu(Reg::R6, Reg::R8, 0);
    a.serial_out(Reg::R6);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R5, dump);
    a.halt(0);
    a.build().expect("strrev is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn reverses_the_text() {
        let mut m = Machine::new(&strrev());
        assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
        let expected: Vec<u8> = TEXT.iter().rev().copied().collect();
        assert_eq!(m.serial(), expected);
    }
}
