//! Iterative Fibonacci with RAM-resident state.

use crate::Variant;
use sofi_harden::ProtectedWord;
use sofi_isa::{Asm, Program, Reg};

/// Which Fibonacci number is computed.
pub const N: u32 = 30;

/// Reference value (`fib(30) = 832_040`), used by tests.
pub fn fib_reference(n: u32) -> u32 {
    let (mut a, mut b) = (0u32, 1u32);
    for _ in 0..n {
        let t = a.wrapping_add(b);
        a = b;
        b = t;
    }
    a
}

/// Builds the Fibonacci benchmark: the two state words live in RAM (not
/// registers), are re-read and re-written every iteration, and the result
/// is emitted as four little-endian bytes.
///
/// In the SUM+DMR variant both state words are protected — an example of
/// a benchmark whose *entire* critical state is covered by the mechanism,
/// so hardening wins decisively.
pub fn fib(variant: Variant) -> Program {
    let name = match variant {
        Variant::Baseline => "fib",
        Variant::SumDmr => "fib+sumdmr",
    };
    let mut a = Asm::with_name(name);

    enum W {
        Plain(sofi_isa::DataLabel),
        Prot(ProtectedWord),
    }
    impl W {
        fn load(&self, a: &mut Asm, dst: Reg) {
            match self {
                W::Plain(l) => {
                    a.lw(dst, Reg::R0, l.offset());
                }
                W::Prot(p) => p.emit_load(a, dst, Reg::R1, Reg::R2),
            }
        }
        fn store(&self, a: &mut Asm, src: Reg) {
            match self {
                W::Plain(l) => {
                    a.sw(src, Reg::R0, l.offset());
                }
                W::Prot(p) => p.emit_store(a, src, Reg::R1),
            }
        }
    }

    let (wa, wb) = match variant {
        Variant::Baseline => (
            W::Plain(a.data_word("fa", 0)),
            W::Plain(a.data_word("fb", 1)),
        ),
        Variant::SumDmr => (
            W::Prot(ProtectedWord::declare(&mut a, "fa", 0)),
            W::Prot(ProtectedWord::declare(&mut a, "fb", 1)),
        ),
    };

    a.li(Reg::R4, N as i32);
    let top = a.label_here();
    wa.load(&mut a, Reg::R5);
    wb.load(&mut a, Reg::R6);
    a.add(Reg::R7, Reg::R5, Reg::R6); // t = a + b
    wa.store(&mut a, Reg::R6); // a = b
    wb.store(&mut a, Reg::R7); // b = t
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, top);

    wa.load(&mut a, Reg::R5);
    for _ in 0..4 {
        a.serial_out(Reg::R5);
        a.srli(Reg::R5, Reg::R5, 8);
    }
    a.halt(0);
    a.build().expect("fib is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn computes_fib_n() {
        for v in [Variant::Baseline, Variant::SumDmr] {
            let mut m = Machine::new(&fib(v));
            assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
            assert_eq!(m.serial(), fib_reference(N).to_le_bytes());
        }
    }

    #[test]
    fn reference_values() {
        assert_eq!(fib_reference(0), 0);
        assert_eq!(fib_reference(1), 1);
        assert_eq!(fib_reference(10), 55);
        assert_eq!(fib_reference(30), 832_040);
    }
}
