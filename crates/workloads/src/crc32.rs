//! CRC-32 (IEEE, bitwise) over an in-RAM message.

use sofi_isa::{Asm, Program, Reg};

/// The message whose checksum is computed.
pub const MESSAGE: &[u8] = b"soft errors!";

/// Reference CRC-32 (reflected, poly `0xEDB88320`), used by tests.
pub fn crc32_reference(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Builds the CRC-32 benchmark: computes the checksum of `MESSAGE`
/// bit-by-bit and emits the four little-endian CRC bytes.
///
/// Register use: `r4` = crc, `r5` = byte index, `r6` = bit counter,
/// `r7` = scratch, `r8` = polynomial, `r9` = message length.
pub fn crc32() -> Program {
    let mut a = Asm::with_name("crc32");
    let msg = a.data_bytes("msg", MESSAGE);
    let len = a.data_word("len", MESSAGE.len() as u32);

    a.li(Reg::R4, -1); // crc = 0xFFFFFFFF
    a.li(Reg::R8, 0xEDB8_8320u32 as i32);
    a.lw(Reg::R9, Reg::R0, len.offset());
    a.li(Reg::R5, 0);

    let per_byte = a.label_here();
    a.addi(Reg::R2, Reg::R5, msg.offset());
    a.lbu(Reg::R7, Reg::R2, 0);
    a.xor(Reg::R4, Reg::R4, Reg::R7);
    a.li(Reg::R6, 8);
    let per_bit = a.label_here();
    // mask = -(crc & 1); crc = (crc >> 1) ^ (poly & mask)
    a.andi(Reg::R7, Reg::R4, 1);
    a.sub(Reg::R7, Reg::R0, Reg::R7);
    a.and(Reg::R7, Reg::R7, Reg::R8);
    a.srli(Reg::R4, Reg::R4, 1);
    a.xor(Reg::R4, Reg::R4, Reg::R7);
    a.addi(Reg::R6, Reg::R6, -1);
    a.bne(Reg::R6, Reg::R0, per_bit);
    a.addi(Reg::R5, Reg::R5, 1);
    a.bne(Reg::R5, Reg::R9, per_byte);

    // crc = !crc; emit 4 bytes little-endian.
    a.li(Reg::R7, -1);
    a.xor(Reg::R4, Reg::R4, Reg::R7);
    for _ in 0..4 {
        a.serial_out(Reg::R4);
        a.srli(Reg::R4, Reg::R4, 8);
    }
    a.halt(0);
    a.build().expect("crc32 is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn matches_reference_implementation() {
        let mut m = Machine::new(&crc32());
        assert_eq!(m.run(10_000), RunStatus::Halted { code: 0 });
        let expected = crc32_reference(MESSAGE).to_le_bytes();
        assert_eq!(m.serial(), expected);
    }

    #[test]
    fn reference_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32_reference(b"123456789"), 0xCBF4_3926);
    }
}
