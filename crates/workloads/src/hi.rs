//! The paper's "Hi" micro-benchmark (§IV-A, Figure 3).
//!
//! Eight instructions, eight cycles, two bytes of RAM: store `'H'` and
//! `'i'` into a local buffer, then read them back and emit them on the
//! serial interface. Its full fault space has `8 · 16 = 128` coordinates
//! of which exactly `48` fail (fault coverage 62.5 %) — the numbers §IV
//! computes by hand.

use sofi_harden::{load_dilution, nop_dilution};
use sofi_isa::{Asm, Program, Reg};

/// Builds the 8-instruction "Hi" benchmark of Figure 3a.
///
/// Cycle schedule (1-based, as in the figure):
///
/// | cycle | instruction | fault-space event |
/// |---|---|---|
/// | 1 | `li r1, 'H'` | — |
/// | 2 | `sb r1, msg[0]` | W @ byte 0 |
/// | 3 | `li r1, 'i'` | — |
/// | 4 | `sb r1, msg[1]` | W @ byte 1 |
/// | 5 | `lb r2, msg[0]` | R @ byte 0 |
/// | 6 | serial ← r2 | — (MMIO) |
/// | 7 | `lb r2, msg[1]` | R @ byte 1 |
/// | 8 | serial ← r2 | — (MMIO) |
pub fn hi() -> Program {
    let mut a = Asm::with_name("hi");
    let msg = a.data_space("msg", 2);
    a.li(Reg::R1, 'H' as i32);
    a.sb(Reg::R1, Reg::R0, msg.offset());
    a.li(Reg::R1, 'i' as i32);
    a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
    a.lb(Reg::R2, Reg::R0, msg.offset());
    a.serial_out(Reg::R2);
    a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
    a.serial_out(Reg::R2);
    a.build().expect("hi benchmark is statically correct")
}

/// "Hi" with DFT applied: `nops` prepended no-ops (§IV-B). With the
/// paper's `nops = 4` the fault space grows to `12 · 16 = 192`, the
/// failure count stays 48, and the coverage "improves" to 75 %.
pub fn hi_dft(nops: usize) -> Program {
    nop_dilution(&hi(), nops)
}

/// "Hi" with DFT′ applied: `loads` prepended discarded memory reads,
/// defeating the "only activated faults count" objection — the added
/// coordinates are all activated, still benign, and the coverage rises
/// exactly as with DFT.
pub fn hi_dft_prime(loads: usize) -> Program {
    load_dilution(&hi(), loads, &[0, 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn says_hi_in_eight_cycles() {
        let mut m = Machine::new(&hi());
        assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), b"Hi");
        assert_eq!(m.cycle(), 8);
        assert_eq!(m.ram().size(), 2);
    }

    #[test]
    fn dft_adds_exactly_n_cycles() {
        let mut m = Machine::new(&hi_dft(4));
        assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), b"Hi");
        assert_eq!(m.cycle(), 12);
    }

    #[test]
    fn dft_prime_reads_do_not_disturb() {
        let mut m = Machine::new(&hi_dft_prime(4));
        assert_eq!(m.run(100), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), b"Hi");
        assert_eq!(m.cycle(), 12);
    }
}
