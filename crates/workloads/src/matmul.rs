//! 3×3 byte matrix multiplication.

use sofi_isa::{Asm, Program, Reg};

/// Left operand (row-major).
pub const MAT_A: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 9];
/// Right operand (row-major).
pub const MAT_B: [u8; 9] = [9, 8, 7, 6, 5, 4, 3, 2, 1];

/// Reference product (mod 256), used by tests.
pub fn matmul_reference() -> [u8; 9] {
    let mut c = [0u8; 9];
    for i in 0..3 {
        for j in 0..3 {
            let mut acc = 0u32;
            for k in 0..3 {
                acc += MAT_A[i * 3 + k] as u32 * MAT_B[k * 3 + j] as u32;
            }
            c[i * 3 + j] = acc as u8;
        }
    }
    c
}

/// Builds the matmul benchmark: `C = A · B` over the byte matrices above,
/// with `C` accumulated in RAM and emitted row-major at the end.
///
/// Register use: `r4` = i, `r5` = j, `r6` = k, `r7` = acc, `r8`/`r9` =
/// element scratch, `r10` = address scratch.
pub fn matmul() -> Program {
    let mut a = Asm::with_name("matmul");
    let ma = a.data_bytes("mat_a", &MAT_A);
    let mb = a.data_bytes("mat_b", &MAT_B);
    let mc = a.data_space("mat_c", 9);

    a.li(Reg::R4, 0); // i
    let loop_i = a.label_here();
    a.li(Reg::R5, 0); // j
    let loop_j = a.label_here();
    a.li(Reg::R7, 0); // acc
    a.li(Reg::R6, 0); // k
    let loop_k = a.label_here();
    // r8 = A[i*3+k]
    a.li(Reg::R10, 3);
    a.mul(Reg::R10, Reg::R4, Reg::R10);
    a.add(Reg::R10, Reg::R10, Reg::R6);
    a.addi(Reg::R10, Reg::R10, ma.offset());
    a.lbu(Reg::R8, Reg::R10, 0);
    // r9 = B[k*3+j]
    a.li(Reg::R10, 3);
    a.mul(Reg::R10, Reg::R6, Reg::R10);
    a.add(Reg::R10, Reg::R10, Reg::R5);
    a.addi(Reg::R10, Reg::R10, mb.offset());
    a.lbu(Reg::R9, Reg::R10, 0);
    // acc += r8 * r9
    a.mul(Reg::R8, Reg::R8, Reg::R9);
    a.add(Reg::R7, Reg::R7, Reg::R8);
    a.addi(Reg::R6, Reg::R6, 1);
    a.li(Reg::R10, 3);
    a.bne(Reg::R6, Reg::R10, loop_k);
    // C[i*3+j] = acc
    a.li(Reg::R10, 3);
    a.mul(Reg::R10, Reg::R4, Reg::R10);
    a.add(Reg::R10, Reg::R10, Reg::R5);
    a.addi(Reg::R10, Reg::R10, mc.offset());
    a.sb(Reg::R7, Reg::R10, 0);
    a.addi(Reg::R5, Reg::R5, 1);
    a.li(Reg::R10, 3);
    a.bne(Reg::R5, Reg::R10, loop_j);
    a.addi(Reg::R4, Reg::R4, 1);
    a.li(Reg::R10, 3);
    a.bne(Reg::R4, Reg::R10, loop_i);

    // Dump C.
    a.li(Reg::R4, 0);
    let dump = a.label_here();
    a.addi(Reg::R10, Reg::R4, mc.offset());
    a.lbu(Reg::R7, Reg::R10, 0);
    a.serial_out(Reg::R7);
    a.addi(Reg::R4, Reg::R4, 1);
    a.li(Reg::R10, 9);
    a.bne(Reg::R4, Reg::R10, dump);
    a.halt(0);
    a.build().expect("matmul is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn matches_reference_product() {
        let mut m = Machine::new(&matmul());
        assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), matmul_reference());
    }
}
