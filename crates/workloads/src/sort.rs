//! Bubble sort over an in-RAM byte array.

use sofi_harden::TmrWord;
use sofi_isa::{Asm, Program, Reg};

/// The unsorted input used by both variants.
const INPUT: [u8; 8] = [42, 7, 99, 3, 56, 120, 11, 73];

/// Shared code generator; `len_loader` emits "load the element count into
/// `r8`" in the variant's own way.
fn build(name: &str, mut a: Asm, len_loader: impl Fn(&mut Asm)) -> Program {
    let arr = a.data_bytes("arr", &INPUT);

    // Outer loop: n-1 passes; r4 = pass counter. The count is re-read
    // (plain or voted) at every pass, as a real implementation consulting
    // a container's size field would.
    len_loader(&mut a);
    a.addi(Reg::R4, Reg::R8, -1); // passes remaining
    let outer = a.label_here();
    len_loader(&mut a);
    // Inner loop: j = 0 .. n-2; r5 = j.
    a.li(Reg::R5, 0);
    let inner = a.label_here();
    a.addi(Reg::R2, Reg::R5, arr.offset());
    a.lbu(Reg::R6, Reg::R2, 0);
    a.lbu(Reg::R7, Reg::R2, 1);
    let no_swap = a.new_label();
    a.bgeu(Reg::R7, Reg::R6, no_swap);
    a.sb(Reg::R7, Reg::R2, 0);
    a.sb(Reg::R6, Reg::R2, 1);
    a.bind(no_swap);
    a.addi(Reg::R5, Reg::R5, 1);
    a.addi(Reg::R3, Reg::R8, -1); // n-1
    a.bne(Reg::R5, Reg::R3, inner);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, outer);

    // Emit the sorted array.
    a.li(Reg::R5, 0);
    let dump = a.label_here();
    a.addi(Reg::R2, Reg::R5, arr.offset());
    a.lbu(Reg::R6, Reg::R2, 0);
    a.serial_out(Reg::R6);
    a.addi(Reg::R5, Reg::R5, 1);
    a.bne(Reg::R5, Reg::R8, dump);
    a.halt(0);

    let mut p = a.build().expect("sort is statically correct");
    p.name = name.to_owned();
    p
}

/// Baseline bubble sort: the element count lives in a plain RAM word that
/// is read before each pass (a small but perfectly critical datum — a
/// corrupted count truncates or overruns the sort).
pub fn bubble_sort() -> Program {
    let mut a = Asm::with_name("bubble_sort");
    let len = a.data_word("len", INPUT.len() as u32);
    build("bubble_sort", a, move |a| {
        a.lw(Reg::R8, Reg::R0, len.offset());
    })
}

/// TMR-hardened bubble sort: the element count is stored in a
/// [`TmrWord`] and majority-voted on each load.
pub fn bubble_sort_tmr() -> Program {
    let mut a = Asm::with_name("bubble_sort+tmr");
    let len = TmrWord::declare(&mut a, "len", INPUT.len() as u32);
    build("bubble_sort+tmr", a, move |a| {
        len.emit_load(a, Reg::R8, Reg::R1, Reg::R2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn sorts_the_input() {
        let mut expected = INPUT;
        expected.sort_unstable();
        for p in [bubble_sort(), bubble_sort_tmr()] {
            let mut m = Machine::new(&p);
            assert_eq!(m.run(1_000_000), RunStatus::Halted { code: 0 });
            assert_eq!(m.serial(), expected, "{}", p.name);
        }
    }

    #[test]
    fn tmr_variant_costs_memory() {
        assert!(bubble_sort_tmr().ram_size > bubble_sort().ram_size);
    }
}
