//! Sensor sampling with deterministic external input (§II-C footnote).
//!
//! The paper's machine model requires that "external events (timer
//! interrupts or other input at runtime)" be "replayed at the exact same
//! point in time during each run" to keep benchmarks deterministic. This
//! workload exercises exactly that: a fixed schedule of sensor readings
//! arrives on the memory-mapped input latch; the program polls the latch
//! every loop iteration, stores each *new* sample into a RAM log, and
//! finally emits the log and the running sum.

use sofi_isa::{Asm, Program, Reg};
use sofi_machine::ExternalEvent;

/// Poll iterations (one latch read each).
const POLLS: i32 = 40;
/// Maximum samples the log can hold.
const LOG_SLOTS: u32 = 8;

/// The deterministic sensor schedule: `(cycle, value)` — values chosen
/// nonzero and pairwise distinct so each delivery is observable.
pub const SCHEDULE: [(u64, u32); 5] = [(20, 5), (60, 9), (110, 2), (150, 14), (200, 7)];

/// The external-event schedule as machine events.
pub fn sensor_events() -> Vec<ExternalEvent> {
    SCHEDULE
        .iter()
        .map(|&(cycle, value)| ExternalEvent { cycle, value })
        .collect()
}

/// Builds the sensor benchmark. Run it with [`sensor_events`] — without
/// the schedule the latch stays 0 and the output degenerates.
///
/// Register use: `r4` = polls left, `r5` = latch value, `r6` = previous
/// value, `r7` = log write index, `r8` = running sum.
pub fn sensor() -> Program {
    let mut a = Asm::with_name("sensor");
    let log = a.data_space("log", LOG_SLOTS);
    let sum = a.data_word("sum", 0);

    a.li(Reg::R4, POLLS);
    a.li(Reg::R6, 0); // previous latch value
    a.li(Reg::R7, 0); // log index
    let poll = a.label_here();
    let unchanged = a.new_label();
    a.read_input(Reg::R5);
    a.beq(Reg::R5, Reg::R6, unchanged);
    // New sample: log it and add it to the running sum.
    a.mv(Reg::R6, Reg::R5);
    a.addi(Reg::R2, Reg::R7, log.offset());
    a.sb(Reg::R5, Reg::R2, 0);
    a.addi(Reg::R7, Reg::R7, 1);
    a.lw(Reg::R8, Reg::R0, sum.offset());
    a.add(Reg::R8, Reg::R8, Reg::R5);
    a.sw(Reg::R8, Reg::R0, sum.offset());
    a.bind(unchanged);
    // Fixed-cadence padding so the poll loop has a stable period.
    a.nop();
    a.nop();
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, poll);

    // Emit the captured samples and the sum.
    a.li(Reg::R4, 0);
    a.li(Reg::R3, LOG_SLOTS as i32);
    let dump = a.label_here();
    a.addi(Reg::R2, Reg::R4, log.offset());
    a.lbu(Reg::R5, Reg::R2, 0);
    a.serial_out(Reg::R5);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R3, dump);
    a.lw(Reg::R8, Reg::R0, sum.offset());
    a.serial_out(Reg::R8);
    a.halt(0);
    a.build().expect("sensor is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, MachineConfig, RunStatus};

    fn run_with_schedule(events: Vec<ExternalEvent>) -> Machine {
        let mut m = Machine::with_events(&sensor(), MachineConfig::default(), events);
        assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
        m
    }

    #[test]
    fn captures_every_scheduled_sample() {
        let m = run_with_schedule(sensor_events());
        let out = m.serial();
        // All five samples captured in order, the rest of the log zero,
        // then the sum (5+9+2+14+7 = 37).
        assert_eq!(&out[..5], &[5, 9, 2, 14, 7]);
        assert_eq!(&out[5..8], &[0, 0, 0]);
        assert_eq!(out[8], 37);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = run_with_schedule(sensor_events());
        let b = run_with_schedule(sensor_events());
        assert_eq!(a.serial(), b.serial());
        assert_eq!(a.cycle(), b.cycle());
    }

    #[test]
    fn without_events_latch_stays_zero() {
        let m = run_with_schedule(Vec::new());
        assert!(m.serial()[..8].iter().all(|&b| b == 0));
        assert_eq!(m.serial()[8], 0);
    }

    #[test]
    fn event_timing_matters() {
        // Shifting the schedule changes which poll sees which value but
        // not the set of captured samples (the poll period divides the
        // gaps).
        let shifted: Vec<ExternalEvent> = sensor_events()
            .into_iter()
            .map(|e| ExternalEvent {
                cycle: e.cycle + 3,
                value: e.value,
            })
            .collect();
        let m = run_with_schedule(shifted);
        assert_eq!(&m.serial()[..5], &[5, 9, 2, 14, 7]);
        assert_eq!(m.serial()[8], 37);
    }
}
