//! Run-length encoder/decoder round trip.
//!
//! Encodes an input buffer into `(count, byte)` pairs in RAM, decodes it
//! back into a second buffer, and emits the decoded bytes. The
//! intermediate encoded form is classic *short-lived-then-consumed* data —
//! a contrast to the long-lived tables of the other benchmarks.

use sofi_isa::{Asm, Program, Reg};

/// The input to compress (deliberately runny).
pub const INPUT: [u8; 18] = [7, 7, 7, 7, 1, 1, 9, 9, 9, 9, 9, 9, 4, 2, 2, 2, 8, 8];

/// Builds the RLE round-trip benchmark.
///
/// Encoder registers: `r4` = read index, `r5` = current byte, `r6` = run
/// length, `r7` = write index. Decoder registers: `r4` = read index,
/// `r5` = count, `r6` = byte, `r7` = emit counter.
pub fn rle() -> Program {
    let n = INPUT.len() as i32;
    let mut a = Asm::with_name("rle");
    let input = a.data_bytes("input", &INPUT);
    let encoded = a.data_space("encoded", 2 * INPUT.len() as u32 + 2);
    let enc_len = a.data_word("enc_len", 0);

    // ---- encode ----
    a.li(Reg::R4, 0); // read index
    a.li(Reg::R7, 0); // write index
    let enc_outer = a.label_here();
    let enc_done = a.new_label();
    a.li(Reg::R2, n);
    a.bge(Reg::R4, Reg::R2, enc_done);
    a.addi(Reg::R2, Reg::R4, input.offset());
    a.lbu(Reg::R5, Reg::R2, 0); // run byte
    a.li(Reg::R6, 0); // run length
    let run_scan = a.label_here();
    let run_end = a.new_label();
    a.li(Reg::R2, n);
    a.bge(Reg::R4, Reg::R2, run_end);
    a.addi(Reg::R2, Reg::R4, input.offset());
    a.lbu(Reg::R3, Reg::R2, 0);
    a.bne(Reg::R3, Reg::R5, run_end);
    a.addi(Reg::R6, Reg::R6, 1);
    a.addi(Reg::R4, Reg::R4, 1);
    a.j(run_scan);
    a.bind(run_end);
    // emit (count, byte)
    a.addi(Reg::R2, Reg::R7, encoded.offset());
    a.sb(Reg::R6, Reg::R2, 0);
    a.sb(Reg::R5, Reg::R2, 1);
    a.addi(Reg::R7, Reg::R7, 2);
    a.j(enc_outer);
    a.bind(enc_done);
    a.sw(Reg::R7, Reg::R0, enc_len.offset());

    // ---- decode + emit ----
    a.li(Reg::R4, 0); // encoded read index
    a.lw(Reg::R8, Reg::R0, enc_len.offset());
    let dec_outer = a.label_here();
    let dec_done = a.new_label();
    a.bge(Reg::R4, Reg::R8, dec_done);
    a.addi(Reg::R2, Reg::R4, encoded.offset());
    a.lbu(Reg::R5, Reg::R2, 0); // count
    a.lbu(Reg::R6, Reg::R2, 1); // byte
    a.addi(Reg::R4, Reg::R4, 2);
    let emit = a.label_here();
    let next_pair = a.new_label();
    a.beq(Reg::R5, Reg::R0, next_pair);
    a.serial_out(Reg::R6);
    a.addi(Reg::R5, Reg::R5, -1);
    a.j(emit);
    a.bind(next_pair);
    a.j(dec_outer);
    a.bind(dec_done);
    a.halt(0);
    a.build().expect("rle is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn round_trips_the_input() {
        let mut m = Machine::new(&rle());
        assert_eq!(m.run(1_000_000), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), INPUT);
    }
}
