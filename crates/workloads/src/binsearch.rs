//! Binary search over a sorted table, repeated for several keys.
//!
//! Control-flow heavy with a long-lived read-only table — corrupted table
//! entries break the search invariant and typically cause *wrong results
//! without any crash*, making this a high-SDC benchmark.

use sofi_isa::{Asm, Program, Reg};

/// The sorted table searched.
pub const TABLE: [u8; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];
/// The probe keys (present and absent).
pub const KEYS: [u8; 6] = [2, 19, 53, 4, 30, 47];

/// Reference: index of `key` in `TABLE` or `0xFF`.
pub fn binsearch_reference(key: u8) -> u8 {
    TABLE.binary_search(&key).map(|i| i as u8).unwrap_or(0xFF)
}

/// Builds the benchmark: for each key in `KEYS`, binary-search the
/// table and emit the found index (or `0xFF`).
///
/// Register use: `r4` = key index, `r5` = key, `r6` = lo, `r7` = hi
/// (exclusive), `r8` = mid, `r9` = table value, `r10` = result.
pub fn binsearch() -> Program {
    let mut a = Asm::with_name("binsearch");
    let table = a.data_bytes("table", &TABLE);
    let keys = a.data_bytes("keys", &KEYS);

    a.li(Reg::R4, 0);
    let per_key = a.label_here();
    a.addi(Reg::R2, Reg::R4, keys.offset());
    a.lbu(Reg::R5, Reg::R2, 0);

    a.li(Reg::R6, 0); // lo
    a.li(Reg::R7, TABLE.len() as i32); // hi (exclusive)
    a.li(Reg::R10, 0xFF); // result = not found
    let search = a.label_here();
    let finish = a.new_label();
    let go_right = a.new_label();
    let found = a.new_label();
    a.bge(Reg::R6, Reg::R7, finish);
    // mid = (lo + hi) / 2
    a.add(Reg::R8, Reg::R6, Reg::R7);
    a.srli(Reg::R8, Reg::R8, 1);
    a.addi(Reg::R2, Reg::R8, table.offset());
    a.lbu(Reg::R9, Reg::R2, 0);
    a.beq(Reg::R9, Reg::R5, found);
    a.bltu(Reg::R9, Reg::R5, go_right);
    a.mv(Reg::R7, Reg::R8); // hi = mid
    a.j(search);
    a.bind(go_right);
    a.addi(Reg::R6, Reg::R8, 1); // lo = mid + 1
    a.j(search);
    a.bind(found);
    a.mv(Reg::R10, Reg::R8);
    a.bind(finish);
    a.serial_out(Reg::R10);

    a.addi(Reg::R4, Reg::R4, 1);
    a.li(Reg::R2, KEYS.len() as i32);
    a.bne(Reg::R4, Reg::R2, per_key);
    a.halt(0);
    a.build().expect("binsearch is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn finds_every_key() {
        let mut m = Machine::new(&binsearch());
        assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
        let expected: Vec<u8> = KEYS.iter().map(|&k| binsearch_reference(k)).collect();
        assert_eq!(m.serial(), expected);
    }

    #[test]
    fn reference_sanity() {
        assert_eq!(binsearch_reference(2), 0);
        assert_eq!(binsearch_reference(53), 15);
        assert_eq!(binsearch_reference(4), 0xFF);
    }
}
