//! Iterative quicksort with an explicit stack in RAM.
//!
//! Unlike [`crate::bubble_sort`] this benchmark keeps a *software stack*
//! of pending subranges in memory — a different fault-exposure profile:
//! corrupted stack entries cause wild subrange bounds (traps or wrong
//! ordering), and stack slots have bursty lifetimes.

use sofi_isa::{Asm, Program, Reg};

/// The unsorted input.
pub const INPUT: [u8; 12] = [93, 17, 68, 4, 250, 41, 7, 180, 33, 121, 2, 77];

/// Maximum stack depth in (lo, hi) byte pairs.
const STACK_SLOTS: u32 = 16;

/// Builds the quicksort benchmark: sorts `INPUT` in place with
/// Lomuto-partition quicksort driven by an explicit range stack, then
/// emits the sorted array.
///
/// Register use: `r4` = lo, `r5` = hi, `r6` = pivot value, `r7` = store
/// index, `r8` = scan index, `r9` = stack pointer (byte offset into the
/// range stack), `r10`/`r11` = scratch bytes, `r2`/`r3` = addresses.
pub fn quicksort() -> Program {
    let mut a = Asm::with_name("quicksort");
    let arr = a.data_bytes("arr", &INPUT);
    let stack = a.data_space("stack", STACK_SLOTS * 2);
    let n = INPUT.len() as i32;

    // push (0, n-1)
    a.li(Reg::R1, 0);
    a.sb(Reg::R1, Reg::R0, stack.offset());
    a.li(Reg::R1, n - 1);
    a.sb(Reg::R1, Reg::R0, stack.at(1).offset());
    a.li(Reg::R9, 2); // stack pointer (bytes used)

    let loop_top = a.new_named_label("loop");
    let done = a.new_named_label("done");
    let skip = a.new_named_label("skip_range");

    a.bind(loop_top);
    a.beq(Reg::R9, Reg::R0, done);
    // pop (lo, hi)
    a.addi(Reg::R9, Reg::R9, -2);
    a.addi(Reg::R2, Reg::R9, stack.offset());
    a.lbu(Reg::R4, Reg::R2, 0); // lo
    a.lbu(Reg::R5, Reg::R2, 1); // hi
    a.bge(Reg::R4, Reg::R5, skip);

    // Lomuto partition with pivot = arr[hi].
    a.addi(Reg::R2, Reg::R5, arr.offset());
    a.lbu(Reg::R6, Reg::R2, 0); // pivot
    a.mv(Reg::R7, Reg::R4); // store index i = lo
    a.mv(Reg::R8, Reg::R4); // scan index j = lo
    let part_loop = a.label_here();
    let no_swap = a.new_label();
    a.addi(Reg::R2, Reg::R8, arr.offset());
    a.lbu(Reg::R10, Reg::R2, 0); // arr[j]
    a.bgeu(Reg::R10, Reg::R6, no_swap);
    // swap arr[i], arr[j]
    a.addi(Reg::R3, Reg::R7, arr.offset());
    a.lbu(Reg::R11, Reg::R3, 0);
    a.sb(Reg::R10, Reg::R3, 0);
    a.sb(Reg::R11, Reg::R2, 0);
    a.addi(Reg::R7, Reg::R7, 1);
    a.bind(no_swap);
    a.addi(Reg::R8, Reg::R8, 1);
    a.bne(Reg::R8, Reg::R5, part_loop);
    // swap arr[i], arr[hi] (place pivot)
    a.addi(Reg::R2, Reg::R7, arr.offset());
    a.lbu(Reg::R10, Reg::R2, 0);
    a.addi(Reg::R3, Reg::R5, arr.offset());
    a.lbu(Reg::R11, Reg::R3, 0);
    a.sb(Reg::R10, Reg::R3, 0);
    a.sb(Reg::R11, Reg::R2, 0);

    // push (lo, i-1) if lo < i-1
    let no_left = a.new_label();
    a.addi(Reg::R10, Reg::R7, -1);
    a.bge(Reg::R4, Reg::R10, no_left);
    a.addi(Reg::R2, Reg::R9, stack.offset());
    a.sb(Reg::R4, Reg::R2, 0);
    a.sb(Reg::R10, Reg::R2, 1);
    a.addi(Reg::R9, Reg::R9, 2);
    a.bind(no_left);
    // push (i+1, hi) if i+1 < hi
    let no_right = a.new_label();
    a.addi(Reg::R10, Reg::R7, 1);
    a.bge(Reg::R10, Reg::R5, no_right);
    a.addi(Reg::R2, Reg::R9, stack.offset());
    a.sb(Reg::R10, Reg::R2, 0);
    a.sb(Reg::R5, Reg::R2, 1);
    a.addi(Reg::R9, Reg::R9, 2);
    a.bind(no_right);

    a.bind(skip);
    a.j(loop_top);

    a.bind(done);
    a.li(Reg::R4, 0);
    a.li(Reg::R5, n);
    let dump = a.label_here();
    a.addi(Reg::R2, Reg::R4, arr.offset());
    a.lbu(Reg::R6, Reg::R2, 0);
    a.serial_out(Reg::R6);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R5, dump);
    a.halt(0);
    a.build().expect("quicksort is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn sorts_the_input() {
        let mut expected = INPUT;
        expected.sort_unstable();
        let mut m = Machine::new(&quicksort());
        assert_eq!(m.run(1_000_000), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), expected);
    }
}
