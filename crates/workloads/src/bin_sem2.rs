//! `bin_sem2`: two threads transforming a shared record under binary
//! semaphores.
//!
//! Re-creation of the eCos `bin_sem2` kernel test used in the paper's
//! Figure 2: thread A and thread B alternate strictly (two binary
//! semaphores), each pass transforming every word of a shared in-RAM
//! *record* and emitting a digest byte. The record is the benchmark's
//! "critical data with long lifetimes" — each word sits in RAM untouched
//! while the other thread works and while the kernel context-switches, so
//! the record dominates the baseline's failure mass.
//!
//! The SUM+DMR variant protects every record word with checksummed
//! duplication ([`ProtectedWord`]). The protection's fast path costs only
//! a few cycles per access, and the protected data is exactly the
//! failure-prone data — the configuration in which hardening genuinely
//! pays off (Figure 2e: bin_sem2 improves).

use crate::kernel::{Kernel, KernelProtection};
use crate::Variant;
use sofi_harden::{HashDmrWord, Shield};
use sofi_isa::{Asm, Program, Reg};

/// Rounds each thread executes.
const ROUNDS: i32 = 6;
/// Words in the shared record.
const RECORD_WORDS: usize = 8;
/// Bytes of the (unprotected) digest history staged for the final dump.
const HISTORY_BYTES: u32 = (2 * ROUNDS) as u32;

/// Folds all four bytes of a word into one observable byte (so faults in
/// the high bytes of the record are visible on the serial interface).
fn fold(v: u32) -> u8 {
    let v = v ^ (v >> 16);
    (v ^ (v >> 8)) as u8
}

/// Emits the fold of `r` into `r` (clobbers `r14`).
fn emit_fold(a: &mut Asm, r: Reg) {
    a.srli(Reg::R14, r, 16);
    a.xor(r, r, Reg::R14);
    a.srli(Reg::R14, r, 8);
    a.xor(r, r, Reg::R14);
}

/// Reference model of the record transformation, used by tests.
pub fn bin_sem2_reference() -> Vec<u8> {
    let mut record: Vec<u32> = (0..RECORD_WORDS as u32).map(|i| i + 1).collect();
    let mut out = Vec::new();
    for _round in 0..ROUNDS {
        for mult in [3u32, 5u32] {
            // A multiplies by 3, B by 5 (they alternate A, B, A, B, ...).
            let mut acc = 0u32;
            for (i, w) in record.iter_mut().enumerate() {
                *w = w.wrapping_mul(mult).wrapping_add(i as u32 + 1);
                acc ^= *w;
            }
            out.push(fold(acc));
        }
    }
    // Finale: replay the digest history, then dump the record.
    let history: Vec<u8> = out.clone();
    out.extend_from_slice(&history);
    for w in &record {
        out.push(fold(*w));
    }
    out
}

/// Builds the `bin_sem2` benchmark in the requested variant.
///
/// Output: `2 · ROUNDS` digest bytes (one per pass, threads alternating)
/// followed by the staged history and the record's folded bytes —
/// identical for both variants.
pub fn bin_sem2(variant: Variant) -> Program {
    bin_sem2_param(variant, 0)
}

/// [`bin_sem2`] with an additional per-pass scrub of `scrub_pool`
/// signature-protected configuration words in the hardened variant — the
/// overhead knob for the crossover ablation: at 0 the protection wins
/// decisively; growing the pool inflates the runtime until the exposure
/// growth of the unprotected history buffer eats the benefit.
pub fn bin_sem2_param(variant: Variant, scrub_pool: usize) -> Program {
    let name = match variant {
        Variant::Baseline => "bin_sem2".to_owned(),
        Variant::SumDmr if scrub_pool == 0 => "bin_sem2+sumdmr".to_owned(),
        Variant::SumDmr => format!("bin_sem2+sumdmr(pool={scrub_pool})"),
    };
    let mut a = Asm::with_name(name);
    let protected = variant == Variant::SumDmr;
    let protection = match variant {
        Variant::Baseline => KernelProtection::None,
        Variant::SumDmr => KernelProtection::SumDmr,
    };

    let record: Vec<Shield> = (0..RECORD_WORDS)
        .map(|i| Shield::declare(&mut a, &format!("rec{i}"), i as u32 + 1, protected))
        .collect();
    let pool: Vec<HashDmrWord> = if protected {
        (0..scrub_pool)
            .map(|i| HashDmrWord::declare(&mut a, &format!("cfg{i}"), 0x2000 + i as u32))
            .collect()
    } else {
        Vec::new()
    };
    // Digest history: staged output replayed at the end. Deliberately a
    // plain byte buffer in both variants — the protection mechanism (like
    // its real-world counterpart) covers typed objects, not raw I/O
    // staging buffers. This is the hardened variant's residual exposure.
    let history = a.data_space("history", HISTORY_BYTES);
    let hist_pos = Shield::declare(&mut a, "hist_pos", 0, protected);

    let ta = a.new_named_label("thread_a");
    let tb = a.new_named_label("thread_b");
    let finale = a.new_named_label("finale");
    let k = Kernel::emit_prologue(&mut a, &[ta, tb], finale, protection);
    let sem_a = k.declare_sem(&mut a, "sem_a", true); // thread A runs first
    let sem_b = k.declare_sem(&mut a, "sem_b", false);

    // One full pass over the record: w[i] = w[i]·mult + (i+1); digest in
    // r6. Unrolled so protected and plain variants share the structure.
    let emit_pass = |a: &mut Asm, mult: i32| {
        a.li(Reg::R6, 0); // digest accumulator
        for (i, w) in record.iter().enumerate() {
            w.emit_load(a, Reg::R5, Reg::R1, Reg::R2);
            a.li(Reg::R14, mult);
            a.mul(Reg::R5, Reg::R5, Reg::R14);
            a.addi(Reg::R5, Reg::R5, i as i16 + 1);
            w.emit_store(a, Reg::R5, Reg::R1);
            a.xor(Reg::R6, Reg::R6, Reg::R5);
        }
        for w in &pool {
            w.emit_scrub(a, Reg::R1, Reg::R2, Reg::R3, Reg::R14);
        }
        emit_fold(a, Reg::R6);
        a.serial_out(Reg::R6);
        // Stage the digest byte in the history buffer.
        hist_pos.emit_load(a, Reg::R1, Reg::R2, Reg::R3);
        a.addi(Reg::R2, Reg::R1, history.offset());
        a.sb(Reg::R6, Reg::R2, 0);
        a.addi(Reg::R1, Reg::R1, 1);
        hist_pos.emit_store(a, Reg::R1, Reg::R2);
    };

    // Thread A: multiplier 3.
    a.bind(ta);
    a.li(Reg::R4, ROUNDS);
    let la = a.label_here();
    k.emit_sem_wait(&mut a, sem_a);
    emit_pass(&mut a, 3);
    k.emit_sem_post(&mut a, sem_b);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, la);
    k.emit_thread_exit(&mut a);

    // Thread B: multiplier 5.
    a.bind(tb);
    a.li(Reg::R4, ROUNDS);
    let lb = a.label_here();
    k.emit_sem_wait(&mut a, sem_b);
    emit_pass(&mut a, 5);
    k.emit_sem_post(&mut a, sem_a);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, lb);
    k.emit_thread_exit(&mut a);

    // Finale: dump the record (one last read keeps every word live to the
    // end, like the eCos test's final assertions).
    a.bind(finale);
    // Replay the digest history.
    a.li(Reg::R4, 0);
    a.li(Reg::R6, HISTORY_BYTES as i32);
    let replay = a.label_here();
    a.addi(Reg::R2, Reg::R4, history.offset());
    a.lbu(Reg::R5, Reg::R2, 0);
    a.serial_out(Reg::R5);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R6, replay);
    for w in &record {
        w.emit_load(&mut a, Reg::R5, Reg::R1, Reg::R2);
        emit_fold(&mut a, Reg::R5);
        a.serial_out(Reg::R5);
    }
    a.halt(0);

    k.emit_runtime(&mut a);
    a.build().expect("bin_sem2 is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    fn run(v: Variant) -> Machine {
        let mut m = Machine::new(&bin_sem2(v));
        assert_eq!(m.run(1_000_000), RunStatus::Halted { code: 0 });
        m
    }

    #[test]
    fn output_matches_reference_model() {
        let m = run(Variant::Baseline);
        assert_eq!(m.serial(), bin_sem2_reference());
    }

    #[test]
    fn variants_agree_on_output() {
        let base = run(Variant::Baseline);
        let hard = run(Variant::SumDmr);
        assert_eq!(base.serial(), hard.serial());
        assert_eq!(hard.detect_count(), 0); // no faults, no detections
    }

    #[test]
    fn hardened_costs_runtime_and_memory_moderately() {
        let base = run(Variant::Baseline);
        let hard = run(Variant::SumDmr);
        assert!(hard.cycle() > base.cycle());
        assert!(hard.ram().size() > base.ram().size());
        // The paper's Figure 2g shows bin_sem2's hardened runtime in the
        // same ballpark as its baseline — unlike sync2's.
        assert!(hard.cycle() < base.cycle() * 3);
    }
}
