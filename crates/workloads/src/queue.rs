//! Producer/consumer over an in-RAM ring buffer, on the cooperative
//! kernel.

use crate::kernel::{Kernel, KernelProtection};
use sofi_isa::{Asm, Program, Reg};

/// Ring capacity in bytes (power of two).
const CAP: i32 = 8;
/// Items produced and consumed.
const ITEMS: i32 = 12;

/// Builds the queue benchmark: a producer thread pushes `ITEMS` bytes
/// (`7·i + 1`) through an 8-slot ring buffer; a consumer thread pops them
/// and emits each on the serial interface. Fill-level polling with
/// cooperative yields replaces counting semaphores.
pub fn queue() -> Program {
    let mut a = Asm::with_name("queue");
    let ring = a.data_space("ring", CAP as u32);
    let head = a.data_word("head", 0); // next write index (mod CAP)
    let tail = a.data_word("tail", 0); // next read index (mod CAP)
    let count = a.data_word("count", 0); // fill level

    let producer = a.new_named_label("producer");
    let consumer = a.new_named_label("consumer");
    let finale = a.new_named_label("finale");
    let k = Kernel::emit_prologue(
        &mut a,
        &[producer, consumer],
        finale,
        KernelProtection::None,
    );

    // Producer: r4 = items left, r5 = running value.
    a.bind(producer);
    a.li(Reg::R4, ITEMS);
    a.li(Reg::R5, 1);
    let p_loop = a.label_here();
    // Wait for space.
    let p_wait = a.label_here();
    a.lw(Reg::R1, Reg::R0, count.offset());
    a.li(Reg::R2, CAP);
    let p_go = a.new_label();
    a.bne(Reg::R1, Reg::R2, p_go);
    k.emit_yield(&mut a);
    a.j(p_wait);
    a.bind(p_go);
    // ring[head] = r5; head = (head + 1) & (CAP-1); count += 1
    a.lw(Reg::R1, Reg::R0, head.offset());
    a.addi(Reg::R2, Reg::R1, ring.offset());
    a.sb(Reg::R5, Reg::R2, 0);
    a.addi(Reg::R1, Reg::R1, 1);
    a.andi(Reg::R1, Reg::R1, (CAP - 1) as i16);
    a.sw(Reg::R1, Reg::R0, head.offset());
    a.lw(Reg::R1, Reg::R0, count.offset());
    a.addi(Reg::R1, Reg::R1, 1);
    a.sw(Reg::R1, Reg::R0, count.offset());
    a.addi(Reg::R5, Reg::R5, 7);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, p_loop);
    k.emit_thread_exit(&mut a);

    // Consumer: r4 = items left.
    a.bind(consumer);
    a.li(Reg::R4, ITEMS);
    let c_loop = a.label_here();
    let c_wait = a.label_here();
    a.lw(Reg::R1, Reg::R0, count.offset());
    let c_go = a.new_label();
    a.bne(Reg::R1, Reg::R0, c_go);
    k.emit_yield(&mut a);
    a.j(c_wait);
    a.bind(c_go);
    // r5 = ring[tail]; tail = (tail + 1) & (CAP-1); count -= 1
    a.lw(Reg::R1, Reg::R0, tail.offset());
    a.addi(Reg::R2, Reg::R1, ring.offset());
    a.lbu(Reg::R5, Reg::R2, 0);
    a.addi(Reg::R1, Reg::R1, 1);
    a.andi(Reg::R1, Reg::R1, (CAP - 1) as i16);
    a.sw(Reg::R1, Reg::R0, tail.offset());
    a.lw(Reg::R1, Reg::R0, count.offset());
    a.addi(Reg::R1, Reg::R1, -1);
    a.sw(Reg::R1, Reg::R0, count.offset());
    a.serial_out(Reg::R5);
    k.emit_yield(&mut a);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, c_loop);
    k.emit_thread_exit(&mut a);

    a.bind(finale);
    a.li(Reg::R5, b'.' as i32);
    a.serial_out(Reg::R5);
    a.halt(0);

    k.emit_runtime(&mut a);
    a.build().expect("queue is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn consumer_sees_all_items_in_order() {
        let mut m = Machine::new(&queue());
        assert_eq!(m.run(1_000_000), RunStatus::Halted { code: 0 });
        let mut expected: Vec<u8> = (0..ITEMS).map(|i| (7 * i + 1) as u8).collect();
        expected.push(b'.');
        assert_eq!(m.serial(), expected);
    }
}
