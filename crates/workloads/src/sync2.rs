//! `sync2`: synchronization stress with an event log.
//!
//! Re-creation of the eCos `sync2` kernel test as the paper's Figure 2
//! uses it: two threads contend for a mutex semaphore, update four shared
//! counters, and append progress entries to an in-memory *event log* that
//! is dumped to the serial interface at the end of the run.
//!
//! The SUM+DMR variant protects the four counters and additionally scrubs
//! a pool of protected configuration words every round — faithful to
//! protection libraries that periodically re-verify their objects. The
//! consequences mirror the paper's findings:
//!
//! * the *protected* counters were only a modest share of the baseline's
//!   failure mass (they are re-written every round, so their windows are
//!   short),
//! * the *unprotected* event log's failure mass scales with runtime (each
//!   entry stays live until the final dump), and the scrubbing inflates
//!   the runtime severalfold,
//!
//! so the hardened variant's absolute failure count **increases** while
//! its fault coverage still looks better — the wrong-design-decision trap
//! of §V-B (Figure 2b vs 2e).

use crate::kernel::{Kernel, KernelProtection};
use crate::Variant;
use sofi_harden::HashDmrWord;
use sofi_isa::{Asm, DataLabel, Program, Reg};

/// Rounds each thread executes.
const ROUNDS: i32 = 5;
/// Protected configuration words scrubbed per round in the hardened
/// variant (with signature recomputation the dominant runtime cost).
const SCRUB_POOL: usize = 3;
/// Log entries: 2 threads × 2 bytes × ROUNDS.
const LOG_BYTES: u32 = (2 * 2 * ROUNDS) as u32;

enum Counter {
    Plain(DataLabel),
    Protected(HashDmrWord),
}

impl Counter {
    fn emit_add(&self, a: &mut Asm, delta: i16) {
        // r5 ← counter; r5 += delta; counter ← r5 (r5 holds the new value
        // afterwards for logging).
        match self {
            Counter::Plain(l) => {
                a.lw(Reg::R5, Reg::R0, l.offset());
                a.addi(Reg::R5, Reg::R5, delta);
                a.sw(Reg::R5, Reg::R0, l.offset());
            }
            Counter::Protected(p) => {
                p.emit_load(a, Reg::R5, Reg::R1, Reg::R2, Reg::R3);
                a.addi(Reg::R5, Reg::R5, delta);
                p.emit_store(a, Reg::R5, Reg::R1, Reg::R2);
            }
        }
    }

    fn emit_load(&self, a: &mut Asm, dst: Reg) {
        match self {
            Counter::Plain(l) => {
                a.lw(dst, Reg::R0, l.offset());
            }
            Counter::Protected(p) => p.emit_load(a, dst, Reg::R1, Reg::R2, Reg::R3),
        }
    }
}

/// Appends the low byte of `r5` to the log (`log[pos++] = r5`).
/// Clobbers `r1`, `r2`.
fn emit_log_append(a: &mut Asm, log: DataLabel, pos: DataLabel) {
    a.lw(Reg::R1, Reg::R0, pos.offset());
    a.addi(Reg::R2, Reg::R1, log.offset());
    a.sb(Reg::R5, Reg::R2, 0);
    a.addi(Reg::R1, Reg::R1, 1);
    a.sw(Reg::R1, Reg::R0, pos.offset());
}

/// Builds the `sync2` benchmark in the requested variant (with the
/// default scrub-pool size).
///
/// Output: the `LOG_BYTES`-byte event log followed by the low bytes of
/// the four counters — identical for both variants.
pub fn sync2(variant: Variant) -> Program {
    sync2_param(variant, SCRUB_POOL)
}

/// [`sync2`] with an explicit scrub-pool size — the knob that controls
/// the hardened variant's runtime overhead. Sweeping it locates the
/// *crossover* where the protection's benefit is eaten by the exposure
/// growth of unprotected data (see the `crossover` experiment binary).
pub fn sync2_param(variant: Variant, scrub_pool: usize) -> Program {
    let name = match variant {
        Variant::Baseline => "sync2".to_owned(),
        Variant::SumDmr => {
            if scrub_pool == SCRUB_POOL {
                "sync2+sumdmr".to_owned()
            } else {
                format!("sync2+sumdmr(pool={scrub_pool})")
            }
        }
    };
    let mut a = Asm::with_name(name);
    let protection = match variant {
        Variant::Baseline => KernelProtection::None,
        Variant::SumDmr => KernelProtection::SumDmr,
    };

    let log = a.data_space("log", LOG_BYTES);
    let pos = a.data_word("log_pos", 0);
    let counters: Vec<Counter> = (0..4)
        .map(|i| match variant {
            Variant::Baseline => Counter::Plain(a.data_word(format!("c{i}"), 0)),
            Variant::SumDmr => {
                Counter::Protected(HashDmrWord::declare(&mut a, &format!("c{i}"), 0))
            }
        })
        .collect();
    // Hardened-only: the scrub pool of protected configuration words.
    let pool: Vec<HashDmrWord> = if variant == Variant::SumDmr {
        (0..scrub_pool)
            .map(|i| HashDmrWord::declare(&mut a, &format!("cfg{i}"), 0x1000 + i as u32))
            .collect()
    } else {
        Vec::new()
    };

    let ta = a.new_named_label("thread_a");
    let tb = a.new_named_label("thread_b");
    let finale = a.new_named_label("finale");
    let k = Kernel::emit_prologue(&mut a, &[ta, tb], finale, protection);
    let mutex = k.declare_sem(&mut a, "mutex", true);

    let emit_round =
        |a: &mut Asm, k: &Kernel, c_first: usize, d1: i16, c_second: usize, d2: i16| {
            k.emit_sem_wait(a, mutex);
            // Hardened: verify the whole protected state on critical-section
            // entry (the expensive part).
            for w in &pool {
                w.emit_scrub(a, Reg::R1, Reg::R2, Reg::R3, Reg::R14);
            }
            counters[c_first].emit_add(a, d1);
            emit_log_append(a, log, pos);
            counters[c_second].emit_add(a, d2);
            emit_log_append(a, log, pos);
            // ...and again on exit, so no corruption survives a critical
            // section unchecked.
            for w in &pool {
                w.emit_scrub(a, Reg::R1, Reg::R2, Reg::R3, Reg::R14);
            }
            k.emit_sem_post(a, mutex);
            k.emit_yield(a);
        };

    // Thread A: counters 0 and 1.
    a.bind(ta);
    a.li(Reg::R4, ROUNDS);
    let la = a.label_here();
    emit_round(&mut a, &k, 0, 3, 1, 5);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, la);
    k.emit_thread_exit(&mut a);

    // Thread B: counters 2 and 3.
    a.bind(tb);
    a.li(Reg::R4, ROUNDS);
    let lbm = a.label_here();
    emit_round(&mut a, &k, 2, 7, 3, 11);
    a.addi(Reg::R4, Reg::R4, -1);
    a.bne(Reg::R4, Reg::R0, lbm);
    k.emit_thread_exit(&mut a);

    // Finale: dump the log, then the counters.
    a.bind(finale);
    a.li(Reg::R4, 0);
    a.li(Reg::R6, LOG_BYTES as i32);
    let dump = a.label_here();
    a.addi(Reg::R2, Reg::R4, log.offset());
    a.lb(Reg::R5, Reg::R2, 0);
    a.serial_out(Reg::R5);
    a.addi(Reg::R4, Reg::R4, 1);
    a.bne(Reg::R4, Reg::R6, dump);
    for c in &counters {
        c.emit_load(&mut a, Reg::R5);
        a.serial_out(Reg::R5);
    }
    a.halt(0);

    k.emit_runtime(&mut a);
    a.build().expect("sync2 is statically correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    fn run(v: Variant) -> Machine {
        let mut m = Machine::new(&sync2(v));
        assert_eq!(m.run(10_000_000), RunStatus::Halted { code: 0 });
        m
    }

    #[test]
    fn log_and_counters_are_deterministic() {
        let m = run(Variant::Baseline);
        let out = m.serial();
        assert_eq!(out.len() as u32, LOG_BYTES + 4);
        // Final counter values: A adds 3 and 5, B adds 7 and 11, 5 rounds.
        let tail = &out[LOG_BYTES as usize..];
        assert_eq!(tail, &[15, 25, 35, 55]);
        // The log's last entries per counter match the final values.
        assert!(out[..LOG_BYTES as usize].contains(&15));
        assert!(out[..LOG_BYTES as usize].contains(&55));
    }

    #[test]
    fn variants_agree_on_output() {
        let base = run(Variant::Baseline);
        let hard = run(Variant::SumDmr);
        assert_eq!(base.serial(), hard.serial());
        assert_eq!(hard.detect_count(), 0);
    }

    #[test]
    fn hardened_runtime_explodes() {
        // The paper's Figure 2g: sync2's hardened variant has an extremely
        // increased runtime — the root of its failure-count worsening.
        let base = run(Variant::Baseline);
        let hard = run(Variant::SumDmr);
        let ratio = hard.cycle() as f64 / base.cycle() as f64;
        assert!(ratio > 3.0, "runtime ratio only {ratio:.2}");
    }
}
