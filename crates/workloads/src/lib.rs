#![warn(missing_docs)]

//! Benchmark programs for fault-injection evaluation.
//!
//! * [`hi`] — the paper's §IV "Hi" micro-benchmark (Figure 3), with the
//!   DFT/DFT′ dilution variants that expose the Fault-Space Dilution
//!   Delusion.
//! * [`bin_sem2`] / [`sync2`] — re-creations of the eCos kernel-test
//!   workloads of §II-D on the [`kernel`] substrate, each in a baseline
//!   and a SUM+DMR-hardened variant (Figure 2).
//! * [`bubble_sort`], [`crc32`], [`matmul`], [`fib`], [`strrev`],
//!   [`queue`] — additional single-purpose benchmarks broadening the
//!   suite, some with hardened variants.
//!
//! All benchmarks are deterministic run-to-completion programs with
//! serial output, as the machine and failure model of §II require.
//!
//! # Examples
//!
//! ```
//! use sofi_workloads::{hi, Variant};
//! use sofi_machine::Machine;
//!
//! let mut m = Machine::new(&hi());
//! m.run(100);
//! assert_eq!(m.serial(), b"Hi");
//! # let _ = Variant::Baseline;
//! ```

mod bin_sem2;
mod binsearch;
mod crc32;
mod fib;
mod hi;
pub mod kernel;
mod matmul;
mod queue;
mod quicksort;
mod rle;
mod sensor;
mod sort;
mod strrev;
mod sync2;

pub use bin_sem2::{bin_sem2, bin_sem2_param, bin_sem2_reference};
pub use binsearch::{binsearch, binsearch_reference};
pub use crc32::{crc32, crc32_reference};
pub use fib::{fib, fib_reference};
pub use hi::{hi, hi_dft, hi_dft_prime};
pub use kernel::KernelProtection;
pub use matmul::{matmul, matmul_reference};
pub use queue::queue;
pub use quicksort::quicksort;
pub use rle::rle;
pub use sensor::{sensor, sensor_events, SCHEDULE as SENSOR_SCHEDULE};
pub use sort::{bubble_sort, bubble_sort_tmr};
pub use strrev::strrev;
pub use sync2::{sync2, sync2_param};

use sofi_isa::Program;

/// Which build of a benchmark to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Unprotected baseline.
    Baseline,
    /// Critical data protected by checksummed duplication
    /// ([`sofi_harden::ProtectedWord`], the paper's "SUM+DMR").
    SumDmr,
}

/// The benchmark pairs evaluated in the paper's Figure 2 plus this repo's
/// extensions: `(name, baseline, hardened)`.
pub fn benchmark_pairs() -> Vec<(&'static str, Program, Program)> {
    vec![
        (
            "bin_sem2",
            bin_sem2(Variant::Baseline),
            bin_sem2(Variant::SumDmr),
        ),
        ("sync2", sync2(Variant::Baseline), sync2(Variant::SumDmr)),
        ("fib", fib(Variant::Baseline), fib(Variant::SumDmr)),
        ("bubble_sort", bubble_sort(), bubble_sort_tmr()),
    ]
}

/// Every baseline benchmark in the suite (for broad test sweeps).
pub fn all_baselines() -> Vec<Program> {
    vec![
        hi(),
        bin_sem2(Variant::Baseline),
        sync2(Variant::Baseline),
        bubble_sort(),
        crc32(),
        matmul(),
        fib(Variant::Baseline),
        strrev(),
        queue(),
        quicksort(),
        binsearch(),
        rle(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    #[test]
    fn every_baseline_terminates_cleanly() {
        for p in all_baselines() {
            let mut m = Machine::new(&p);
            assert_eq!(
                m.run(10_000_000),
                RunStatus::Halted { code: 0 },
                "benchmark {} did not halt cleanly",
                p.name
            );
            assert!(
                !m.serial().is_empty(),
                "benchmark {} produced no output",
                p.name
            );
        }
    }

    #[test]
    fn hardened_variants_preserve_output() {
        for (name, base, hard) in benchmark_pairs() {
            let mut mb = Machine::new(&base);
            let mut mh = Machine::new(&hard);
            assert_eq!(mb.run(10_000_000), RunStatus::Halted { code: 0 });
            assert_eq!(mh.run(10_000_000), RunStatus::Halted { code: 0 });
            assert_eq!(
                mb.serial(),
                mh.serial(),
                "hardening changed {name}'s output"
            );
            assert!(
                mh.cycle() > mb.cycle(),
                "{name}: hardening should cost runtime"
            );
            assert!(
                hard.ram_size > base.ram_size,
                "{name}: hardening should cost memory"
            );
        }
    }
}
