//! A tiny cooperative threading kernel, built in assembly.
//!
//! The paper's real-world benchmarks (`bin_sem2`, `sync2`) are eCos kernel
//! test programs: multiple threads synchronizing through binary
//! semaphores. This module provides the substrate to re-create them on the
//! sofi machine: round-robin cooperative threads with full register
//! context switching, binary semaphores, and run-to-completion
//! termination. All kernel state (task control blocks, scheduler index,
//! semaphores) lives in RAM and is therefore part of the fault space —
//! just like a real kernel's.
//!
//! The mechanism evaluated in the paper (its reference \[8]) applied
//! SUM+DMR protection to *eCos kernel objects* via aspects. The kernel
//! therefore supports [`KernelProtection::SumDmr`]: the scheduler index,
//! the exit counter and every saved task-control-block word are stored as
//! checksummed duplicates, verified (and corrected, with a detection
//! signal) on every restore.
//!
//! # Register conventions
//!
//! | registers | role |
//! |---|---|
//! | `r1`–`r3` | kernel scratch: clobbered by `yield`/semaphore ops |
//! | `r4`–`r13` | thread-persistent: saved/restored across yields |
//! | `r14` | volatile temporary (clobbered by yields and kernel ops) |
//! | `r15` | link register |

use sofi_harden::{Shield, SUMDMR_ABORT_CODE};
use sofi_isa::{Asm, DataLabel, Label, Reg};

/// Saved context: `ra` plus `r4`..`r13` (11 words).
const CTX_WORDS: u32 = 11;

/// Whether the kernel's own state is SUM+DMR-protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelProtection {
    /// Plain kernel state (baseline builds).
    None,
    /// Scheduler index, exit counter and TCB context words stored as
    /// checksummed duplicates (hardened builds).
    SumDmr,
}

/// The emitted kernel: handles to its RAM structures and code entry
/// points.
///
/// Usage protocol (see [`crate::bin_sem2`] for a complete benchmark):
///
/// 1. create thread-entry labels,
/// 2. [`Kernel::emit_prologue`] — scheduler state + TCB initialization,
///    jumps to thread 0,
/// 3. emit each thread body (using [`Kernel::emit_yield`],
///    [`Kernel::emit_sem_wait`], [`Kernel::emit_sem_post`],
///    [`Kernel::emit_thread_exit`]),
/// 4. [`Kernel::emit_runtime`] — the context-switch routine and the
///    termination stub.
#[derive(Debug, Clone)]
pub struct Kernel {
    protection: KernelProtection,
    /// Scheduler: index of the running thread.
    cur: Shield,
    /// Count of threads that called `thread_exit`.
    done: Shield,
    /// TCB array base.
    tcbs: DataLabel,
    /// The yield routine's entry label.
    yield_entry: Label,
    /// Where the last exiting thread jumps (the "finale": output dump +
    /// halt).
    finale: Label,
    nthreads: u32,
}

impl Kernel {
    /// Bytes per saved context word (1 or 3 words of backing store).
    fn slot_bytes(&self) -> u32 {
        match self.protection {
            KernelProtection::None => 4,
            KernelProtection::SumDmr => 12,
        }
    }

    /// Bytes per TCB.
    fn tcb_bytes(&self) -> u32 {
        CTX_WORDS * self.slot_bytes()
    }

    /// Allocates kernel data and emits the boot code: TCB `ra` slots are
    /// initialized with each thread's entry point and control jumps to
    /// thread 0. Call before emitting thread bodies.
    ///
    /// `finale` is where the *last* exiting thread jumps — bind it after
    /// the thread bodies and emit final output plus `halt` there.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn emit_prologue(
        a: &mut Asm,
        entries: &[Label],
        finale: Label,
        protection: KernelProtection,
    ) -> Kernel {
        assert!(!entries.is_empty(), "kernel needs at least one thread");
        let nthreads = entries.len() as u32;
        let protected = protection == KernelProtection::SumDmr;
        let cur = Shield::declare(a, "k_cur", 0, protected);
        let done = Shield::declare(a, "k_done", 0, protected);
        let slot_bytes = if protected { 12 } else { 4 };
        let tcbs = a.data_space("k_tcbs", nthreads * CTX_WORDS * slot_bytes);
        let kernel = Kernel {
            protection,
            cur,
            done,
            tcbs,
            yield_entry: a.new_named_label("k_yield"),
            finale,
            nthreads,
        };

        // Boot: plant each thread's entry address into its TCB ra slot.
        for (i, &entry) in entries.iter().enumerate() {
            a.li_code(Reg::R1, entry);
            kernel.emit_ctx_store(a, Reg::R1, i as u32 * kernel.tcb_bytes(), 0);
        }
        // Thread 0 starts running directly.
        a.j(entries[0]);
        kernel
    }

    /// Stores context word `word` of the TCB at byte offset `tcb_off`
    /// (absolute addressing from `r0`; boot-time only). Clobbers `r3`.
    fn emit_ctx_store(&self, a: &mut Asm, src: Reg, tcb_off: u32, word: u32) {
        let base = self.tcbs.at(tcb_off + word * self.slot_bytes());
        match self.protection {
            KernelProtection::None => {
                a.sw(src, Reg::R0, base.offset());
            }
            KernelProtection::SumDmr => {
                a.sw(src, Reg::R0, base.offset());
                a.sw(src, Reg::R0, base.at(4).offset());
                a.sub(Reg::R3, Reg::R0, src);
                a.sw(Reg::R3, Reg::R0, base.at(8).offset());
            }
        }
    }

    /// Number of threads.
    pub fn nthreads(&self) -> u32 {
        self.nthreads
    }

    /// The TCB array base (for diagnostics and vulnerability maps).
    pub fn tcbs(&self) -> DataLabel {
        self.tcbs
    }

    /// Declares a binary semaphore compatible with this kernel's
    /// protection level.
    pub fn declare_sem(&self, a: &mut Asm, name: &str, initially_free: bool) -> Shield {
        Shield::declare(
            a,
            name,
            initially_free as u32,
            self.protection == KernelProtection::SumDmr,
        )
    }

    /// Emits a cooperative yield: saves this thread's context, switches to
    /// the next runnable thread. Clobbers `r1`–`r3` and `r14`.
    pub fn emit_yield(&self, a: &mut Asm) {
        a.jal(Reg::RA, self.yield_entry);
    }

    /// Emits a binary-semaphore wait (P): spins with yields until the
    /// semaphore is nonzero, then claims it. Clobbers `r1`–`r3`, `r14`.
    pub fn emit_sem_wait(&self, a: &mut Asm, sem: Shield) {
        let retry = a.label_here();
        let acquired = a.new_label();
        sem.emit_load(a, Reg::R1, Reg::R2, Reg::R3);
        a.bne(Reg::R1, Reg::R0, acquired);
        self.emit_yield(a);
        a.j(retry);
        a.bind(acquired);
        sem.emit_store(a, Reg::R0, Reg::R1);
    }

    /// Emits a binary-semaphore post (V). Clobbers `r1`, `r2`.
    pub fn emit_sem_post(&self, a: &mut Asm, sem: Shield) {
        a.li(Reg::R1, 1);
        sem.emit_store(a, Reg::R1, Reg::R2);
    }

    /// Emits thread termination: bumps the done counter; the last thread
    /// out jumps to the finale, earlier ones yield forever. Clobbers
    /// `r1`–`r3`, `r14`.
    pub fn emit_thread_exit(&self, a: &mut Asm) {
        self.done.emit_load(a, Reg::R1, Reg::R2, Reg::R3);
        a.addi(Reg::R1, Reg::R1, 1);
        self.done.emit_store(a, Reg::R1, Reg::R2);
        a.li(Reg::R2, self.nthreads as i32);
        a.beq(Reg::R1, Reg::R2, self.finale);
        let spin = a.label_here();
        self.emit_yield(a);
        a.j(spin);
    }

    /// Emits the kernel runtime: the context-switch routine. Call exactly
    /// once, after all thread bodies.
    pub fn emit_runtime(&self, a: &mut Asm) {
        let saved: [Reg; 11] = [
            Reg::RA,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::R13,
        ];
        let slot = self.slot_bytes() as i16;
        let abort = a.new_named_label("k_ctx_abort");

        a.bind(self.yield_entry);
        // r1 = current index, r2 = &tcb[cur].
        self.cur.emit_load(a, Reg::R1, Reg::R2, Reg::R3);
        a.li(Reg::R2, self.tcb_bytes() as i32);
        a.mul(Reg::R2, Reg::R1, Reg::R2);
        a.addi(Reg::R2, Reg::R2, self.tcbs.offset());
        // Save context: resume pc (ra) + persistent registers.
        for (i, &r) in saved.iter().enumerate() {
            let off = slot * i as i16;
            match self.protection {
                KernelProtection::None => {
                    a.sw(r, Reg::R2, off);
                }
                KernelProtection::SumDmr => {
                    a.sw(r, Reg::R2, off);
                    a.sw(r, Reg::R2, off + 4);
                    a.sub(Reg::R3, Reg::R0, r);
                    a.sw(Reg::R3, Reg::R2, off + 8);
                }
            }
        }
        // Round-robin advance.
        a.addi(Reg::R1, Reg::R1, 1);
        a.li(Reg::R3, self.nthreads as i32);
        let no_wrap = a.new_label();
        a.bne(Reg::R1, Reg::R3, no_wrap);
        a.li(Reg::R1, 0);
        a.bind(no_wrap);
        self.cur.emit_store(a, Reg::R1, Reg::R3);
        // Restore the next thread's context.
        a.li(Reg::R2, self.tcb_bytes() as i32);
        a.mul(Reg::R2, Reg::R1, Reg::R2);
        a.addi(Reg::R2, Reg::R2, self.tcbs.offset());
        for (i, &r) in saved.iter().enumerate() {
            let off = slot * i as i16;
            match self.protection {
                KernelProtection::None => {
                    a.lw(r, Reg::R2, off);
                }
                KernelProtection::SumDmr => {
                    // r ← primary; verify against duplicate, arbitrate by
                    // checksum on divergence (mirrors ProtectedWord::emit_load
                    // with base-register addressing).
                    let next = a.new_label();
                    let use_copy = a.new_label();
                    let signal = a.new_label();
                    a.lw(r, Reg::R2, off);
                    a.lw(Reg::R3, Reg::R2, off + 4);
                    a.beq(r, Reg::R3, next);
                    a.lw(Reg::R14, Reg::R2, off + 8);
                    a.sub(Reg::R14, Reg::R0, Reg::R14);
                    a.beq(Reg::R3, Reg::R14, use_copy);
                    a.bne(r, Reg::R14, abort);
                    a.j(signal);
                    a.bind(use_copy);
                    a.mv(r, Reg::R3);
                    a.bind(signal);
                    a.detect_signal(r);
                    a.bind(next);
                }
            }
        }
        a.jalr(Reg::R0, Reg::RA, 0);
        if self.protection == KernelProtection::SumDmr {
            a.bind(abort);
            a.halt(SUMDMR_ABORT_CODE);
        }
        // (The abort label is never referenced in unprotected builds.)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::{Machine, RunStatus};

    /// Two threads alternately printing their ids, three times each.
    fn ping_pong(protection: KernelProtection) -> sofi_isa::Program {
        let mut a = Asm::with_name("pingpong");
        let t0 = a.new_named_label("t0");
        let t1 = a.new_named_label("t1");
        let finale = a.new_named_label("finale");
        let k = Kernel::emit_prologue(&mut a, &[t0, t1], finale, protection);

        for (entry, ch) in [(t0, b'A'), (t1, b'B')] {
            a.bind(entry);
            a.li(Reg::R4, 3);
            let l = a.label_here();
            a.li(Reg::R14, ch as i32);
            a.serial_out(Reg::R14);
            k.emit_yield(&mut a);
            a.addi(Reg::R4, Reg::R4, -1);
            a.bne(Reg::R4, Reg::R0, l);
            k.emit_thread_exit(&mut a);
        }

        a.bind(finale);
        a.li(Reg::R14, b'!' as i32);
        a.serial_out(Reg::R14);
        a.halt(0);

        k.emit_runtime(&mut a);
        a.build().unwrap()
    }

    #[test]
    fn threads_interleave_round_robin() {
        for prot in [KernelProtection::None, KernelProtection::SumDmr] {
            let mut m = Machine::new(&ping_pong(prot));
            assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
            assert_eq!(m.serial(), b"ABABAB!", "{prot:?}");
            assert_eq!(m.detect_count(), 0);
        }
    }

    #[test]
    fn protected_kernel_costs_cycles_and_ram() {
        let mut plain = Machine::new(&ping_pong(KernelProtection::None));
        let mut hard = Machine::new(&ping_pong(KernelProtection::SumDmr));
        plain.run(100_000);
        hard.run(100_000);
        assert!(hard.cycle() > plain.cycle());
        assert!(hard.ram().size() > plain.ram().size());
    }

    #[test]
    fn protected_kernel_corrects_tcb_corruption() {
        let p = ping_pong(KernelProtection::SumDmr);
        // Flip every bit of the TCB area (one run each) right at boot;
        // the kernel must correct or ignore each of them.
        let tcbs_addr = p.symbol("k_tcbs").unwrap();
        let tcb_bytes = 2 * 11 * 12;
        let mut corrected = 0;
        for byte in 0..tcb_bytes {
            let mut m = Machine::new(&p);
            m.run_to(40); // past boot, into the first thread
            m.flip_bit((tcbs_addr + byte) as u64 * 8 + 3);
            let status = m.run(100_000);
            assert_eq!(status, RunStatus::Halted { code: 0 }, "byte {byte}");
            assert_eq!(m.serial(), b"ABABAB!", "byte {byte}");
            corrected += u64::from(m.detect_count() > 0);
        }
        assert!(corrected > 0, "some flips must hit live context words");
    }

    #[test]
    fn persistent_registers_survive_yields() {
        // Each thread accumulates into r5 across yields; sums differ per
        // thread and must not bleed over.
        let mut a = Asm::with_name("ctx");
        let t0 = a.new_label();
        let t1 = a.new_label();
        let finale = a.new_label();
        let k = Kernel::emit_prologue(&mut a, &[t0, t1], finale, KernelProtection::None);

        for (entry, step) in [(t0, 1i16), (t1, 3i16)] {
            a.bind(entry);
            a.li(Reg::R4, 5);
            a.li(Reg::R5, 0);
            let l = a.label_here();
            a.addi(Reg::R5, Reg::R5, step);
            k.emit_yield(&mut a);
            a.addi(Reg::R4, Reg::R4, -1);
            a.bne(Reg::R4, Reg::R0, l);
            a.serial_out(Reg::R5);
            k.emit_thread_exit(&mut a);
        }

        a.bind(finale);
        a.halt(0);
        k.emit_runtime(&mut a);

        let mut m = Machine::new(&a.build().unwrap());
        assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 });
        assert_eq!(m.serial(), &[5, 15]);
    }

    #[test]
    fn semaphores_enforce_alternation() {
        for prot in [KernelProtection::None, KernelProtection::SumDmr] {
            let mut a = Asm::with_name("sem");
            let t0 = a.new_label();
            let t1 = a.new_label();
            let finale = a.new_label();
            let k = Kernel::emit_prologue(&mut a, &[t0, t1], finale, prot);
            let sem0 = k.declare_sem(&mut a, "sem0", false); // t0 blocked
            let sem1 = k.declare_sem(&mut a, "sem1", true); // t1 first

            for (entry, ch, own, other) in [(t0, b'x', sem0, sem1), (t1, b'y', sem1, sem0)] {
                a.bind(entry);
                a.li(Reg::R4, 2);
                let l = a.label_here();
                k.emit_sem_wait(&mut a, own);
                a.li(Reg::R14, ch as i32);
                a.serial_out(Reg::R14);
                k.emit_sem_post(&mut a, other);
                a.addi(Reg::R4, Reg::R4, -1);
                a.bne(Reg::R4, Reg::R0, l);
                k.emit_thread_exit(&mut a);
            }

            a.bind(finale);
            a.halt(0);
            k.emit_runtime(&mut a);

            let mut m = Machine::new(&a.build().unwrap());
            assert_eq!(m.run(100_000), RunStatus::Halted { code: 0 }, "{prot:?}");
            assert_eq!(m.serial(), b"yxyx", "{prot:?}");
        }
    }
}
