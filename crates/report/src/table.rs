//! Aligned text tables.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use sofi_report::Table;
/// let mut t = Table::new(vec!["benchmark", "F"]);
/// t.row(vec!["bin_sem2".into(), "123".into()]);
/// t.row(vec!["sync2".into(), "4567".into()]);
/// let s = t.to_string();
/// assert!(s.contains("bin_sem2"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%eE[], ".contains(c))
                    && !cell.is_empty();
                if numeric && i > 0 {
                    write!(f, "{cell:>width$}", width = widths[i])?;
                } else {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_shape() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines padded to equal visual width for data columns.
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
