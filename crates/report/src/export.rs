//! JSON export of result data — self-contained, no external dependencies.
//!
//! Experiment binaries persist campaign and sampling results as JSON
//! artifacts so EXPERIMENTS.md numbers are reproducible and diffable. The
//! writer lives in-tree so the export path works in hermetic builds; the
//! output format matches the former `serde_json` pretty printer (2-space
//! indent, `"key": value`), keeping existing artifacts diffable.
//!
//! Three layers:
//!
//! * [`Json`] — a plain JSON value tree with a pretty printer and a small
//!   parser (the parser exists for tests and for consumers that want to
//!   inspect artifacts without a full deserialization framework);
//! * [`ToJson`] — the conversion trait; implemented here for the suite's
//!   result types and derivable for flat structs via [`impl_to_json!`];
//! * [`to_json`] / [`write_json`] — the entry points the CLI and the
//!   bench binaries use.

use sofi_campaign::{
    BurstSampledResult, CampaignResult, ExecutorStats, ExperimentResult, FaultDomain, Outcome,
    SampledOutcome, SampledResult, SamplingMode,
};
use sofi_machine::Trap;
use sofi_metrics::Table1Row;
use sofi_space::{Experiment, FaultCoord, FaultSpace};
use sofi_telemetry::{Bucket, HistogramSnapshot, Snapshot};
use std::fmt;

/// Serializes any exportable structure to pretty-printed JSON.
///
/// # Examples
///
/// ```
/// use sofi_space::FaultSpace;
/// let json = sofi_report::to_json(&FaultSpace::new(8, 16));
/// assert!(json.contains("\"cycles\": 8"));
/// ```
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_json().pretty()
}

/// Serializes to a writer (e.g. a results file).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json<T: ToJson, W: std::io::Write>(value: &T, mut writer: W) -> std::io::Result<()> {
    writer.write_all(to_json(value).as_bytes())
}

/// A JSON value tree.
///
/// Object members keep insertion order (a `Vec` of pairs, not a map), so
/// exported artifacts list fields in declaration order like the former
/// derive-based serializer did.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (values `>= 0` normalize to [`Json::U64`]).
    I64(i64),
    /// A floating-point number. Non-finite values print as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index (`None` for non-arrays and out of range).
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The integer value, if this is a number representable as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation (the `serde_json` style the
    /// suite's artifacts have always used).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = itoa_buffer();
                out.push_str(write_u64(&mut buf, *v));
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, so a
                    // float field stays a float across a round-trip.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Supports the full value grammar the writer emits (and standard JSON
    /// in general: escapes, `\uXXXX`, exponents). Trailing garbage is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn itoa_buffer() -> [u8; 20] {
    [0; 20]
}

fn write_u64(buf: &mut [u8; 20], mut v: u64) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into a [`Json`] tree.
///
/// Implemented for primitives, strings, options, slices and the suite's
/// result types. Flat report structs can derive an implementation with
/// [`impl_to_json!`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
        }
    )*};
}

impl_to_json_unsigned!(u8, u16, u32, u64, usize);
impl_to_json_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Implements [`ToJson`] for a struct with public fields, serializing every
/// listed field in order under its own name:
///
/// ```
/// struct Row { benchmark: String, failures: u64 }
/// sofi_report::impl_to_json!(Row { benchmark, failures });
/// let row = Row { benchmark: "hi".into(), failures: 48 };
/// assert!(sofi_report::to_json(&row).contains("\"failures\": 48"));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::export::ToJson for $ty {
            fn to_json(&self) -> $crate::export::Json {
                $crate::export::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::export::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
    };
}

// --- Suite result types -------------------------------------------------
//
// Shapes match what the former serde derives produced: structs as objects
// in field order, unit enum variants as strings, data-carrying variants as
// single-key objects.

impl ToJson for FaultCoord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycle".into(), self.cycle.to_json()),
            ("bit".into(), self.bit.to_json()),
        ])
    }
}

impl ToJson for FaultSpace {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".into(), self.cycles.to_json()),
            ("bits".into(), self.bits.to_json()),
        ])
    }
}

impl ToJson for Experiment {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), self.id.to_json()),
            ("coord".into(), self.coord.to_json()),
            ("weight".into(), self.weight.to_json()),
        ])
    }
}

impl ToJson for FaultDomain {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                FaultDomain::Memory => "Memory",
                FaultDomain::RegisterFile => "RegisterFile",
            }
            .into(),
        )
    }
}

impl ToJson for SamplingMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SamplingMode::UniformRaw => "UniformRaw",
                SamplingMode::WeightedClasses => "WeightedClasses",
                SamplingMode::BiasedPerClass => "BiasedPerClass",
            }
            .into(),
        )
    }
}

impl ToJson for Trap {
    fn to_json(&self) -> Json {
        match *self {
            Trap::Misaligned { addr, width } => Json::Obj(vec![(
                "Misaligned".into(),
                Json::Obj(vec![
                    ("addr".into(), addr.to_json()),
                    ("width".into(), Json::Str(format!("{width:?}"))),
                ]),
            )]),
            Trap::OutOfRange { addr } => Json::Obj(vec![(
                "OutOfRange".into(),
                Json::Obj(vec![("addr".into(), addr.to_json())]),
            )]),
            Trap::MmioRead { addr } => Json::Obj(vec![(
                "MmioRead".into(),
                Json::Obj(vec![("addr".into(), addr.to_json())]),
            )]),
            Trap::BadJump { target } => Json::Obj(vec![(
                "BadJump".into(),
                Json::Obj(vec![("target".into(), target.to_json())]),
            )]),
            Trap::SerialOverflow => Json::Str("SerialOverflow".into()),
        }
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        match *self {
            Outcome::NoEffect => Json::Str("NoEffect".into()),
            Outcome::DetectedCorrected => Json::Str("DetectedCorrected".into()),
            Outcome::SilentDataCorruption => Json::Str("SilentDataCorruption".into()),
            Outcome::DetectedUnrecoverable => Json::Str("DetectedUnrecoverable".into()),
            Outcome::Timeout => Json::Str("Timeout".into()),
            Outcome::OutputFlood => Json::Str("OutputFlood".into()),
            Outcome::AbnormalHalt { code } => Json::Obj(vec![(
                "AbnormalHalt".into(),
                Json::Obj(vec![("code".into(), code.to_json())]),
            )]),
            Outcome::CpuException(trap) => Json::Obj(vec![("CpuException".into(), trap.to_json())]),
        }
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), self.experiment.to_json()),
            ("outcome".into(), self.outcome.to_json()),
        ])
    }
}

impl ToJson for CampaignResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), self.benchmark.to_json()),
            ("domain".into(), self.domain.to_json()),
            ("space".into(), self.space.to_json()),
            (
                "known_benign_weight".into(),
                self.known_benign_weight.to_json(),
            ),
            ("golden_cycles".into(), self.golden_cycles.to_json()),
            ("results".into(), self.results.to_json()),
        ])
    }
}

impl ToJson for SampledOutcome {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), self.experiment.to_json()),
            ("hits".into(), self.hits.to_json()),
            ("outcome".into(), self.outcome.to_json()),
        ])
    }
}

impl ToJson for SampledResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), self.benchmark.to_json()),
            ("domain".into(), self.domain.to_json()),
            ("mode".into(), self.mode.to_json()),
            ("draws".into(), self.draws.to_json()),
            ("population".into(), self.population.to_json()),
            ("benign_draws".into(), self.benign_draws.to_json()),
            ("outcomes".into(), self.outcomes.to_json()),
        ])
    }
}

impl ToJson for BurstSampledResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), self.benchmark.to_json()),
            ("width".into(), self.width.to_json()),
            ("draws".into(), self.draws.to_json()),
            ("population".into(), self.population.to_json()),
            ("benign_skips".into(), self.benign_skips.to_json()),
            ("failure_draws".into(), self.failure_draws.to_json()),
            ("by_kind".into(), self.by_kind.to_json()),
        ])
    }
}

impl ToJson for ExecutorStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".into(), self.workers.to_json()),
            ("experiments".into(), self.experiments.to_json()),
            ("pristine_cycles".into(), self.pristine_cycles.to_json()),
            ("faulted_cycles".into(), self.faulted_cycles.to_json()),
            ("converged_early".into(), self.converged_early.to_json()),
            (
                "faulted_cycles_saved".into(),
                self.faulted_cycles_saved.to_json(),
            ),
            ("memo_hits".into(), self.memo_hits.to_json()),
            ("memo_misses".into(), self.memo_misses.to_json()),
            (
                "memoized_cycles_saved".into(),
                self.memoized_cycles_saved.to_json(),
            ),
        ])
    }
}

/// The artifact exported for a finished service job: the daemon's job id
/// next to the merged campaign result and the executor counters
/// accumulated over all journaled batches. This is the journal → export
/// bridge `sofi submit --wait --out <file>` writes.
pub fn job_artifact(job: u64, result: &CampaignResult, stats: &ExecutorStats) -> Json {
    Json::Obj(vec![
        ("job".into(), job.to_json()),
        ("result".into(), result.to_json()),
        ("stats".into(), stats.to_json()),
    ])
}

impl ToJson for Bucket {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lo".into(), self.lo.to_json()),
            ("hi".into(), self.hi.to_json()),
            ("count".into(), self.count.to_json()),
        ])
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), self.count.to_json()),
            ("sum".into(), self.sum.to_json()),
            ("min".into(), self.min.to_json()),
            ("max".into(), self.max.to_json()),
            ("mean".into(), self.mean().to_json()),
            ("p50".into(), self.quantile(0.5).to_json()),
            ("p99".into(), self.quantile(0.99).to_json()),
            ("buckets".into(), self.buckets.to_json()),
        ])
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let entries = |pairs: &[(String, u64)]| {
            Json::Obj(
                pairs
                    .iter()
                    .map(|(name, v)| (name.clone(), v.to_json()))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("counters".into(), entries(&self.counters)),
            ("gauges".into(), entries(&self.gauges)),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Schema tag stamped into every [`telemetry_artifact`]. Bump the `/v1`
/// suffix on any incompatible change to the snapshot JSON shape.
pub const TELEMETRY_SCHEMA: &str = "sofi.telemetry.snapshot/v1";

/// The artifact exported for a telemetry snapshot: the schema tag, then
/// the counters, gauges and histograms as name-keyed objects (names are
/// sorted — registry snapshots come out that way — so artifacts diff
/// cleanly between runs). Histograms carry their occupied buckets plus
/// derived `mean`/`p50`/`p99` so consumers need no bucket math.
pub fn telemetry_artifact(snapshot: &Snapshot) -> Json {
    let Json::Obj(mut fields) = snapshot.to_json() else {
        unreachable!("Snapshot serializes as an object");
    };
    let mut obj = vec![("schema".into(), Json::Str(TELEMETRY_SCHEMA.into()))];
    obj.append(&mut fields);
    Json::Obj(obj)
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("k".into(), self.k.to_json()),
            ("probability".into(), self.probability.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_result_round_trips_through_parser() {
        let r = CampaignResult {
            benchmark: "t".into(),
            domain: FaultDomain::Memory,
            space: FaultSpace::new(2, 8),
            known_benign_weight: 10,
            golden_cycles: 2,
            results: vec![ExperimentResult {
                experiment: Experiment {
                    id: 0,
                    coord: FaultCoord { cycle: 1, bit: 3 },
                    weight: 2,
                },
                outcome: Outcome::SilentDataCorruption,
            }],
        };
        let json = to_json(&r);
        let back = Json::parse(&json).unwrap();
        assert_eq!(back, r.to_json());
        assert_eq!(back.get("benchmark").unwrap().as_str(), Some("t"));
        assert_eq!(
            back.get("space").unwrap().get("bits").unwrap().as_u64(),
            Some(8)
        );
        let first = back.get("results").unwrap().at(0).unwrap();
        assert_eq!(
            first.get("outcome").unwrap().as_str(),
            Some("SilentDataCorruption")
        );
        assert_eq!(
            first
                .get("experiment")
                .unwrap()
                .get("coord")
                .unwrap()
                .get("cycle")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn writer_variant_works() {
        let mut buf = Vec::new();
        write_json(&FaultSpace::new(1, 1), &mut buf).unwrap();
        assert!(!buf.is_empty());
    }

    #[test]
    fn pretty_format_matches_previous_exporter() {
        // Two-space indent, space after the colon — artifacts stay diffable
        // against ones produced by earlier revisions.
        let json = to_json(&FaultSpace::new(8, 16));
        assert_eq!(json, "{\n  \"cycles\": 8,\n  \"bits\": 16\n}");
    }

    #[test]
    fn data_carrying_outcomes_serialize_tagged() {
        let halt = Outcome::AbnormalHalt { code: 9 }.to_json().pretty();
        assert!(halt.contains("\"AbnormalHalt\""), "{halt}");
        assert!(halt.contains("\"code\": 9"), "{halt}");
        let trap = Outcome::CpuException(Trap::OutOfRange { addr: 16 })
            .to_json()
            .pretty();
        assert!(trap.contains("\"CpuException\""), "{trap}");
        assert!(trap.contains("\"OutOfRange\""), "{trap}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0C}\r\u{1}é☃\u{1F600}";
        let mut out = String::new();
        write_escaped(&mut out, tricky);
        match Json::parse(&out).unwrap() {
            Json::Str(s) => assert_eq!(s, tricky),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn parser_handles_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn float_values_keep_a_decimal_point() {
        assert_eq!(Json::F64(1.0).pretty(), "1.0");
        assert_eq!(Json::F64(f64::NAN).pretty(), "null");
        assert_eq!(Json::parse(&Json::F64(0.1).pretty()), Ok(Json::F64(0.1)));
    }

    #[test]
    fn impl_to_json_macro_serializes_fields_in_order() {
        struct Row {
            name: String,
            count: u64,
            ratio: f64,
        }
        crate::impl_to_json!(Row { name, count, ratio });
        let json = to_json(&Row {
            name: "hi".into(),
            count: 3,
            ratio: 0.5,
        });
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("hi"));
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("ratio").unwrap().as_f64(), Some(0.5));
        assert!(json.find("\"name\"").unwrap() < json.find("\"count\"").unwrap());
    }

    #[test]
    fn job_artifact_bridges_service_results() {
        let result = CampaignResult {
            benchmark: "t".into(),
            domain: FaultDomain::RegisterFile,
            space: FaultSpace::new(4, 8),
            known_benign_weight: 0,
            golden_cycles: 4,
            results: vec![],
        };
        let stats = ExecutorStats {
            workers: 2,
            experiments: 17,
            ..ExecutorStats::default()
        };
        let json = job_artifact(42, &result, &stats).pretty();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("job").unwrap().as_u64(), Some(42));
        assert_eq!(
            parsed
                .get("result")
                .unwrap()
                .get("benchmark")
                .unwrap()
                .as_str(),
            Some("t")
        );
        assert_eq!(
            parsed
                .get("stats")
                .unwrap()
                .get("experiments")
                .unwrap()
                .as_u64(),
            Some(17)
        );
    }

    #[test]
    fn telemetry_artifact_has_a_stable_schema() {
        let reg = sofi_telemetry::Registry::enabled();
        reg.counter("executor.experiments").add(48);
        reg.gauge("serve.queue_depth").set(3);
        let h = reg.histogram("executor.faulted_run_cycles");
        for v in [1, 2, 3, 100, 100, 4096] {
            h.record(v);
        }
        let json = telemetry_artifact(&reg.snapshot()).pretty();
        let parsed = Json::parse(&json).unwrap();

        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("sofi.telemetry.snapshot/v1")
        );
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("executor.experiments")
                .unwrap()
                .as_u64(),
            Some(48)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("serve.queue_depth")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let hist = parsed
            .get("histograms")
            .unwrap()
            .get("executor.faulted_run_cycles")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(6));
        assert_eq!(hist.get("min").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(4096));
        assert!(hist.get("mean").unwrap().as_f64().unwrap() > 0.0);
        assert!(hist.get("p50").unwrap().as_u64().unwrap() >= 1);
        assert!(hist.get("p99").unwrap().as_u64().unwrap() <= 4096);
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert!(!buckets.is_empty());
        for b in buckets {
            assert!(b.get("lo").unwrap().as_u64() <= b.get("hi").unwrap().as_u64());
            assert!(b.get("count").unwrap().as_u64().unwrap() > 0);
        }

        // The empty snapshot still carries every schema section.
        let empty = telemetry_artifact(&Snapshot::default()).pretty();
        let parsed = Json::parse(&empty).unwrap();
        assert_eq!(parsed.get("counters"), Some(&Json::Obj(vec![])));
        assert_eq!(parsed.get("gauges"), Some(&Json::Obj(vec![])));
        assert_eq!(parsed.get("histograms"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn empty_containers_print_compactly() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
