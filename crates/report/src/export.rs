//! JSON export of result data.
//!
//! Campaign and sampling results are plain `serde` data structures;
//! experiment binaries persist them as JSON artifacts so EXPERIMENTS.md
//! numbers are reproducible and diffable.

use serde::Serialize;

/// Serializes any result structure to pretty-printed JSON.
///
/// # Examples
///
/// ```
/// use sofi_space::FaultSpace;
/// let json = sofi_report::to_json(&FaultSpace::new(8, 16)).unwrap();
/// assert!(json.contains("\"cycles\": 8"));
/// ```
///
/// # Errors
///
/// Returns `serde_json::Error` if the value cannot be serialized (not
/// possible for the suite's own result types).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

/// Serializes to a writer (e.g. a results file).
///
/// # Errors
///
/// Propagates I/O and serialization failures.
pub fn write_json<T: Serialize, W: std::io::Write>(
    value: &T,
    writer: W,
) -> Result<(), serde_json::Error> {
    serde_json::to_writer_pretty(writer, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{CampaignResult, ExperimentResult, Outcome};
    use sofi_space::{Experiment, FaultCoord, FaultSpace};

    #[test]
    fn campaign_result_round_trips() {
        let r = CampaignResult {
            benchmark: "t".into(),
            domain: sofi_campaign::FaultDomain::Memory,
            space: FaultSpace::new(2, 8),
            known_benign_weight: 10,
            golden_cycles: 2,
            results: vec![ExperimentResult {
                experiment: Experiment {
                    id: 0,
                    coord: FaultCoord { cycle: 1, bit: 3 },
                    weight: 2,
                },
                outcome: Outcome::SilentDataCorruption,
            }],
        };
        let json = to_json(&r).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn writer_variant_works() {
        let mut buf = Vec::new();
        write_json(&FaultSpace::new(1, 1), &mut buf).unwrap();
        assert!(!buf.is_empty());
    }
}
