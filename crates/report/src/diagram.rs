//! ASCII fault-space diagrams (Figures 1 and 3 of the paper).

use sofi_campaign::{CampaignResult, OutcomeClass};
use sofi_space::{ClassKind, DefUseAnalysis};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Upper bounds beyond which diagrams become unreadable.
const MAX_CYCLES: u64 = 160;
const MAX_BITS: u64 = 72;

/// Renders the def/use structure of a fault space (Figure 1b style).
///
/// One row per memory bit (bit 0 on top), one column per cycle:
///
/// * `W` / `R` — a write / read touches the bit in that cycle,
/// * `=` — member of an equivalence class that ends in a read (an
///   experiment covers it),
/// * `.` — known-benign coordinate (overwritten or never read).
///
/// Returns `None` if the space is too large to draw.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_trace::GoldenRun;
/// use sofi_space::DefUseAnalysis;
///
/// let mut a = Asm::new();
/// let x = a.data_space("x", 1);
/// a.li(Reg::R1, 1);
/// a.sb(Reg::R1, Reg::R0, x.offset());
/// a.nop();
/// a.lb(Reg::R2, Reg::R0, x.offset());
/// let g = GoldenRun::capture(&a.build()?, 100)?;
/// let d = DefUseAnalysis::from_golden(&g);
/// let art = sofi_report::fault_space_diagram(&d).unwrap();
/// assert!(art.lines().next().unwrap().contains('W'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fault_space_diagram(analysis: &DefUseAnalysis) -> Option<String> {
    render(analysis, None)
}

/// Renders the fault space with per-class campaign outcomes
/// (Figure 3 style): experiment-class members show as `x` (the class's
/// experiment failed) or `o` (no effect); accesses and known-benign
/// coordinates as in [`fault_space_diagram`].
pub fn outcome_diagram(analysis: &DefUseAnalysis, result: &CampaignResult) -> Option<String> {
    let mut by_coord = HashMap::new();
    for r in &result.results {
        by_coord.insert(
            (r.experiment.coord.cycle, r.experiment.coord.bit),
            r.outcome.class(),
        );
    }
    render(analysis, Some(&by_coord))
}

fn render(
    analysis: &DefUseAnalysis,
    outcomes: Option<&HashMap<(u64, u64), OutcomeClass>>,
) -> Option<String> {
    let space = analysis.space;
    if space.cycles > MAX_CYCLES || space.bits > MAX_BITS || space.size() == 0 {
        return None;
    }
    let w = space.cycles as usize;
    let h = space.bits as usize;
    let mut grid = vec![vec!['.'; w]; h];

    for class in &analysis.classes {
        if class.kind != ClassKind::Experiment {
            continue;
        }
        let row = class.bit as usize;
        let glyph = match outcomes {
            None => '=',
            Some(map) => match map.get(&(class.last_cycle, class.bit)) {
                Some(OutcomeClass::Failure) => 'x',
                Some(OutcomeClass::NoEffect) => 'o',
                None => '?',
            },
        };
        for cycle in class.first_cycle..=class.last_cycle {
            grid[row][cycle as usize - 1] = glyph;
        }
    }

    // Access markers overwrite class glyphs (drawn last, like the figures).
    for (bit, events) in analysis_events(analysis) {
        for (cycle, is_read) in events {
            grid[bit as usize][cycle as usize - 1] = if is_read { 'R' } else { 'W' };
        }
    }

    let mut out = String::new();
    for (bit, row) in grid.iter().enumerate() {
        let _ = write!(out, "bit {bit:>3} |");
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "        +{}", "-".repeat(w));
    let _ = writeln!(out, "         cycles 1..{}", space.cycles);
    Some(out)
}

/// Reconstructs per-bit access events from the class structure (class
/// boundaries are exactly the accesses; a class ending in a read ends at
/// that read's cycle, one ending before a write ends at the write cycle).
fn analysis_events(analysis: &DefUseAnalysis) -> Vec<(u64, Vec<(u64, bool)>)> {
    let mut per_bit: HashMap<u64, Vec<(u64, bool)>> = HashMap::new();
    for class in &analysis.classes {
        // The access terminating this class is at `last_cycle` unless the
        // class runs to the end of the program without a closing access.
        let is_read = class.kind == ClassKind::Experiment;
        let terminated_by_access = is_read || class.last_cycle < analysis.space.cycles;
        if terminated_by_access {
            per_bit
                .entry(class.bit)
                .or_default()
                .push((class.last_cycle, is_read));
        }
    }
    let mut v: Vec<_> = per_bit.into_iter().collect();
    v.sort_by_key(|(bit, _)| *bit);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::Campaign;
    use sofi_isa::{Asm, Reg};
    use sofi_trace::GoldenRun;

    fn hi_analysis() -> (DefUseAnalysis, Campaign) {
        let p = sofi_workloads_hi();
        let c = Campaign::new(&p).unwrap();
        (c.analysis().clone(), c)
    }

    /// Local copy of the "Hi" generator to avoid a dependency cycle.
    fn sofi_workloads_hi() -> sofi_isa::Program {
        let mut a = Asm::with_name("hi");
        let msg = a.data_space("msg", 2);
        a.li(Reg::R1, 'H' as i32);
        a.sb(Reg::R1, Reg::R0, msg.offset());
        a.li(Reg::R1, 'i' as i32);
        a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
        a.lb(Reg::R2, Reg::R0, msg.offset());
        a.serial_out(Reg::R2);
        a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
        a.serial_out(Reg::R2);
        a.build().unwrap()
    }

    #[test]
    fn hi_structure_diagram() {
        let (d, _) = hi_analysis();
        let art = fault_space_diagram(&d).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 16 + 2); // 16 bit rows + axis + caption
                                         // Byte 0, bit 0: benign, W@2, class cycles 3-4, R@5, benign 6-8.
        assert_eq!(lines[0], "bit   0 |.W==R...");
        // Byte 1, bit 0: W@4, class 5-6, R@7.
        assert_eq!(lines[8], "bit   8 |...W==R.");
    }

    #[test]
    fn hi_outcome_diagram_marks_failures() {
        let (d, c) = hi_analysis();
        let r = c.run_full_defuse();
        let art = outcome_diagram(&d, &r).unwrap();
        // Every experiment class of "hi" fails: 'x' everywhere, no 'o'.
        assert!(art.contains('x'));
        assert!(!art.contains('o'));
        assert_eq!(art.lines().next().unwrap(), "bit   0 |.WxxR...");
    }

    #[test]
    fn oversized_space_returns_none() {
        let mut a = Asm::new();
        let big = a.data_space("big", 1000);
        a.lb(Reg::R1, Reg::R0, big.offset());
        let g = GoldenRun::capture(&a.build().unwrap(), 100).unwrap();
        let d = DefUseAnalysis::from_golden(&g);
        assert!(fault_space_diagram(&d).is_none());
    }
}
