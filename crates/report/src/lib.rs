#![warn(missing_docs)]

//! Rendering and export of fault-injection results.
//!
//! * [`diagram`] — ASCII fault-space diagrams in the style of the paper's
//!   Figures 1 and 3 (cycles on the x-axis, memory bits on the y-axis,
//!   def/use classes and experiment outcomes marked),
//! * [`table`] — aligned text tables for campaign summaries,
//! * [`bars`] — horizontal ASCII bar charts for the Figure 2 panels,
//! * [`export`] — JSON export of campaign results and figure data.

pub mod bars;
pub mod diagram;
pub mod export;
pub mod table;

pub use bars::bar_chart;
pub use diagram::{fault_space_diagram, outcome_diagram};
pub use export::{
    job_artifact, telemetry_artifact, to_json, write_json, Json, ToJson, TELEMETRY_SCHEMA,
};
pub use table::Table;
