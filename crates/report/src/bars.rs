//! Horizontal ASCII bar charts (for the Figure 2 panels).

use std::fmt::Write as _;

/// Renders labelled horizontal bars, scaled so the longest bar spans
/// `width` characters. Values may be percentages or counts; they are
/// printed verbatim after the bar.
///
/// # Examples
///
/// ```
/// let chart = sofi_report::bar_chart(
///     &[("baseline".to_string(), 62.5), ("hardened".to_string(), 75.0)],
///     40,
/// );
/// assert!(chart.contains("baseline"));
/// assert!(chart.lines().count() == 2);
/// ```
///
/// # Panics
///
/// Panics if any value is negative or not finite.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| {
            assert!(
                v.is_finite() && *v >= 0.0,
                "bar values must be finite and non-negative"
            );
            *v
        })
        .fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(out, "{label:<label_w$} |{} {value}", "#".repeat(bar_len),);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_width() {
        let chart = bar_chart(
            &[("a".into(), 50.0), ("b".into(), 100.0), ("c".into(), 0.0)],
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 20);
        assert_eq!(lines[2].matches('#').count(), 0);
    }

    #[test]
    fn all_zero_draws_empty_bars() {
        let chart = bar_chart(&[("z".into(), 0.0)], 10);
        assert!(chart.contains("z |"));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_value_panics() {
        bar_chart(&[("bad".into(), -1.0)], 10);
    }
}
