#![warn(missing_docs)]

//! Self-contained deterministic random-number generation.
//!
//! The suite's central promise — same seed, same campaign, same numbers —
//! must not depend on crates the build environment may be unable to fetch,
//! nor on another crate's unstated stream-stability guarantees. This crate
//! therefore provides everything the samplers need, in-tree:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer; stateless-feeling, ideal
//!   for seeding and for cheap independent streams;
//! * [`Xoshiro256pp`] — xoshiro256++, the suite's default generator
//!   ([`DefaultRng`]); 256-bit state, passes BigCrush, jump-free uses only;
//! * the [`Rng`] trait with Lemire's unbiased bounded sampling
//!   ([`Rng::gen_range`]), plus the small conveniences the test suite
//!   needs ([`Rng::gen_bool`], [`Rng::fill_bytes`], [`Rng::next_f64`]).
//!
//! Both generators are fully specified here; their output streams are part
//! of the repository's reproducibility contract and must never change.
//!
//! # Examples
//!
//! ```
//! use sofi_rng::{DefaultRng, Rng};
//! let mut rng = DefaultRng::seed_from_u64(42);
//! let x = rng.gen_range(0u64..128);
//! assert!(x < 128);
//! // Same seed, same stream.
//! let mut again = DefaultRng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0u64..128), x);
//! ```

use std::ops::Range;

/// The suite's default generator: seeded campaigns, CLI `--seed`, tests.
pub type DefaultRng = Xoshiro256pp;

/// A deterministic source of uniform 64-bit values.
///
/// Implementors only provide [`Rng::next_u64`]; everything else is derived
/// from it, so every generator produces identical `gen_range` behaviour.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`Rng::next_u64`] — xoshiro's lower bits are the weaker ones).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased uniform draw from a half-open integer range.
    ///
    /// Uses Lemire's multiply-shift rejection method: no modulo bias, at
    /// most one extra draw in expectation even for pathological ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Unbiased bounded sampling for `n` in `[0, s)` via Lemire's method
/// (Lemire, "Fast random integer generation in an interval", 2019).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, s: u64) -> u64 {
    debug_assert!(s > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (s as u128);
    let mut low = m as u64;
    if low < s {
        // Rejection threshold: 2^64 mod s.
        let threshold = s.wrapping_neg() % s;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (s as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws a uniform value in `range` (half-open).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end - range.start) as u64;
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                // Map to the unsigned span to avoid overflow on negative ranges.
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(bounded_u64(rng, span) as $u) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

/// SplitMix64 (Steele, Lea & Flood 2014): one 64-bit word of state, one
/// multiply-xorshift avalanche per output. Used to seed [`Xoshiro256pp`]
/// and wherever a cheap independent stream is enough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna 2019): the suite's default
/// generator. 256-bit state, period 2^256 − 1, equidistributed in every
/// 64-bit output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// A generator whose stream is fully determined by `seed`; the state
    /// is expanded with [`SplitMix64`] exactly as the reference
    /// implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// A generator from explicit state words; at least one must be
    /// non-zero.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (it is a fixed point).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256pp {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256pp { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the public-domain
        // reference implementation (prng.di.unimi.it).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the state {1, 2, 3, 4}, from the reference
        // implementation of xoshiro256++ 1.0.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
        assert_eq!(rng.next_u64(), 3591011842654386);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = DefaultRng::seed_from_u64(99);
        let mut b = DefaultRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DefaultRng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = DefaultRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_range_signed_and_usize() {
        let mut rng = DefaultRng::seed_from_u64(8);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_statistically_uniform() {
        // Chi-squared over 10 buckets, 100k draws: the statistic has
        // 9 degrees of freedom; 40 is far beyond any plausible value
        // for a correct implementation (p < 1e-5) yet catches gross
        // bias like modulo folding.
        let mut rng = DefaultRng::seed_from_u64(9);
        let n = 100_000u64;
        let mut buckets = [0u64; 10];
        for _ in 0..n {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        let expect = n as f64 / 10.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&b| {
                let d = b as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 40.0, "chi2 {chi2} buckets {buckets:?}");
    }

    #[test]
    fn unit_range_needs_no_entropy() {
        let mut rng = DefaultRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(5u64..6), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DefaultRng::seed_from_u64(1).gen_range(5u64..5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DefaultRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = DefaultRng::seed_from_u64(11);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DefaultRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DefaultRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DefaultRng::seed_from_u64(14);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = DefaultRng::seed_from_u64(2);
        assert!(draw(&mut rng) < 10);
        let r: &mut dyn FnMut() = &mut || {};
        let _ = r; // silence unused in doc-free builds
    }
}
