//! Two-pass text assembler.
//!
//! Accepts a conventional `.s`-style syntax:
//!
//! ```text
//! ; Example program
//! .data
//! msg:  .byte 'H', 'i'
//! cnt:  .word 3
//! buf:  .space 8
//! .ram 32            ; explicit RAM size (optional)
//!
//! .text
//! main:
//!     lw   r1, cnt(r0)
//! loop:
//!     lb   r2, msg(r0)
//!     serial r2
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt 0
//! ```
//!
//! Comments start with `;` or `#`. Character literals (`'H'`), decimal and
//! `0x` hexadecimal immediates are accepted. Data symbols may be used as
//! load/store offsets (`msg(r0)`, `msg+4(r0)`) and as `li`/`la` operands.
//!
//! Branch targets and `jal`/`j` targets may be labels or numbers: a
//! numeric branch operand (e.g. `beq r1, r2, +3`) is a relative offset in
//! instructions exactly as [`crate::Inst`] stores (and displays) it, and a
//! numeric jump operand is an absolute instruction index. This makes the
//! assembler a left inverse of the instruction [`std::fmt::Display`] form
//! (see `tests/roundtrip.rs`).

use crate::asm::{Asm, Label};
use crate::encode::{BRANCH_MAX, BRANCH_MIN, JAL_MAX};
use crate::error::AsmError;
use crate::inst::{BranchKind, Inst};
use crate::program::Program;
use crate::Reg;
use std::collections::HashMap;

/// Assembles `.s`-style source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError::Parse`] for syntax problems (with the 1-based source
/// line) and the usual assembler errors for unresolved or out-of-range
/// labels.
///
/// # Examples
///
/// ```
/// let src = "
///     .data
///     msg: .byte 'H', 'i'
///     .text
///     lb r1, msg(r0)
///     serial r1
///     halt 0
/// ";
/// let p = sofi_isa::assemble_text("hello", src).unwrap();
/// assert_eq!(p.insts.len(), 3);
/// assert_eq!(p.data, vec![b'H', b'i']);
/// ```
pub fn assemble_text(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut asm = Asm::with_name(name);

    // Pass 1: lay out the data section so symbols can be used as immediates.
    let mut section = Section::Text;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match directive(line) {
            Some(("data", _)) => section = Section::Data,
            Some(("text", _)) => section = Section::Text,
            Some(("ram", arg)) => {
                let bytes =
                    parse_imm_str(arg, &HashMap::new()).map_err(|msg| perr(lineno, msg))? as u32;
                asm.set_ram_size(bytes);
            }
            Some(("align", arg)) => {
                if section == Section::Data {
                    let n = parse_imm_str(arg, &HashMap::new()).map_err(|msg| perr(lineno, msg))?;
                    asm.data_align(n as u32);
                }
            }
            Some((other, _)) if !matches!(other, "byte" | "word" | "space") => {
                return Err(perr(lineno, format!("unknown directive .{other}")));
            }
            _ => {
                if section == Section::Data {
                    parse_data_line(&mut asm, line).map_err(|msg| perr(lineno, msg))?;
                }
            }
        }
    }

    let data_syms: HashMap<String, u32> = asm_symbols(&asm);

    // Pass 2: emit code.
    let mut code_labels: HashMap<String, Label> = HashMap::new();
    let mut bound_labels: std::collections::HashSet<String> = std::collections::HashSet::new();
    section = Section::Text;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some((d, _)) = directive(line) {
            match d {
                "data" => section = Section::Data,
                "text" => section = Section::Text,
                _ => {}
            }
            continue;
        }
        if section != Section::Text {
            continue;
        }
        let mut rest = line;
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (lbl, tail) = rest.split_at(colon);
            let lbl = lbl.trim();
            if !is_ident(lbl) {
                break;
            }
            let label = *code_labels
                .entry(lbl.to_owned())
                .or_insert_with(|| asm.new_named_label(lbl));
            if !bound_labels.insert(lbl.to_owned()) {
                return Err(AsmError::DuplicateLabel(lbl.to_owned()));
            }
            asm.bind(label);
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        parse_inst(&mut asm, rest, &data_syms, &mut code_labels)
            .map_err(|msg| perr(lineno, msg))?;
    }

    asm.build()
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    Text,
    Data,
}

fn perr(lineno: usize, msg: impl Into<String>) -> AsmError {
    AsmError::Parse {
        line: lineno + 1,
        msg: msg.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    // Character literals never contain ';' or '#' in our sources, so a
    // simple scan suffices.
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn directive(line: &str) -> Option<(&str, &str)> {
    let rest = line.strip_prefix('.')?;
    let (word, arg) = match rest.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (rest, ""),
    };
    Some((word, arg))
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_data_line(asm: &mut Asm, line: &str) -> Result<(), String> {
    let (label, rest) = match line.split_once(':') {
        Some((l, r)) => (l.trim(), r.trim()),
        None => ("", line),
    };
    if !label.is_empty() && !is_ident(label) {
        return Err(format!("bad data label `{label}`"));
    }
    let (dir, args) = match directive(rest) {
        Some(x) => x,
        None => return Err(format!("expected data directive, found `{rest}`")),
    };
    let name = if label.is_empty() {
        format!("__anon_{}", asm_symbols(asm).len())
    } else {
        label.to_owned()
    };
    match dir {
        "byte" => {
            let mut bytes = Vec::new();
            for part in split_args(args) {
                let v = parse_imm_str(&part, &HashMap::new())?;
                bytes.push(v as u8);
            }
            asm.data_bytes(name, &bytes);
        }
        "word" => {
            let mut words = Vec::new();
            for part in split_args(args) {
                words.push(parse_imm_str(&part, &HashMap::new())? as u32);
            }
            asm.data_words(name, &words);
        }
        "space" => {
            let n = parse_imm_str(args, &HashMap::new())?;
            asm.data_space(name, n as u32);
        }
        other => return Err(format!("unknown data directive .{other}")),
    }
    Ok(())
}

fn split_args(s: &str) -> Vec<String> {
    s.split(',')
        .map(|p| p.trim().to_owned())
        .filter(|p| !p.is_empty())
        .collect()
}

fn parse_imm_str(s: &str, syms: &HashMap<String, u32>) -> Result<i64, String> {
    let s = s.trim();
    if let Some(stripped) = s.strip_prefix('\'') {
        let inner = stripped
            .strip_suffix('\'')
            .ok_or_else(|| format!("unterminated char literal `{s}`"))?;
        let c = match inner {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\0" => 0,
            "\\\\" => b'\\',
            _ if inner.len() == 1 => inner.as_bytes()[0],
            _ => return Err(format!("bad char literal `{s}`")),
        };
        return Ok(c as i64);
    }
    // symbol, symbol+imm, symbol-imm
    if s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        let (sym, delta) = if let Some(plus) = s.find('+') {
            (&s[..plus], parse_imm_str(&s[plus + 1..], syms)?)
        } else if let Some(minus) = s.find('-') {
            (&s[..minus], -parse_imm_str(&s[minus + 1..], syms)?)
        } else {
            (s, 0)
        };
        let base = syms
            .get(sym.trim())
            .copied()
            .ok_or_else(|| format!("unknown symbol `{sym}`"))?;
        return Ok(base as i64 + delta);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        // Branch offsets display with an explicit sign (`{:+}`), so a
        // leading `+` must parse — including before a hex body.
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| format!("bad immediate `{s}`"))?;
    Ok(if neg { -v } else { v })
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    Reg::parse(s.trim()).ok_or_else(|| format!("bad register `{s}`"))
}

fn parse_mem_operand(s: &str, syms: &HashMap<String, u32>) -> Result<(Reg, i16), String> {
    // forms: off(base)  |  sym(base)  |  sym+off(base)
    let open = s
        .find('(')
        .ok_or_else(|| format!("expected `offset(base)`, found `{s}`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| format!("missing `)` in `{s}`"))?;
    let off_str = s[..open].trim();
    let base = parse_reg(&s[open + 1..close])?;
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm_str(off_str, syms)?
    };
    let off = i16::try_from(off).map_err(|_| format!("offset {off} out of range"))?;
    Ok((base, off))
}

fn imm16(v: i64) -> Result<i16, String> {
    i16::try_from(v).map_err(|_| format!("immediate {v} out of i16 range"))
}

/// A numeric `jal`/`j` operand: an absolute instruction index.
fn jal_target(s: &str, syms: &HashMap<String, u32>) -> Result<u32, String> {
    let v = parse_imm_str(s, syms)?;
    if !(0..=JAL_MAX as i64).contains(&v) {
        return Err(format!("jal target {v} out of range"));
    }
    Ok(v as u32)
}

#[allow(clippy::too_many_lines)]
fn parse_inst(
    asm: &mut Asm,
    line: &str,
    syms: &HashMap<String, u32>,
    code_labels: &mut HashMap<String, Label>,
) -> Result<(), String> {
    let (mn, args_str) = match line.split_once(char::is_whitespace) {
        Some((m, a)) => (m, a.trim()),
        None => (line, ""),
    };
    let args = split_args(args_str);
    let reg = |i: usize| -> Result<Reg, String> {
        args.get(i)
            .ok_or_else(|| format!("missing operand {i} for {mn}"))
            .and_then(|s| parse_reg(s))
    };
    let imm = |i: usize| -> Result<i64, String> {
        args.get(i)
            .ok_or_else(|| format!("missing operand {i} for {mn}"))
            .and_then(|s| parse_imm_str(s, syms))
    };
    let mem = |i: usize| -> Result<(Reg, i16), String> {
        args.get(i)
            .ok_or_else(|| format!("missing operand {i} for {mn}"))
            .and_then(|s| parse_mem_operand(s, syms))
    };
    let mut label = |i: usize| -> Result<Label, String> {
        let name = args
            .get(i)
            .ok_or_else(|| format!("missing label operand for {mn}"))?;
        if !is_ident(name) {
            return Err(format!("bad label `{name}`"));
        }
        Ok(*code_labels
            .entry(name.clone())
            .or_insert_with(|| asm_new_named_label(asm, name)))
    };

    match mn {
        "add" => asm.add(reg(0)?, reg(1)?, reg(2)?),
        "sub" => asm.sub(reg(0)?, reg(1)?, reg(2)?),
        "and" => asm.and(reg(0)?, reg(1)?, reg(2)?),
        "or" => asm.or(reg(0)?, reg(1)?, reg(2)?),
        "xor" => asm.xor(reg(0)?, reg(1)?, reg(2)?),
        "sll" => asm.sll(reg(0)?, reg(1)?, reg(2)?),
        "srl" => asm.srl(reg(0)?, reg(1)?, reg(2)?),
        "sra" => asm.sra(reg(0)?, reg(1)?, reg(2)?),
        "slt" => asm.slt(reg(0)?, reg(1)?, reg(2)?),
        "sltu" => asm.sltu(reg(0)?, reg(1)?, reg(2)?),
        "mul" => asm.mul(reg(0)?, reg(1)?, reg(2)?),
        "addi" => asm.addi(reg(0)?, reg(1)?, imm16(imm(2)?)?),
        "andi" => asm.andi(reg(0)?, reg(1)?, imm16(imm(2)?)?),
        "ori" => asm.ori(reg(0)?, reg(1)?, imm16(imm(2)?)?),
        "xori" => asm.xori(reg(0)?, reg(1)?, imm16(imm(2)?)?),
        "slti" => asm.slti(reg(0)?, reg(1)?, imm16(imm(2)?)?),
        "slli" => asm.slli(reg(0)?, reg(1)?, imm(2)? as u8),
        "srli" => asm.srli(reg(0)?, reg(1)?, imm(2)? as u8),
        "srai" => asm.srai(reg(0)?, reg(1)?, imm(2)? as u8),
        "lui" => asm.lui(reg(0)?, imm(1)? as u16),
        "li" => asm.li(reg(0)?, imm(1)? as i32),
        "la" => asm.li(reg(0)?, imm(1)? as i32),
        "mv" => asm.mv(reg(0)?, reg(1)?),
        "nop" => asm.nop(),
        "lb" => {
            let (b, o) = mem(1)?;
            asm.lb(reg(0)?, b, o)
        }
        "lbu" => {
            let (b, o) = mem(1)?;
            asm.lbu(reg(0)?, b, o)
        }
        "lh" => {
            let (b, o) = mem(1)?;
            asm.lh(reg(0)?, b, o)
        }
        "lhu" => {
            let (b, o) = mem(1)?;
            asm.lhu(reg(0)?, b, o)
        }
        "lw" => {
            let (b, o) = mem(1)?;
            asm.lw(reg(0)?, b, o)
        }
        "sb" => {
            let (b, o) = mem(1)?;
            asm.sb(reg(0)?, b, o)
        }
        "sh" => {
            let (b, o) = mem(1)?;
            asm.sh(reg(0)?, b, o)
        }
        "sw" => {
            let (b, o) = mem(1)?;
            asm.sw(reg(0)?, b, o)
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble" => {
            // `bgt`/`ble` are aliases with swapped sources.
            let (kind, swap) = match mn {
                "beq" => (BranchKind::Eq, false),
                "bne" => (BranchKind::Ne, false),
                "blt" => (BranchKind::Lt, false),
                "bge" => (BranchKind::Ge, false),
                "bltu" => (BranchKind::Ltu, false),
                "bgeu" => (BranchKind::Geu, false),
                "bgt" => (BranchKind::Lt, true),
                _ => (BranchKind::Ge, true),
            };
            let (a, b) = (reg(0)?, reg(1)?);
            let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
            let target = args
                .get(2)
                .ok_or_else(|| format!("missing target operand for {mn}"))?;
            if is_ident(target) {
                let l = label(2)?;
                match kind {
                    BranchKind::Eq => asm.beq(rs1, rs2, l),
                    BranchKind::Ne => asm.bne(rs1, rs2, l),
                    BranchKind::Lt => asm.blt(rs1, rs2, l),
                    BranchKind::Ge => asm.bge(rs1, rs2, l),
                    BranchKind::Ltu => asm.bltu(rs1, rs2, l),
                    BranchKind::Geu => asm.bgeu(rs1, rs2, l),
                }
            } else {
                let offset = parse_imm_str(target, syms)?;
                if !((BRANCH_MIN as i64)..=(BRANCH_MAX as i64)).contains(&offset) {
                    return Err(format!("branch offset {offset} out of range"));
                }
                asm.emit(Inst::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset: offset as i16,
                })
            }
        }
        "j" => {
            let target = args
                .first()
                .ok_or_else(|| format!("missing target operand for {mn}"))?;
            if is_ident(target) {
                let l = label(0)?;
                asm.j(l)
            } else {
                let target = jal_target(target, syms)?;
                asm.emit(Inst::Jal {
                    rd: Reg::R0,
                    target,
                })
            }
        }
        "jal" => {
            let (rd, i) = if args.len() == 1 {
                (Reg::RA, 0)
            } else {
                (reg(0)?, 1)
            };
            let target = args
                .get(i)
                .ok_or_else(|| format!("missing target operand for {mn}"))?;
            if is_ident(target) {
                let l = label(i)?;
                asm.jal(rd, l)
            } else {
                let target = jal_target(target, syms)?;
                asm.emit(Inst::Jal { rd, target })
            }
        }
        "call" => {
            let l = label(0)?;
            asm.call(l)
        }
        "ret" => asm.ret(),
        "jalr" => {
            let (b, o) = mem(1)?;
            asm.jalr(reg(0)?, b, o)
        }
        "serial" => asm.serial_out(reg(0)?),
        "detect" => asm.detect_signal(reg(0)?),
        "rdcycle" => asm.read_cycle(reg(0)?),
        "halt" => {
            let code = if args.is_empty() { 0 } else { imm(0)? };
            asm.halt(code as u16)
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    Ok(())
}

// Small accessors that keep `Asm` internals private while letting the parser
// reuse the builder.
fn asm_symbols(asm: &Asm) -> HashMap<String, u32> {
    // Build a lookup table from the (name, addr) pairs the builder tracks.
    asm.clone()
        .build()
        .map(|p| p.symbols.into_iter().collect())
        .unwrap_or_else(|_| {
            // The data-only pass can't fail label resolution (no code yet),
            // but be conservative: derive from a data-only rebuild.
            HashMap::new()
        })
}

fn asm_new_named_label(asm: &mut Asm, name: &str) -> Label {
    asm.new_named_label(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn hello_assembles() {
        let p = assemble_text(
            "hello",
            "
            .data
            msg: .byte 'H', 'i'
            .text
            lb r1, msg(r0)
            serial r1
            lb r1, msg+1(r0)
            serial r1
            ",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 4);
        assert_eq!(p.data, vec![b'H', b'i']);
    }

    #[test]
    fn loops_and_labels() {
        let p = assemble_text(
            "loop",
            "
            li r1, 3
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt 0
            ",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[2], Inst::Branch { offset: -2, .. }));
    }

    #[test]
    fn forward_reference() {
        let p = assemble_text(
            "fwd",
            "
            j end
            nop
            end: halt 0
            ",
        )
        .unwrap();
        assert!(matches!(p.insts[0], Inst::Jal { target: 2, .. }));
    }

    #[test]
    fn ram_directive() {
        let p = assemble_text("r", ".ram 64\nhalt 0\n").unwrap();
        assert_eq!(p.ram_size, 64);
    }

    #[test]
    fn unknown_mnemonic_is_parse_error() {
        let err = assemble_text("bad", "frobnicate r1\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn undefined_code_label_reported() {
        let err = assemble_text("bad", "j nowhere\n").unwrap_err();
        assert_eq!(err, AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn unknown_data_symbol_reported() {
        let err = assemble_text("bad", "lw r1, nosym(r0)\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { .. }));
    }

    #[test]
    fn char_and_hex_literals() {
        let p = assemble_text(
            "lit",
            "
            .data
            d: .byte '\\n', 0x41, 'z'
            .text
            li r1, 0x7fff
            li r2, -0x10
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.data, vec![b'\n', 0x41, b'z']);
        assert_eq!(
            p.insts[0],
            Inst::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 0x7fff
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Addi {
                rd: Reg::R2,
                rs1: Reg::R0,
                imm: -16
            }
        );
    }

    #[test]
    fn words_and_space() {
        let p = assemble_text(
            "d",
            "
            .data
            a: .word 1, 2
            b: .space 3
            c: .byte 9
            .text
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.symbol("a"), Some(0));
        assert_eq!(p.symbol("b"), Some(8));
        assert_eq!(p.symbol("c"), Some(11));
        assert_eq!(p.data.len(), 12);
    }

    #[test]
    fn comments_stripped() {
        let p = assemble_text(
            "c",
            "; full line\nnop ; trailing\n# hash comment\nhalt 0 # end\n",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 2);
    }

    #[test]
    fn numeric_branch_offsets_and_jump_targets() {
        let p = assemble_text(
            "num",
            "
            beq r1, r2, +2
            bne r3, r4, -1
            bgt r5, r6, +0
            j 0
            jal r5, 3
            halt 0
            ",
        )
        .unwrap();
        use crate::inst::BranchKind;
        assert_eq!(
            p.insts[0],
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::R1,
                rs2: Reg::R2,
                offset: 2
            }
        );
        assert!(matches!(p.insts[1], Inst::Branch { offset: -1, .. }));
        // bgt swaps sources and keeps the numeric offset.
        assert_eq!(
            p.insts[2],
            Inst::Branch {
                kind: BranchKind::Lt,
                rs1: Reg::R6,
                rs2: Reg::R5,
                offset: 0
            }
        );
        assert!(matches!(
            p.insts[3],
            Inst::Jal {
                rd: Reg::R0,
                target: 0
            }
        ));
        assert!(matches!(
            p.insts[4],
            Inst::Jal {
                rd: Reg::R5,
                target: 3
            }
        ));
    }

    #[test]
    fn numeric_branch_and_jump_range_checked() {
        let err = assemble_text("bad", "beq r1, r2, 8192\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
        let err = assemble_text("bad", "beq r1, r2, -8193\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
        let err = assemble_text("bad", "j -1\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
        let err = assemble_text("bad", "jal r1, 0x400000\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 1, .. }));
        // The extremes themselves are accepted.
        assert!(assemble_text("ok", "beq r1, r2, 8191\nbeq r1, r2, -8192\n").is_ok());
        assert!(assemble_text("ok", "jal r1, 0x3fffff\n").is_ok());
    }

    #[test]
    fn plus_prefixed_immediates_parse() {
        let p = assemble_text("plus", "addi r1, r0, +12\nli r2, +0x10\n").unwrap();
        assert!(matches!(p.insts[0], Inst::Addi { imm: 12, .. }));
        assert!(matches!(p.insts[1], Inst::Addi { imm: 16, .. }));
    }

    #[test]
    fn jal_one_or_two_operands() {
        let p = assemble_text(
            "j",
            "
            jal helper
            jal r5, helper
            halt
            helper: ret
            ",
        )
        .unwrap();
        assert!(matches!(
            p.insts[0],
            Inst::Jal {
                rd: Reg::R15,
                target: 3
            }
        ));
        assert!(matches!(
            p.insts[1],
            Inst::Jal {
                rd: Reg::R5,
                target: 3
            }
        ));
    }
}
