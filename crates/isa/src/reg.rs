//! Architectural registers.

use std::fmt;

/// One of the sixteen general-purpose registers.
///
/// `R0` is hard-wired to zero: reads yield `0` and writes are discarded,
/// following the classic RISC convention.
///
/// # Examples
///
/// ```
/// use sofi_isa::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::from_index(3), Some(Reg::R3));
/// assert_eq!(Reg::R0.to_string(), "r0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
#[allow(missing_docs)] // r0..r15 are self-describing
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The conventional link register used by `call`/`ret` pseudo-ops.
    pub const RA: Reg = Reg::R15;

    /// The conventional stack pointer used by the workload runtime.
    pub const SP: Reg = Reg::R14;

    /// Returns the register's index in `0..16`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index, or `None` if `idx >= 16`.
    #[inline]
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// Parses a register name (`r0`–`r15`, or the aliases `zero`, `ra`, `sp`).
    pub fn parse(name: &str) -> Option<Reg> {
        match name {
            "zero" => return Some(Reg::R0),
            "ra" => return Some(Reg::RA),
            "sp" => return Some(Reg::SP),
            _ => {}
        }
        let rest = name.strip_prefix('r')?;
        let idx: usize = rest.parse().ok()?;
        Reg::from_index(idx)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Reg::parse("r0"), Some(Reg::R0));
        assert_eq!(Reg::parse("r15"), Some(Reg::R15));
        assert_eq!(Reg::parse("zero"), Some(Reg::R0));
        assert_eq!(Reg::parse("ra"), Some(Reg::R15));
        assert_eq!(Reg::parse("sp"), Some(Reg::R14));
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::R15.to_string(), "r15");
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::RA, Reg::R15);
        assert_eq!(Reg::SP, Reg::R14);
    }
}
