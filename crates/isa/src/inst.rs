//! Instruction forms.

use crate::Reg;
use std::fmt;

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes (halfword), address must be 2-aligned.
    Half,
    /// Four bytes (word), address must be 4-aligned.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }

    /// Access size in bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bytes() * 8
    }
}

/// Numeric opcode used by the binary encoding.
///
/// Kept in its own enum (rather than implicit in [`Inst`]) so the encoder,
/// decoder and assembler agree on a single authoritative list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the variants name the mnemonics themselves
pub enum Opcode {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Sll = 5,
    Srl = 6,
    Sra = 7,
    Slt = 8,
    Sltu = 9,
    Mul = 10,
    Addi = 16,
    Andi = 17,
    Ori = 18,
    Xori = 19,
    Slti = 20,
    Slli = 21,
    Srli = 22,
    Srai = 23,
    Lui = 24,
    Lb = 32,
    Lbu = 33,
    Lh = 34,
    Lhu = 35,
    Lw = 36,
    Sb = 40,
    Sh = 41,
    Sw = 42,
    Beq = 48,
    Bne = 49,
    Blt = 50,
    Bge = 51,
    Bltu = 52,
    Bgeu = 53,
    Jal = 56,
    Jalr = 57,
    Halt = 63,
}

impl Opcode {
    /// Decodes a raw 6-bit opcode field.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match v {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Sll,
            6 => Srl,
            7 => Sra,
            8 => Slt,
            9 => Sltu,
            10 => Mul,
            16 => Addi,
            17 => Andi,
            18 => Ori,
            19 => Xori,
            20 => Slti,
            21 => Slli,
            22 => Srli,
            23 => Srai,
            24 => Lui,
            32 => Lb,
            33 => Lbu,
            34 => Lh,
            35 => Lhu,
            36 => Lw,
            40 => Sb,
            41 => Sh,
            42 => Sw,
            48 => Beq,
            49 => Bne,
            50 => Blt,
            51 => Bge,
            52 => Bltu,
            53 => Bgeu,
            56 => Jal,
            57 => Jalr,
            63 => Halt,
            _ => return None,
        })
    }
}

/// A decoded machine instruction.
///
/// Every instruction executes in exactly one CPU cycle (paper §II-C).
/// Branch offsets are in *instructions* relative to the next instruction;
/// `Jal` targets are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // operand fields follow the conventional rd/rs/imm names
pub enum Inst {
    /// `rd = rs1 + rs2` (wrapping).
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2` (wrapping).
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 31)`.
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 as i32) >> (rs2 & 31)` (arithmetic).
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 as i32) < (rs2 as i32)`.
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 < rs2` (unsigned).
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2` (wrapping, low 32 bits).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },

    /// `rd = rs1 + imm` (wrapping, sign-extended immediate).
    Addi { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = rs1 & zext(imm)` — the immediate is **zero-extended**
    /// (MIPS-style), so `lui` + `ori` composes 32-bit constants.
    Andi { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = rs1 | zext(imm)` (zero-extended immediate).
    Ori { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = rs1 ^ zext(imm)` (zero-extended immediate).
    Xori { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = (rs1 as i32) < imm`.
    Slti { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = rs1 << shamt`.
    Slli { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = rs1 >> shamt` (logical).
    Srli { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = (rs1 as i32) >> shamt` (arithmetic).
    Srai { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },

    /// Load from `rs1 + offset`, sign- or zero-extended per `width`/`signed`.
    Load {
        rd: Reg,
        base: Reg,
        offset: i16,
        width: MemWidth,
        signed: bool,
    },
    /// Store the low `width` bytes of `rs` to `base + offset`.
    Store {
        rs: Reg,
        base: Reg,
        offset: i16,
        width: MemWidth,
    },

    /// Branch if the comparison holds; `offset` is in instructions relative
    /// to the *next* instruction.
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        offset: i16,
    },

    /// `rd = pc + 1; pc = target` (absolute instruction index).
    Jal { rd: Reg, target: u32 },
    /// `rd = pc + 1; pc = rs1 + offset` (register value is an instruction index).
    Jalr { rd: Reg, rs1: Reg, offset: i16 },

    /// Stop the machine with an exit code (`0` = success by convention;
    /// workloads use nonzero codes for self-detected unrecoverable errors).
    Halt { code: u16 },
}

/// Branch comparison kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BranchKind {
    /// `rs1 == rs2`
    Eq,
    /// `rs1 != rs2`
    Ne,
    /// signed `rs1 < rs2`
    Lt,
    /// signed `rs1 >= rs2`
    Ge,
    /// unsigned `rs1 < rs2`
    Ltu,
    /// unsigned `rs1 >= rs2`
    Geu,
}

/// The architectural register operands of one instruction: up to two
/// source registers and at most one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegOps {
    /// Source registers, deduplicated (`None` slots unused).
    pub reads: [Option<Reg>; 2],
    /// Destination register, if any.
    pub write: Option<Reg>,
}

impl RegOps {
    fn new(reads: &[Reg], write: Option<Reg>) -> RegOps {
        let mut ops = RegOps {
            reads: [None, None],
            write,
        };
        for &r in reads {
            if ops.reads[0] == Some(r) || ops.reads[1] == Some(r) {
                continue; // deduplicate (e.g. `add r1, r2, r2`)
            }
            if ops.reads[0].is_none() {
                ops.reads[0] = Some(r);
            } else {
                ops.reads[1] = Some(r);
            }
        }
        ops
    }

    /// Iterates over the distinct source registers.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.reads.iter().flatten().copied()
    }
}

impl Inst {
    /// Canonical no-operation (`addi r0, r0, 0`).
    pub const NOP: Inst = Inst::Addi {
        rd: Reg::R0,
        rs1: Reg::R0,
        imm: 0,
    };

    /// The register operands this instruction reads and writes, exactly as
    /// the datapath accesses them. This drives def/use analysis of the
    /// *register-file* fault space (the paper's §VI-B generalization).
    pub fn reg_ops(&self) -> RegOps {
        use Inst::*;
        match *self {
            Add { rd, rs1, rs2 }
            | Sub { rd, rs1, rs2 }
            | And { rd, rs1, rs2 }
            | Or { rd, rs1, rs2 }
            | Xor { rd, rs1, rs2 }
            | Sll { rd, rs1, rs2 }
            | Srl { rd, rs1, rs2 }
            | Sra { rd, rs1, rs2 }
            | Slt { rd, rs1, rs2 }
            | Sltu { rd, rs1, rs2 }
            | Mul { rd, rs1, rs2 } => RegOps::new(&[rs1, rs2], Some(rd)),
            Addi { rd, rs1, .. }
            | Andi { rd, rs1, .. }
            | Ori { rd, rs1, .. }
            | Xori { rd, rs1, .. }
            | Slti { rd, rs1, .. }
            | Slli { rd, rs1, .. }
            | Srli { rd, rs1, .. }
            | Srai { rd, rs1, .. } => RegOps::new(&[rs1], Some(rd)),
            Lui { rd, .. } => RegOps::new(&[], Some(rd)),
            Load { rd, base, .. } => RegOps::new(&[base], Some(rd)),
            Store { rs, base, .. } => RegOps::new(&[rs, base], None),
            Branch { rs1, rs2, .. } => RegOps::new(&[rs1, rs2], None),
            Jal { rd, .. } => RegOps::new(&[], Some(rd)),
            Jalr { rd, rs1, .. } => RegOps::new(&[rs1], Some(rd)),
            Halt { .. } => RegOps::default(),
        }
    }

    /// Returns `true` if this instruction reads from data memory
    /// (MMIO loads included).
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Returns `true` if this instruction writes to data memory
    /// (MMIO stores included).
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Returns `true` if this instruction may divert control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let op = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{op} {rd}, {offset}({base})")
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                let op = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{op} {rs}, {offset}({base})")
            }
            Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let op = match kind {
                    BranchKind::Eq => "beq",
                    BranchKind::Ne => "bne",
                    BranchKind::Lt => "blt",
                    BranchKind::Ge => "bge",
                    BranchKind::Ltu => "bltu",
                    BranchKind::Geu => "bgeu",
                };
                write!(f, "{op} {rs1}, {rs2}, {offset:+}")
            }
            Jal { rd, target } => write!(f, "jal {rd}, {target}"),
            Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Halt { code } => write!(f, "halt {code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Word.bits(), 32);
    }

    #[test]
    fn opcode_round_trip() {
        for v in 0..64u8 {
            if let Some(op) = Opcode::from_u8(v) {
                assert_eq!(op as u8, v);
            }
        }
    }

    #[test]
    fn classification() {
        let ld = Inst::Load {
            rd: Reg::R1,
            base: Reg::R0,
            offset: 0,
            width: MemWidth::Word,
            signed: false,
        };
        let st = Inst::Store {
            rs: Reg::R1,
            base: Reg::R0,
            offset: 0,
            width: MemWidth::Byte,
        };
        assert!(ld.is_load() && !ld.is_store() && !ld.is_control());
        assert!(st.is_store() && !st.is_load());
        assert!(Inst::Halt { code: 0 }.is_control());
        assert!(!Inst::NOP.is_control());
    }

    #[test]
    fn reg_ops_cover_all_forms() {
        let ops = Inst::Add {
            rd: Reg::R1,
            rs1: Reg::R2,
            rs2: Reg::R3,
        }
        .reg_ops();
        assert_eq!(ops.reads().collect::<Vec<_>>(), vec![Reg::R2, Reg::R3]);
        assert_eq!(ops.write, Some(Reg::R1));

        // Duplicate sources are reported once.
        let ops = Inst::Add {
            rd: Reg::R1,
            rs1: Reg::R2,
            rs2: Reg::R2,
        }
        .reg_ops();
        assert_eq!(ops.reads().collect::<Vec<_>>(), vec![Reg::R2]);

        let ops = Inst::Store {
            rs: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: MemWidth::Byte,
        }
        .reg_ops();
        assert_eq!(ops.reads().count(), 2);
        assert_eq!(ops.write, None);

        let ops = Inst::Halt { code: 0 }.reg_ops();
        assert_eq!(ops.reads().count(), 0);
        assert_eq!(ops.write, None);

        // Read-modify-write of the same register: both a read and a write.
        let ops = Inst::Load {
            rd: Reg::R1,
            base: Reg::R1,
            offset: 0,
            width: MemWidth::Word,
            signed: true,
        }
        .reg_ops();
        assert_eq!(ops.reads().collect::<Vec<_>>(), vec![Reg::R1]);
        assert_eq!(ops.write, Some(Reg::R1));
    }

    #[test]
    fn display_smoke() {
        assert_eq!(
            Inst::Add {
                rd: Reg::R1,
                rs1: Reg::R2,
                rs2: Reg::R3
            }
            .to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Inst::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: -4,
                width: MemWidth::Byte,
                signed: false
            }
            .to_string(),
            "lbu r1, -4(r2)"
        );
        assert_eq!(Inst::NOP.to_string(), "addi r0, r0, 0");
    }
}
