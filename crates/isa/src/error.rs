//! Error types for encoding and assembly.

use std::error::Error;
use std::fmt;

/// Error decoding a 32-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 6-bit opcode field does not name a defined instruction.
    BadOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "undefined opcode {op:#04x}"),
        }
    }
}

impl Error for DecodeError {}

/// Error produced by the programmatic or text assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is further away than the 14-bit offset field allows.
    BranchOutOfRange {
        /// Label or description of the target.
        target: String,
        /// Required offset in instructions.
        offset: i64,
    },
    /// A jump target exceeds the 22-bit absolute field.
    JumpOutOfRange(u32),
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// What the immediate belongs to.
        context: String,
        /// The offending value.
        value: i64,
    },
    /// The text assembler failed to parse a line.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The data section exceeds the configured RAM size.
    DataTooLarge {
        /// Bytes required by the data section.
        need: u32,
        /// Configured RAM size in bytes.
        ram: u32,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { target, offset } => {
                write!(f, "branch to `{target}` out of range (offset {offset})")
            }
            AsmError::JumpOutOfRange(t) => write!(f, "jump target {t} out of range"),
            AsmError::ImmOutOfRange { context, value } => {
                write!(f, "immediate {value} out of range for {context}")
            }
            AsmError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            AsmError::DataTooLarge { need, ram } => {
                write!(f, "data section needs {need} bytes but RAM is {ram} bytes")
            }
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DecodeError::BadOpcode(0x1e).to_string(),
            "undefined opcode 0x1e"
        );
        assert_eq!(
            AsmError::UndefinedLabel("loop".into()).to_string(),
            "undefined label `loop`"
        );
        assert_eq!(
            AsmError::Parse {
                line: 3,
                msg: "bad register".into()
            }
            .to_string(),
            "parse error at line 3: bad register"
        );
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DecodeError>();
        assert_err::<AsmError>();
    }
}
