//! Linked programs: instruction ROM plus initial RAM image.

use crate::inst::Inst;

/// A fix-up record for an immediate that materializes a *code* address
/// (an instruction index) into a register.
///
/// The machine model executes from fault-immune ROM, but program
/// transformations such as NOP dilution (§IV-B of the paper) prepend
/// instructions and thereby shift all absolute code addresses. Relative
/// branches survive this untouched and `jal` targets are rewritten directly,
/// but an address materialized through `li` (e.g. a thread entry point
/// stored into a task control block) is invisible to a naive shifter.
/// [`crate::Asm::li_code`] therefore records one of these so
/// [`Program::prepend_insts`] can relocate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodeImmFixup {
    /// Index of the instruction carrying the immediate: an `Addi` (small
    /// target) or a `Lui` whose partner `Ori` is at `lo_idx`.
    pub inst_idx: usize,
    /// Index of the `Ori` carrying the low half, if the target needed a
    /// two-instruction sequence.
    pub lo_idx: Option<usize>,
    /// The absolute instruction index being materialized.
    pub target: u32,
}

/// A fully assembled program: the contents of the instruction ROM, the
/// initial RAM image, and the RAM size that defines the memory extent
/// `Δm` of the fault space.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// a.li(Reg::R1, 42);
/// a.halt(0);
/// let p = a.build().unwrap();
/// assert_eq!(p.insts.len(), 2);
/// assert_eq!(p.ram_size, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Program {
    /// Human-readable program name (used in reports).
    pub name: String,
    /// Instruction ROM. Execution starts at index 0; running past the end
    /// is a normal run-to-completion halt with exit code 0.
    pub insts: Vec<Inst>,
    /// Initial contents of RAM starting at address 0. May be shorter than
    /// [`Program::ram_size`]; the remainder is zero-initialized.
    pub data: Vec<u8>,
    /// RAM size in bytes. The fault-space memory extent is `ram_size * 8`
    /// bits. Always `>= data.len()`.
    pub ram_size: u32,
    /// Symbol table for the data section: `(name, address)` pairs.
    pub symbols: Vec<(String, u32)>,
    /// Relocation records for code addresses materialized as immediates.
    pub code_fixups: Vec<CodeImmFixup>,
}

impl Program {
    /// Creates a program from raw parts with an empty symbol table.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>, data: Vec<u8>, ram_size: u32) -> Self {
        let ram_size = ram_size.max(data.len() as u32);
        Program {
            name: name.into(),
            insts,
            data,
            ram_size,
            symbols: Vec::new(),
            code_fixups: Vec::new(),
        }
    }

    /// Looks up a data symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// Prepends `insts` to the instruction ROM, relocating all absolute
    /// code references (`jal` targets and recorded `li_code` immediates).
    ///
    /// This is the primitive underlying the paper's "Dilution Fault
    /// Tolerance" transformations (§IV-B): the program's observable
    /// behaviour is unchanged as long as the prepended instructions have no
    /// architectural effect on the original code.
    pub fn prepend_insts(&mut self, prepend: Vec<Inst>) {
        let k = prepend.len() as u32;
        if k == 0 {
            return;
        }
        for inst in &mut self.insts {
            if let Inst::Jal { target, .. } = inst {
                *target += k;
            }
        }
        let shift = prepend.len();
        for fix in &mut self.code_fixups {
            fix.inst_idx += shift;
            if let Some(lo) = &mut fix.lo_idx {
                *lo += shift;
            }
            fix.target += k;
        }
        let mut new_insts = prepend;
        new_insts.append(&mut self.insts);
        self.insts = new_insts;
        self.apply_code_fixups();
    }

    /// Rewrites the immediates recorded in [`Program::code_fixups`] to match
    /// their current `target` values.
    ///
    /// # Panics
    ///
    /// Panics if a fix-up record points at an instruction that is not the
    /// `Addi`/`Lui`/`Ori` shape `li_code` emitted (which would indicate the
    /// ROM was edited without maintaining the records).
    pub fn apply_code_fixups(&mut self) {
        for fix in &self.code_fixups {
            let target = fix.target;
            match fix.lo_idx {
                None => match &mut self.insts[fix.inst_idx] {
                    Inst::Addi { imm, .. } => {
                        assert!(
                            target <= i16::MAX as u32,
                            "li_code target grew past addi range"
                        );
                        *imm = target as i16;
                    }
                    other => panic!("code fixup expected addi, found {other}"),
                },
                Some(lo) => {
                    match &mut self.insts[fix.inst_idx] {
                        Inst::Lui { imm, .. } => *imm = (target >> 16) as u16,
                        other => panic!("code fixup expected lui, found {other}"),
                    }
                    match &mut self.insts[lo] {
                        Inst::Ori { imm, .. } => *imm = (target & 0xFFFF) as u16 as i16,
                        other => panic!("code fixup expected ori, found {other}"),
                    }
                }
            }
        }
    }

    /// Grows RAM to `bytes` (no-op if already at least that large). Used by
    /// the memory-dilution transformation: extra never-touched RAM enlarges
    /// the fault space without changing program behaviour.
    pub fn grow_ram(&mut self, bytes: u32) {
        self.ram_size = self.ram_size.max(bytes);
    }

    /// Renders the program as assembly source that
    /// [`crate::assemble_text`] re-assembles into a program with
    /// identical instructions, initial data and RAM size — the three
    /// inputs that determine execution and both fault-space extents.
    /// Symbol names and [`Program::code_fixups`] are *not* preserved
    /// (branches and `jal` targets are already resolved to numeric
    /// offsets, and data labels become anonymous), so the round trip is
    /// behavioural, not syntactic.
    ///
    /// This is how programs constructed through the [`crate::Asm`]
    /// builder (e.g. the built-in workload suite) travel to the serve
    /// daemon, whose job specs carry assembly text.
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, ".ram {}", self.ram_size);
        if !self.data.is_empty() {
            out.push_str(".data\n");
            for chunk in self.data.chunks(16) {
                out.push_str(".byte ");
                for (i, b) in chunk.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{b:#04x}");
                }
                out.push('\n');
            }
        }
        out.push_str(".text\n");
        for inst in &self.insts {
            let _ = writeln!(out, "{inst}");
        }
        out
    }

    /// Serializes the ROM to its 32-bit binary form.
    pub fn encode_rom(&self) -> Vec<u32> {
        self.insts.iter().map(|&i| crate::encode(i)).collect()
    }

    /// Reconstructs the instruction list from binary words.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::DecodeError`] encountered.
    pub fn decode_rom(words: &[u32]) -> Result<Vec<Inst>, crate::DecodeError> {
        words.iter().map(|&w| crate::decode(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    #[test]
    fn to_source_round_trips_insts_data_and_ram() {
        let mut a = Asm::with_name("rt");
        let buf = a.data_space("buf", 8);
        a.data_bytes("msg", b"Hi");
        a.li(Reg::R1, 42);
        a.sw(Reg::R1, Reg::R0, buf.offset());
        let skip = a.new_label();
        a.beq(Reg::R1, Reg::R2, skip);
        a.serial_out(Reg::R1);
        a.bind(skip);
        a.halt(0);
        let mut p = a.build().unwrap();
        p.grow_ram(64);
        let q = crate::assemble_text("rt", &p.to_source()).unwrap();
        assert_eq!(q.insts, p.insts);
        assert_eq!(q.data, p.data);
        assert_eq!(q.ram_size, p.ram_size);
    }

    #[test]
    fn ram_size_covers_data() {
        let p = Program::new("t", vec![], vec![1, 2, 3], 0);
        assert_eq!(p.ram_size, 3);
        let p = Program::new("t", vec![], vec![1, 2, 3], 16);
        assert_eq!(p.ram_size, 16);
    }

    #[test]
    fn prepend_shifts_jal() {
        let mut p = Program::new(
            "t",
            vec![Inst::Jal {
                rd: Reg::R0,
                target: 0,
            }],
            vec![],
            0,
        );
        p.prepend_insts(vec![Inst::NOP, Inst::NOP]);
        assert_eq!(p.insts.len(), 3);
        assert_eq!(
            p.insts[2],
            Inst::Jal {
                rd: Reg::R0,
                target: 2
            }
        );
    }

    #[test]
    fn prepend_relocates_li_code() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.li_code(Reg::R1, l);
        a.bind(l);
        a.halt(0);
        let mut p = a.build().unwrap();
        // Target was instruction index 1 (the halt).
        assert_eq!(
            p.insts[0],
            Inst::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 1
            }
        );
        p.prepend_insts(vec![Inst::NOP; 3]);
        assert_eq!(
            p.insts[3],
            Inst::Addi {
                rd: Reg::R1,
                rs1: Reg::R0,
                imm: 4
            }
        );
    }

    #[test]
    fn grow_ram_never_shrinks() {
        let mut p = Program::new("t", vec![], vec![0; 8], 8);
        p.grow_ram(4);
        assert_eq!(p.ram_size, 8);
        p.grow_ram(32);
        assert_eq!(p.ram_size, 32);
    }

    #[test]
    fn rom_round_trip() {
        let mut a = Asm::new();
        a.li(Reg::R3, -5);
        a.add(Reg::R4, Reg::R3, Reg::R3);
        a.halt(7);
        let p = a.build().unwrap();
        let words = p.encode_rom();
        assert_eq!(Program::decode_rom(&words).unwrap(), p.insts);
    }

    #[test]
    fn symbol_lookup() {
        let mut a = Asm::new();
        a.data_bytes("greeting", b"Hi");
        a.halt(0);
        let p = a.build().unwrap();
        assert_eq!(p.symbol("greeting"), Some(0));
        assert_eq!(p.symbol("missing"), None);
    }
}
