//! Programmatic assembler.
//!
//! [`Asm`] builds a [`Program`] from method calls: one method per
//! instruction, label handles for control flow, and a data-section builder.
//! The workload and hardening crates generate all benchmark variants through
//! this interface.

use crate::error::AsmError;
use crate::inst::{BranchKind, Inst, MemWidth};
use crate::program::{CodeImmFixup, Program};
use crate::{Reg, MMIO_CYCLE, MMIO_DETECT, MMIO_INPUT, MMIO_SERIAL};

/// Handle to a code position, resolved when [`Asm::build`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Handle to a data-section address.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// let buf = a.data_space("buf", 8);
/// a.lw(Reg::R1, Reg::R0, buf.offset());
/// a.halt(0);
/// let p = a.build().unwrap();
/// assert_eq!(buf.addr(), 0);
/// assert_eq!(p.ram_size, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataLabel(u32);

impl DataLabel {
    /// Absolute RAM address.
    pub fn addr(self) -> u32 {
        self.0
    }

    /// The address as a load/store offset from `r0`.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds `i16::MAX` (32 KiB); address such data
    /// through a base register instead.
    pub fn offset(self) -> i16 {
        i16::try_from(self.0).expect("data address exceeds direct-offset range")
    }

    /// The address shifted by `delta` bytes (for field access).
    pub fn at(self, delta: u32) -> DataLabel {
        DataLabel(self.0 + delta)
    }
}

#[derive(Debug, Clone, Copy)]
enum Item {
    Fixed(Inst),
    Branch(BranchKind, Reg, Reg, Label),
    Jal(Reg, Label),
}

/// Builder assembling a [`Program`].
///
/// Instruction methods append one machine instruction each (the machine
/// executes every instruction in one cycle, so instruction count equals
/// cycle cost on a straight-line path). `li` may expand to two instructions
/// for immediates outside the 16-bit signed range.
#[derive(Debug, Clone)]
pub struct Asm {
    name: String,
    items: Vec<Item>,
    labels: Vec<Option<u32>>,
    label_names: Vec<Option<String>>,
    data: Vec<u8>,
    symbols: Vec<(String, u32)>,
    ram_size: Option<u32>,
    code_fixups: Vec<(usize, Option<usize>, Label)>,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates an empty assembler for a program named `"unnamed"`.
    pub fn new() -> Self {
        Asm {
            name: "unnamed".to_owned(),
            items: Vec::new(),
            labels: Vec::new(),
            label_names: Vec::new(),
            data: Vec::new(),
            symbols: Vec::new(),
            ram_size: None,
            code_fixups: Vec::new(),
        }
    }

    /// Creates an empty assembler for a program with the given name.
    pub fn with_name(name: impl Into<String>) -> Self {
        let mut a = Asm::new();
        a.name = name.into();
        a
    }

    /// Sets the RAM size explicitly (bytes). Without this, RAM is sized to
    /// the data section. The fault-space memory extent `Δm` is
    /// `ram_size * 8` bits, so benchmarks fix this deliberately.
    pub fn set_ram_size(&mut self, bytes: u32) -> &mut Self {
        self.ram_size = Some(bytes);
        self
    }

    /// Current instruction index (where the next instruction will go).
    pub fn here(&self) -> u32 {
        self.items.len() as u32
    }

    // ---- labels ------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        self.label_names.push(None);
        Label(self.labels.len() - 1)
    }

    /// Creates a fresh named label (names only aid error messages).
    pub fn new_named_label(&mut self, name: impl Into<String>) -> Label {
        let l = self.new_label();
        self.label_names[l.0] = Some(name.into());
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
        self
    }

    /// Convenience: creates a label bound to the current position.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- data section --------------------------------------------------

    /// Appends raw bytes to the data section, returning their address.
    pub fn data_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> DataLabel {
        let addr = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.symbols.push((name.into(), addr));
        DataLabel(addr)
    }

    /// Appends `n` zero bytes, returning their address.
    pub fn data_space(&mut self, name: impl Into<String>, n: u32) -> DataLabel {
        let addr = self.data.len() as u32;
        self.data.resize(self.data.len() + n as usize, 0);
        self.symbols.push((name.into(), addr));
        DataLabel(addr)
    }

    /// Appends a little-endian 32-bit word (aligning to 4 first).
    pub fn data_word(&mut self, name: impl Into<String>, value: u32) -> DataLabel {
        self.data_align(4);
        let addr = self.data.len() as u32;
        self.data.extend_from_slice(&value.to_le_bytes());
        self.symbols.push((name.into(), addr));
        DataLabel(addr)
    }

    /// Appends a sequence of little-endian words (aligning to 4 first).
    pub fn data_words(&mut self, name: impl Into<String>, values: &[u32]) -> DataLabel {
        self.data_align(4);
        let addr = self.data.len() as u32;
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self.symbols.push((name.into(), addr));
        DataLabel(addr)
    }

    /// Pads the data section to an `n`-byte boundary.
    pub fn data_align(&mut self, n: u32) -> &mut Self {
        while !(self.data.len() as u32).is_multiple_of(n) {
            self.data.push(0);
        }
        self
    }

    // ---- raw emission ----------------------------------------------------

    /// Appends an already-constructed instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.items.push(Item::Fixed(inst));
        self
    }

    // ---- ALU -------------------------------------------------------------

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Add { rd, rs1, rs2 })
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Sub { rd, rs1, rs2 })
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::And { rd, rs1, rs2 })
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Or { rd, rs1, rs2 })
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Xor { rd, rs1, rs2 })
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Sll { rd, rs1, rs2 })
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Srl { rd, rs1, rs2 })
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Sra { rd, rs1, rs2 })
    }
    /// `rd = (rs1 < rs2)` signed
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Slt { rd, rs1, rs2 })
    }
    /// `rd = (rs1 < rs2)` unsigned
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Sltu { rd, rs1, rs2 })
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Mul { rd, rs1, rs2 })
    }
    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Inst::Addi { rd, rs1, imm })
    }
    /// `rd = rs1 & zext(imm)`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Inst::Andi { rd, rs1, imm })
    }
    /// `rd = rs1 | zext(imm)`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Inst::Ori { rd, rs1, imm })
    }
    /// `rd = rs1 ^ zext(imm)`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Inst::Xori { rd, rs1, imm })
    }
    /// `rd = (rs1 < imm)` signed
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Inst::Slti { rd, rs1, imm })
    }
    /// `rd = rs1 << shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.emit(Inst::Slli { rd, rs1, shamt })
    }
    /// `rd = rs1 >> shamt` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.emit(Inst::Srli { rd, rs1, shamt })
    }
    /// `rd = rs1 >> shamt` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.emit(Inst::Srai { rd, rs1, shamt })
    }
    /// `rd = imm << 16`
    pub fn lui(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.emit(Inst::Lui { rd, imm })
    }

    /// Loads a 32-bit constant: one `addi` when `v` fits 16 signed bits,
    /// otherwise `lui` + `ori` (two cycles).
    pub fn li(&mut self, rd: Reg, v: i32) -> &mut Self {
        if (i16::MIN as i32..=i16::MAX as i32).contains(&v) {
            self.addi(rd, Reg::R0, v as i16)
        } else {
            let u = v as u32;
            self.lui(rd, (u >> 16) as u16);
            self.ori(rd, rd, (u & 0xFFFF) as u16 as i16)
        }
    }

    /// Loads a data address into `rd`.
    pub fn la(&mut self, rd: Reg, label: DataLabel) -> &mut Self {
        self.li(rd, label.addr() as i32)
    }

    /// Loads a *code* address (instruction index) into `rd`, recording a
    /// relocation so [`Program::prepend_insts`] keeps it valid. Always emits
    /// exactly one `addi` when the program stays under 32 Ki instructions
    /// (guaranteed here: we reserve a two-instruction slot only above that).
    pub fn li_code(&mut self, rd: Reg, label: Label) -> &mut Self {
        // Emit a placeholder addi; build() patches the target and records
        // the fixup in the Program. Workload ROMs stay far below 2^15
        // instructions, so the single-instruction form always suffices.
        let idx = self.items.len();
        self.emit(Inst::Addi {
            rd,
            rs1: Reg::R0,
            imm: 0,
        });
        self.code_fixups.push((idx, None, label));
        self
    }

    /// `rd = r0 + rs` (register move).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.add(rd, rs, Reg::R0)
    }

    /// No-operation (one cycle).
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::NOP)
    }

    // ---- memory ------------------------------------------------------

    /// Signed byte load.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: MemWidth::Byte,
            signed: true,
        })
    }
    /// Unsigned byte load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: MemWidth::Byte,
            signed: false,
        })
    }
    /// Signed halfword load.
    pub fn lh(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: MemWidth::Half,
            signed: true,
        })
    }
    /// Unsigned halfword load.
    pub fn lhu(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: MemWidth::Half,
            signed: false,
        })
    }
    /// Word load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Load {
            rd,
            base,
            offset,
            width: MemWidth::Word,
            signed: true,
        })
    }
    /// Byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: MemWidth::Byte,
        })
    }
    /// Halfword store.
    pub fn sh(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: MemWidth::Half,
        })
    }
    /// Word store.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Store {
            rs,
            base,
            offset,
            width: MemWidth::Word,
        })
    }

    // ---- MMIO ------------------------------------------------------------

    /// Emits the low byte of `rs` on the serial interface (one cycle; the
    /// MMIO page is reached through a negative offset from `r0`).
    pub fn serial_out(&mut self, rs: Reg) -> &mut Self {
        self.sb(rs, Reg::R0, mmio_offset(MMIO_SERIAL))
    }

    /// Signals a detected-and-corrected error to the experiment observer.
    pub fn detect_signal(&mut self, rs: Reg) -> &mut Self {
        self.sw(rs, Reg::R0, mmio_offset(MMIO_DETECT))
    }

    /// Reads the current cycle counter into `rd`.
    pub fn read_cycle(&mut self, rd: Reg) -> &mut Self {
        self.lw(rd, Reg::R0, mmio_offset(MMIO_CYCLE))
    }

    /// Reads the external input latch into `rd` (the last replayed
    /// external event's value; see `sofi-machine`'s `ExternalEvent`).
    pub fn read_input(&mut self, rd: Reg) -> &mut Self {
        self.lw(rd, Reg::R0, mmio_offset(MMIO_INPUT))
    }

    // ---- control flow -----------------------------------------------

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Eq, rs1, rs2, target));
        self
    }
    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Ne, rs1, rs2, target));
        self
    }
    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Lt, rs1, rs2, target));
        self
    }
    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Ge, rs1, rs2, target));
        self
    }
    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Ltu, rs1, rs2, target));
        self
    }
    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(BranchKind::Geu, rs1, rs2, target));
        self
    }

    /// Jump and link to a label.
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.items.push(Item::Jal(rd, target));
        self
    }
    /// Unconditional jump (`jal r0`).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::R0, target)
    }
    /// Call: `jal ra, target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::RA, target)
    }
    /// Return: `jalr r0, 0(ra)`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Reg::R0, Reg::RA, 0)
    }
    /// Indirect jump and link.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i16) -> &mut Self {
        self.emit(Inst::Jalr { rd, rs1, offset })
    }
    /// Stop the machine with `code`.
    pub fn halt(&mut self, code: u16) -> &mut Self {
        self.emit(Inst::Halt { code })
    }

    // ---- build -------------------------------------------------------

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a referenced label is unbound or a branch
    /// target lies outside the 14-bit offset range.
    pub fn build(&self) -> Result<Program, AsmError> {
        let resolve = |label: Label| -> Result<u32, AsmError> {
            self.labels[label.0].ok_or_else(|| {
                AsmError::UndefinedLabel(
                    self.label_names[label.0]
                        .clone()
                        .unwrap_or_else(|| format!("L{}", label.0)),
                )
            })
        };

        let mut insts = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let inst = match *item {
                Item::Fixed(i) => i,
                Item::Branch(kind, rs1, rs2, target) => {
                    let dest = resolve(target)? as i64;
                    let offset = dest - (idx as i64 + 1);
                    let offset = i16::try_from(offset).map_err(|_| AsmError::BranchOutOfRange {
                        target: format!("L{}", target.0),
                        offset,
                    })?;
                    if !((-(1 << 13))..(1 << 13)).contains(&(offset as i32)) {
                        return Err(AsmError::BranchOutOfRange {
                            target: format!("L{}", target.0),
                            offset: offset as i64,
                        });
                    }
                    Inst::Branch {
                        kind,
                        rs1,
                        rs2,
                        offset,
                    }
                }
                Item::Jal(rd, target) => {
                    let dest = resolve(target)?;
                    if dest > crate::encode::JAL_MAX {
                        return Err(AsmError::JumpOutOfRange(dest));
                    }
                    Inst::Jal { rd, target: dest }
                }
            };
            insts.push(inst);
        }

        // Patch li_code placeholders and collect relocation records.
        let mut fixups = Vec::with_capacity(self.code_fixups.len());
        for &(idx, lo, label) in &self.code_fixups {
            let target = resolve(label)?;
            fixups.push(CodeImmFixup {
                inst_idx: idx,
                lo_idx: lo,
                target,
            });
        }

        let ram_size = self.ram_size.unwrap_or(self.data.len() as u32);
        if (self.data.len() as u32) > ram_size {
            return Err(AsmError::DataTooLarge {
                need: self.data.len() as u32,
                ram: ram_size,
            });
        }

        let mut program = Program::new(self.name.clone(), insts, self.data.clone(), ram_size);
        program.symbols = self.symbols.clone();
        program.code_fixups = fixups;
        program.apply_code_fixups();
        Ok(program)
    }
}

/// Converts an MMIO address to its signed offset from `r0`.
fn mmio_offset(addr: u32) -> i16 {
    (addr as i32 - (1i64 << 32) as i32) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmio_offsets_fit_i16() {
        // MMIO page lives in the top 256 bytes of the address space, so all
        // device registers are reachable from r0 with a negative offset.
        assert_eq!(mmio_offset(MMIO_SERIAL), -256);
        assert_eq!(mmio_offset(MMIO_DETECT), -252);
        assert_eq!(mmio_offset(MMIO_CYCLE), -248);
        assert_eq!(mmio_offset(MMIO_INPUT), -244);
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        let top = a.label_here();
        let end = a.new_label();
        a.beq(Reg::R1, Reg::R0, end);
        a.j(top);
        a.bind(end);
        a.halt(0);
        let p = a.build().unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::R1,
                rs2: Reg::R0,
                offset: 1
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Jal {
                rd: Reg::R0,
                target: 0
            }
        );
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Asm::new();
        let l = a.new_named_label("nowhere");
        a.j(l);
        assert_eq!(
            a.build().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new();
        a.li(Reg::R1, 5); // 1 inst
        a.li(Reg::R2, -5); // 1 inst
        a.li(Reg::R3, 0x12345678); // 2 insts
        let p = a.build().unwrap();
        assert_eq!(p.insts.len(), 4);
        assert_eq!(
            p.insts[2],
            Inst::Lui {
                rd: Reg::R3,
                imm: 0x1234
            }
        );
        assert_eq!(
            p.insts[3],
            Inst::Ori {
                rd: Reg::R3,
                rs1: Reg::R3,
                imm: 0x5678
            }
        );
    }

    #[test]
    fn data_section_layout() {
        let mut a = Asm::new();
        let b = a.data_bytes("b", &[1, 2, 3]);
        let w = a.data_word("w", 0xAABBCCDD);
        let s = a.data_space("s", 5);
        a.halt(0);
        let p = a.build().unwrap();
        assert_eq!(b.addr(), 0);
        assert_eq!(w.addr(), 4); // aligned
        assert_eq!(s.addr(), 8);
        assert_eq!(p.data.len(), 13);
        assert_eq!(&p.data[4..8], &[0xDD, 0xCC, 0xBB, 0xAA]);
        assert_eq!(p.ram_size, 13);
    }

    #[test]
    fn explicit_ram_size_too_small() {
        let mut a = Asm::new();
        a.data_space("big", 100);
        a.set_ram_size(10);
        assert!(matches!(
            a.build().unwrap_err(),
            AsmError::DataTooLarge { need: 100, ram: 10 }
        ));
    }

    #[test]
    fn data_label_arithmetic() {
        let l = DataLabel(8);
        assert_eq!(l.at(4).addr(), 12);
        assert_eq!(l.offset(), 8);
    }

    #[test]
    fn builder_is_cloneable_for_variants() {
        // Hardened variants are built by cloning a half-finished builder.
        let mut a = Asm::with_name("base");
        a.li(Reg::R1, 1);
        let mut b = a.clone();
        a.halt(0);
        b.nop();
        b.halt(0);
        assert_eq!(a.build().unwrap().insts.len(), 2);
        assert_eq!(b.build().unwrap().insts.len(), 3);
    }
}
