//! Binary instruction encoding.
//!
//! Instructions are fixed 32-bit words with the following field layout
//! (bit 31 is the most significant):
//!
//! ```text
//! R-format:  | op 31:26 | rd 25:22 | rs1 21:18 | rs2 17:14 | 0 13:0   |
//! I-format:  | op 31:26 | rd 25:22 | rs1 21:18 | 0 17:16   | imm 15:0 |
//! B-format:  | op 31:26 | 0  25:22 | rs1 21:18 | rs2 17:14 | imm 13:0 | (signed)
//! J-format:  | op 31:26 | rd 25:22 | target 21:0                      |
//! ```
//!
//! The encoding is exercised by an exhaustive round-trip property test; the
//! machine itself executes decoded [`Inst`] values, so the encoding's role is
//! program serialization and the text assembler's object format.

use crate::error::DecodeError;
use crate::inst::{BranchKind, Inst, MemWidth, Opcode};
use crate::Reg;

const OP_SHIFT: u32 = 26;
const RD_SHIFT: u32 = 22;
const RS1_SHIFT: u32 = 18;
const RS2_SHIFT: u32 = 14;
const REG_MASK: u32 = 0xF;
const IMM16_MASK: u32 = 0xFFFF;
const IMM14_MASK: u32 = 0x3FFF;
const IMM22_MASK: u32 = 0x3F_FFFF;

/// Maximum branch offset in instructions (14-bit signed field).
pub const BRANCH_MAX: i32 = (1 << 13) - 1;
/// Minimum branch offset in instructions.
pub const BRANCH_MIN: i32 = -(1 << 13);
/// Maximum absolute jump target (22-bit field).
pub const JAL_MAX: u32 = (1 << 22) - 1;

fn r_format(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    ((op as u32) << OP_SHIFT)
        | ((rd.index() as u32) << RD_SHIFT)
        | ((rs1.index() as u32) << RS1_SHIFT)
        | ((rs2.index() as u32) << RS2_SHIFT)
}

fn i_format(op: Opcode, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    ((op as u32) << OP_SHIFT)
        | ((rd.index() as u32) << RD_SHIFT)
        | ((rs1.index() as u32) << RS1_SHIFT)
        | (imm as u32)
}

fn b_format(op: Opcode, rs1: Reg, rs2: Reg, offset: i16) -> u32 {
    ((op as u32) << OP_SHIFT)
        | ((rs1.index() as u32) << RS1_SHIFT)
        | ((rs2.index() as u32) << RS2_SHIFT)
        | ((offset as i32 as u32) & IMM14_MASK)
}

/// Encodes an instruction into its 32-bit binary form.
///
/// # Examples
///
/// ```
/// use sofi_isa::{encode, decode, Inst, Reg};
/// let i = Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -7 };
/// assert_eq!(decode(encode(i)).unwrap(), i);
/// ```
///
/// # Panics
///
/// Panics if a `Branch` offset is outside `[BRANCH_MIN, BRANCH_MAX]` or a
/// `Jal` target exceeds `JAL_MAX`; the assembler validates these before
/// encoding.
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    match inst {
        Add { rd, rs1, rs2 } => r_format(Opcode::Add, rd, rs1, rs2),
        Sub { rd, rs1, rs2 } => r_format(Opcode::Sub, rd, rs1, rs2),
        And { rd, rs1, rs2 } => r_format(Opcode::And, rd, rs1, rs2),
        Or { rd, rs1, rs2 } => r_format(Opcode::Or, rd, rs1, rs2),
        Xor { rd, rs1, rs2 } => r_format(Opcode::Xor, rd, rs1, rs2),
        Sll { rd, rs1, rs2 } => r_format(Opcode::Sll, rd, rs1, rs2),
        Srl { rd, rs1, rs2 } => r_format(Opcode::Srl, rd, rs1, rs2),
        Sra { rd, rs1, rs2 } => r_format(Opcode::Sra, rd, rs1, rs2),
        Slt { rd, rs1, rs2 } => r_format(Opcode::Slt, rd, rs1, rs2),
        Sltu { rd, rs1, rs2 } => r_format(Opcode::Sltu, rd, rs1, rs2),
        Mul { rd, rs1, rs2 } => r_format(Opcode::Mul, rd, rs1, rs2),
        Addi { rd, rs1, imm } => i_format(Opcode::Addi, rd, rs1, imm as u16),
        Andi { rd, rs1, imm } => i_format(Opcode::Andi, rd, rs1, imm as u16),
        Ori { rd, rs1, imm } => i_format(Opcode::Ori, rd, rs1, imm as u16),
        Xori { rd, rs1, imm } => i_format(Opcode::Xori, rd, rs1, imm as u16),
        Slti { rd, rs1, imm } => i_format(Opcode::Slti, rd, rs1, imm as u16),
        Slli { rd, rs1, shamt } => i_format(Opcode::Slli, rd, rs1, (shamt & 31) as u16),
        Srli { rd, rs1, shamt } => i_format(Opcode::Srli, rd, rs1, (shamt & 31) as u16),
        Srai { rd, rs1, shamt } => i_format(Opcode::Srai, rd, rs1, (shamt & 31) as u16),
        Lui { rd, imm } => i_format(Opcode::Lui, rd, Reg::R0, imm),
        Load {
            rd,
            base,
            offset,
            width,
            signed,
        } => {
            let op = match (width, signed) {
                (MemWidth::Byte, true) => Opcode::Lb,
                (MemWidth::Byte, false) => Opcode::Lbu,
                (MemWidth::Half, true) => Opcode::Lh,
                (MemWidth::Half, false) => Opcode::Lhu,
                (MemWidth::Word, _) => Opcode::Lw,
            };
            i_format(op, rd, base, offset as u16)
        }
        Store {
            rs,
            base,
            offset,
            width,
        } => {
            let op = match width {
                MemWidth::Byte => Opcode::Sb,
                MemWidth::Half => Opcode::Sh,
                MemWidth::Word => Opcode::Sw,
            };
            i_format(op, rs, base, offset as u16)
        }
        Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let off = offset as i32;
            assert!(
                (BRANCH_MIN..=BRANCH_MAX).contains(&off),
                "branch offset {off} out of range"
            );
            let op = match kind {
                BranchKind::Eq => Opcode::Beq,
                BranchKind::Ne => Opcode::Bne,
                BranchKind::Lt => Opcode::Blt,
                BranchKind::Ge => Opcode::Bge,
                BranchKind::Ltu => Opcode::Bltu,
                BranchKind::Geu => Opcode::Bgeu,
            };
            b_format(op, rs1, rs2, offset)
        }
        Jal { rd, target } => {
            assert!(target <= JAL_MAX, "jal target {target} out of range");
            ((Opcode::Jal as u32) << OP_SHIFT) | ((rd.index() as u32) << RD_SHIFT) | target
        }
        Jalr { rd, rs1, offset } => i_format(Opcode::Jalr, rd, rs1, offset as u16),
        Halt { code } => i_format(Opcode::Halt, Reg::R0, Reg::R0, code),
    }
}

fn reg_at(word: u32, shift: u32) -> Reg {
    // The 4-bit field always decodes to a valid register.
    Reg::from_index(((word >> shift) & REG_MASK) as usize).expect("4-bit register field")
}

/// Sign-extends the low 14 bits of `v`.
fn sext14(v: u32) -> i16 {
    let v = (v & IMM14_MASK) as i32;
    if v & (1 << 13) != 0 {
        (v - (1 << 14)) as i16
    } else {
        v as i16
    }
}

/// Decodes a 32-bit word back into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode field does not name a defined
/// instruction.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opv = (word >> OP_SHIFT) as u8 & 0x3F;
    let op = Opcode::from_u8(opv).ok_or(DecodeError::BadOpcode(opv))?;
    let rd = reg_at(word, RD_SHIFT);
    let rs1 = reg_at(word, RS1_SHIFT);
    let rs2 = reg_at(word, RS2_SHIFT);
    let imm16 = (word & IMM16_MASK) as u16;
    let simm = imm16 as i16;
    let shamt = (imm16 & 31) as u8;

    use Inst::*;
    let inst = match op {
        Opcode::Add => Add { rd, rs1, rs2 },
        Opcode::Sub => Sub { rd, rs1, rs2 },
        Opcode::And => And { rd, rs1, rs2 },
        Opcode::Or => Or { rd, rs1, rs2 },
        Opcode::Xor => Xor { rd, rs1, rs2 },
        Opcode::Sll => Sll { rd, rs1, rs2 },
        Opcode::Srl => Srl { rd, rs1, rs2 },
        Opcode::Sra => Sra { rd, rs1, rs2 },
        Opcode::Slt => Slt { rd, rs1, rs2 },
        Opcode::Sltu => Sltu { rd, rs1, rs2 },
        Opcode::Mul => Mul { rd, rs1, rs2 },
        Opcode::Addi => Addi { rd, rs1, imm: simm },
        Opcode::Andi => Andi { rd, rs1, imm: simm },
        Opcode::Ori => Ori { rd, rs1, imm: simm },
        Opcode::Xori => Xori { rd, rs1, imm: simm },
        Opcode::Slti => Slti { rd, rs1, imm: simm },
        Opcode::Slli => Slli { rd, rs1, shamt },
        Opcode::Srli => Srli { rd, rs1, shamt },
        Opcode::Srai => Srai { rd, rs1, shamt },
        Opcode::Lui => Lui { rd, imm: imm16 },
        Opcode::Lb | Opcode::Lbu | Opcode::Lh | Opcode::Lhu | Opcode::Lw => {
            let (width, signed) = match op {
                Opcode::Lb => (MemWidth::Byte, true),
                Opcode::Lbu => (MemWidth::Byte, false),
                Opcode::Lh => (MemWidth::Half, true),
                Opcode::Lhu => (MemWidth::Half, false),
                _ => (MemWidth::Word, true),
            };
            Load {
                rd,
                base: rs1,
                offset: simm,
                width,
                signed,
            }
        }
        Opcode::Sb | Opcode::Sh | Opcode::Sw => {
            let width = match op {
                Opcode::Sb => MemWidth::Byte,
                Opcode::Sh => MemWidth::Half,
                _ => MemWidth::Word,
            };
            Store {
                rs: rd,
                base: rs1,
                offset: simm,
                width,
            }
        }
        Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu => {
            let kind = match op {
                Opcode::Beq => BranchKind::Eq,
                Opcode::Bne => BranchKind::Ne,
                Opcode::Blt => BranchKind::Lt,
                Opcode::Bge => BranchKind::Ge,
                Opcode::Bltu => BranchKind::Ltu,
                _ => BranchKind::Geu,
            };
            Branch {
                kind,
                rs1,
                rs2,
                offset: sext14(word),
            }
        }
        Opcode::Jal => Jal {
            rd,
            target: word & IMM22_MASK,
        },
        Opcode::Jalr => Jalr {
            rd,
            rs1,
            offset: simm,
        },
        Opcode::Halt => Halt { code: imm16 },
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_rng::{DefaultRng, Rng};

    fn any_reg(rng: &mut impl Rng) -> Reg {
        Reg::from_index(rng.gen_range(0usize..16)).unwrap()
    }

    fn any_width(rng: &mut impl Rng) -> MemWidth {
        match rng.gen_range(0u32..3) {
            0 => MemWidth::Byte,
            1 => MemWidth::Half,
            _ => MemWidth::Word,
        }
    }

    fn any_branch_kind(rng: &mut impl Rng) -> BranchKind {
        match rng.gen_range(0u32..6) {
            0 => BranchKind::Eq,
            1 => BranchKind::Ne,
            2 => BranchKind::Lt,
            3 => BranchKind::Ge,
            4 => BranchKind::Ltu,
            _ => BranchKind::Geu,
        }
    }

    fn any_i16(rng: &mut impl Rng) -> i16 {
        rng.next_u64() as i16
    }

    /// Generates every instruction form with arbitrary operands
    /// (deterministic counterpart of the former proptest strategy).
    pub(crate) fn any_inst(rng: &mut impl Rng) -> Inst {
        match rng.gen_range(0u32..26) {
            0 => Inst::Add {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            1 => Inst::Sub {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            2 => Inst::And {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            3 => Inst::Or {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            4 => Inst::Xor {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            5 => Inst::Sll {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            6 => Inst::Srl {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            7 => Inst::Sra {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            8 => Inst::Slt {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            9 => Inst::Sltu {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            10 => Inst::Mul {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
            },
            11 => Inst::Addi {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: any_i16(rng),
            },
            12 => Inst::Andi {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: any_i16(rng),
            },
            13 => Inst::Ori {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: any_i16(rng),
            },
            14 => Inst::Xori {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: any_i16(rng),
            },
            15 => Inst::Slti {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: any_i16(rng),
            },
            16 => Inst::Slli {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                shamt: rng.gen_range(0u8..32),
            },
            17 => Inst::Srli {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                shamt: rng.gen_range(0u8..32),
            },
            18 => Inst::Srai {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                shamt: rng.gen_range(0u8..32),
            },
            19 => Inst::Lui {
                rd: any_reg(rng),
                imm: rng.next_u64() as u16,
            },
            20 => {
                let width = any_width(rng);
                Inst::Load {
                    rd: any_reg(rng),
                    base: any_reg(rng),
                    offset: any_i16(rng),
                    width,
                    // Word loads are always "signed" canonically.
                    signed: rng.gen_bool(0.5) || width == MemWidth::Word,
                }
            }
            21 => Inst::Store {
                rs: any_reg(rng),
                base: any_reg(rng),
                offset: any_i16(rng),
                width: any_width(rng),
            },
            22 => Inst::Branch {
                kind: any_branch_kind(rng),
                rs1: any_reg(rng),
                rs2: any_reg(rng),
                offset: rng.gen_range(BRANCH_MIN as i16..BRANCH_MAX as i16 + 1),
            },
            23 => Inst::Jal {
                rd: any_reg(rng),
                target: rng.gen_range(0u32..JAL_MAX + 1),
            },
            24 => Inst::Jalr {
                rd: any_reg(rng),
                rs1: any_reg(rng),
                offset: any_i16(rng),
            },
            _ => Inst::Halt {
                code: rng.next_u64() as u16,
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut rng = DefaultRng::seed_from_u64(0xE4C0DE);
        for _ in 0..2048 {
            let inst = any_inst(&mut rng);
            let word = encode(inst);
            let back = decode(word).unwrap();
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = DefaultRng::seed_from_u64(0xDEC0DE);
        for _ in 0..8192 {
            let _ = decode(rng.next_u64() as u32);
        }
        // Every opcode value, with extreme operand bit patterns.
        for opcode in 0u32..64 {
            for low in [0u32, 1, 0x03FF_FFFF, 0x02AA_AAAA, 0x0155_5555] {
                let _ = decode((opcode << 26) | low);
            }
        }
    }

    #[test]
    fn decode_encode_stable() {
        // Any successfully decoded word re-encodes to something that
        // decodes to the same instruction (canonicalization is stable).
        let mut rng = DefaultRng::seed_from_u64(0x57AB1E);
        for _ in 0..8192 {
            let word = rng.next_u64() as u32;
            if let Ok(inst) = decode(word) {
                let canon = encode(inst);
                assert_eq!(decode(canon).unwrap(), inst, "word {word:#010x}");
            }
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        // Opcode 30 is unassigned.
        let word = 30u32 << 26;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(30)));
    }

    #[test]
    fn sext14_edges() {
        assert_eq!(sext14(0), 0);
        assert_eq!(sext14(0x1FFF), 8191);
        assert_eq!(sext14(0x2000), -8192);
        assert_eq!(sext14(0x3FFF), -1);
    }

    #[test]
    fn nop_encoding_is_zero_fields() {
        // addi r0, r0, 0 encodes as just the Addi opcode.
        assert_eq!(encode(Inst::NOP), (Opcode::Addi as u32) << 26);
    }

    #[test]
    #[should_panic(expected = "branch offset")]
    fn branch_overflow_panics() {
        // i16::MAX exceeds the 14-bit field.
        encode(Inst::Branch {
            kind: BranchKind::Eq,
            rs1: Reg::R0,
            rs2: Reg::R0,
            offset: i16::MAX,
        });
    }
}
