#![warn(missing_docs)]

//! Instruction-set architecture for the `sofi` machine model.
//!
//! The DSN'15 pitfalls paper (§II-C) assumes "a simple RISC CPU with classic
//! in-order execution, without any cache levels on the way to a wait-free
//! main memory, and with a timing of one cycle per CPU instruction", executing
//! programs from fault-immune read-only memory. This crate defines that CPU's
//! instruction set plus the tooling to produce programs for it:
//!
//! * [`Reg`] and [`Inst`] — the architectural register file and instruction
//!   forms (a small 32-bit RISC: ALU, loads/stores, branches, `halt`),
//! * [`encode`]/[`decode`] — a fixed 32-bit binary encoding,
//! * [`Asm`] — a programmatic assembler (label fix-ups, data section) used by
//!   the workload and hardening crates,
//! * [`assemble_text`] — a two-pass text assembler for `.s`-style sources,
//! * [`Program`] — the linked output: instruction ROM plus initial RAM image.
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! let msg = a.data_bytes("msg", b"Hi");
//! a.lb(Reg::R2, Reg::R0, msg.offset());
//! a.serial_out(Reg::R2);
//! a.halt(0);
//! let program = a.build().unwrap();
//! assert_eq!(program.insts.len(), 3);
//! ```

mod asm;
mod encode;
mod error;
mod inst;
mod parse;
mod program;
mod reg;

pub use asm::{Asm, DataLabel, Label};
pub use encode::{decode, encode, BRANCH_MAX, BRANCH_MIN, JAL_MAX};
pub use error::{AsmError, DecodeError};
pub use inst::{BranchKind, Inst, MemWidth, Opcode, RegOps};
pub use parse::assemble_text;
pub use program::Program;
pub use reg::Reg;

/// Memory-mapped I/O base address. Accesses at or above this address do not
/// touch RAM and are therefore outside the fault space. The page occupies
/// the top 256 bytes of the address space so every device register is
/// reachable in one instruction via a negative offset from `r0`.
pub const MMIO_BASE: u32 = 0xFFFF_FF00;

/// Writing a byte here emits it on the serial interface (the observable
/// program output used for failure classification).
pub const MMIO_SERIAL: u32 = 0xFFFF_FF00;

/// Writing here signals "an error was detected and corrected" by a
/// software fault-tolerance mechanism (the benign `Detected & Corrected`
/// outcome of §II-D).
pub const MMIO_DETECT: u32 = 0xFFFF_FF04;

/// Reading a word from here yields the current cycle count (low 32 bits).
pub const MMIO_CYCLE: u32 = 0xFFFF_FF08;

/// Reading a word from here yields the external input latch: the value of
/// the most recent replayed external event (§II-C's deterministic
/// "external events ... replayed at the exact same point in time during
/// each run"), or 0 before the first event.
pub const MMIO_INPUT: u32 = 0xFFFF_FF0C;
