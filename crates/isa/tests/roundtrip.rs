//! Assembler round-trip sweep: for every instruction class, the chain
//! `encode → decode → Display → assemble_text` is the identity on
//! canonical instructions. This pins three independent representations
//! (binary word, decoded enum, assembly text) to each other, so a change
//! to any one of them that forgets the other two fails here.
//!
//! Canonical means what `decode` can produce: branch offsets inside the
//! 14-bit field, `jal` targets inside the 22-bit field, shift amounts
//! below 32, and word-width loads marked signed.

use sofi_isa::{
    assemble_text, decode, encode, BranchKind, Inst, MemWidth, Reg, BRANCH_MAX, BRANCH_MIN, JAL_MAX,
};
use sofi_rng::{DefaultRng, Rng};

fn any_reg(rng: &mut impl Rng) -> Reg {
    Reg::from_index(rng.gen_range(0usize..16)).unwrap()
}

fn any_width(rng: &mut impl Rng) -> MemWidth {
    match rng.gen_range(0u32..3) {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        _ => MemWidth::Word,
    }
}

fn any_branch_kind(rng: &mut impl Rng) -> BranchKind {
    match rng.gen_range(0u32..6) {
        0 => BranchKind::Eq,
        1 => BranchKind::Ne,
        2 => BranchKind::Lt,
        3 => BranchKind::Ge,
        4 => BranchKind::Ltu,
        _ => BranchKind::Geu,
    }
}

/// A random canonical instruction covering every class.
fn any_inst(rng: &mut impl Rng) -> Inst {
    let imm = rng.next_u64() as i16;
    match rng.gen_range(0u32..26) {
        0 => Inst::Add {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        1 => Inst::Sub {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        2 => Inst::And {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        3 => Inst::Or {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        4 => Inst::Xor {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        5 => Inst::Sll {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        6 => Inst::Srl {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        7 => Inst::Sra {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        8 => Inst::Slt {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Inst::Sltu {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        10 => Inst::Mul {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        11 => Inst::Addi {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm,
        },
        12 => Inst::Andi {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm,
        },
        13 => Inst::Ori {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm,
        },
        14 => Inst::Xori {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm,
        },
        15 => Inst::Slti {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm,
        },
        16 => Inst::Slli {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            shamt: rng.gen_range(0u8..32),
        },
        17 => Inst::Srli {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            shamt: rng.gen_range(0u8..32),
        },
        18 => Inst::Srai {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            shamt: rng.gen_range(0u8..32),
        },
        19 => Inst::Lui {
            rd: any_reg(rng),
            imm: rng.next_u64() as u16,
        },
        20 => {
            let width = any_width(rng);
            Inst::Load {
                rd: any_reg(rng),
                base: any_reg(rng),
                offset: imm,
                width,
                signed: rng.gen_bool(0.5) || width == MemWidth::Word,
            }
        }
        21 => Inst::Store {
            rs: any_reg(rng),
            base: any_reg(rng),
            offset: imm,
            width: any_width(rng),
        },
        22 => Inst::Branch {
            kind: any_branch_kind(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: rng.gen_range(BRANCH_MIN as i16..BRANCH_MAX as i16 + 1),
        },
        23 => Inst::Jal {
            rd: any_reg(rng),
            target: rng.gen_range(0u32..JAL_MAX + 1),
        },
        24 => Inst::Jalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm,
        },
        _ => Inst::Halt {
            code: rng.next_u64() as u16,
        },
    }
}

/// Runs a batch of instructions through the full chain and asserts the
/// identity per instruction.
fn assert_roundtrip(insts: &[Inst]) {
    let decoded: Vec<Inst> = insts
        .iter()
        .map(|&i| decode(encode(i)).expect("canonical instruction decodes"))
        .collect();
    assert_eq!(decoded, insts, "encode/decode must already be the identity");
    let text: String = decoded.iter().map(|i| format!("{i}\n")).collect();
    let program = assemble_text("roundtrip", &text)
        .unwrap_or_else(|e| panic!("display form failed to re-assemble: {e}\n{text}"));
    assert_eq!(program.insts, decoded, "assembled text diverged:\n{text}");
}

#[test]
fn boundary_immediates_round_trip() {
    let r = Reg::R7;
    let mut cases = vec![
        Inst::NOP,
        Inst::Halt { code: 0 },
        Inst::Halt { code: u16::MAX },
        Inst::Lui { rd: r, imm: 0 },
        Inst::Lui {
            rd: r,
            imm: u16::MAX,
        },
        Inst::Jal { rd: r, target: 0 },
        Inst::Jal {
            rd: r,
            target: JAL_MAX,
        },
    ];
    for imm in [i16::MIN, -1, 0, 1, i16::MAX] {
        cases.push(Inst::Addi { rd: r, rs1: r, imm });
        cases.push(Inst::Andi { rd: r, rs1: r, imm });
        cases.push(Inst::Ori { rd: r, rs1: r, imm });
        cases.push(Inst::Xori { rd: r, rs1: r, imm });
        cases.push(Inst::Slti { rd: r, rs1: r, imm });
        cases.push(Inst::Load {
            rd: r,
            base: r,
            offset: imm,
            width: MemWidth::Word,
            signed: true,
        });
        cases.push(Inst::Store {
            rs: r,
            base: r,
            offset: imm,
            width: MemWidth::Byte,
        });
        cases.push(Inst::Jalr {
            rd: r,
            rs1: r,
            offset: imm,
        });
    }
    for shamt in [0u8, 1, 31] {
        cases.push(Inst::Slli {
            rd: r,
            rs1: r,
            shamt,
        });
        cases.push(Inst::Srli {
            rd: r,
            rs1: r,
            shamt,
        });
        cases.push(Inst::Srai {
            rd: r,
            rs1: r,
            shamt,
        });
    }
    for offset in [BRANCH_MIN as i16, -1, 0, 1, BRANCH_MAX as i16] {
        for kind in [
            BranchKind::Eq,
            BranchKind::Ne,
            BranchKind::Lt,
            BranchKind::Ge,
            BranchKind::Ltu,
            BranchKind::Geu,
        ] {
            cases.push(Inst::Branch {
                kind,
                rs1: Reg::R1,
                rs2: Reg::R2,
                offset,
            });
        }
    }
    assert_roundtrip(&cases);
}

#[test]
fn seeded_sweep_round_trips_every_class() {
    let mut rng = DefaultRng::seed_from_u64(0x0A5B_71D0);
    for _ in 0..32 {
        let batch: Vec<Inst> = (0..64).map(|_| any_inst(&mut rng)).collect();
        assert_roundtrip(&batch);
    }
}

#[test]
fn load_width_and_sign_mnemonics_round_trip() {
    // One explicit instance per load/store mnemonic, so a Display/parse
    // mnemonic mismatch names itself in the failure.
    let cases = [
        Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: -4,
            width: MemWidth::Byte,
            signed: true,
        },
        Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 4,
            width: MemWidth::Byte,
            signed: false,
        },
        Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: -2,
            width: MemWidth::Half,
            signed: true,
        },
        Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 2,
            width: MemWidth::Half,
            signed: false,
        },
        Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0,
            width: MemWidth::Word,
            signed: true,
        },
        Inst::Store {
            rs: Reg::R3,
            base: Reg::R4,
            offset: 1,
            width: MemWidth::Byte,
        },
        Inst::Store {
            rs: Reg::R3,
            base: Reg::R4,
            offset: -2,
            width: MemWidth::Half,
        },
        Inst::Store {
            rs: Reg::R3,
            base: Reg::R4,
            offset: 8,
            width: MemWidth::Word,
        },
    ];
    assert_roundtrip(&cases);
}
