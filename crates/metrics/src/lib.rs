#![warn(missing_docs)]

//! Result accounting and comparison metrics (paper §III-D, §IV, §V).
//!
//! This crate turns raw campaign results into numbers — both the *correct*
//! ones the paper derives and the *defective* ones it warns against, so the
//! pitfalls can be demonstrated side by side:
//!
//! * [`coverage`] — the fault-coverage factor `c = 1 − F/N` (Eq. 2), in
//!   weighted (Pitfall 1 avoided) and unweighted (Pitfall 1 committed)
//!   variants. Per §IV the metric is **unsound for comparing programs**
//!   either way, because its denominator depends on the benchmark's own
//!   runtime and memory size.
//! * [`failure`] — absolute failure counts: exact from full scans, and
//!   extrapolated from samples (`F_ext = w · F_sampled / N_sampled`,
//!   Pitfall 3 Corollary 2). Proportional to the ground-truth
//!   `P(Failure)` (Eq. 5/6) and therefore the paper's sound comparison
//!   metric.
//! * [`compare`] — the comparison ratio `r = F_hardened / F_baseline`
//!   (`r < 1` ⇔ the hardened variant improves), plus the deliberately
//!   wrong coverage-based comparison for demonstrations.
//! * [`poisson`] — the fault-count model (Eq. 1): DRAM FIT rates, the
//!   per-bit-per-cycle rate `g`, and Table I.
//! * [`confidence`] — Wilson score intervals for sampled estimates.
//! * [`vulnerability`] — AVF/PVF-style per-location vulnerability and the
//!   MWTF metric from related work (§VII), provided as extensions.
//!
//! Not to be confused with `sofi-telemetry`: this crate scores the
//! *programs under test* from experiment outcomes; that one observes the
//! *harness itself* at runtime (faulted-run lengths, memo-probe
//! latencies, journal fsync times) and would exist even if every
//! experiment result were discarded.

pub mod breakdown;
pub mod compare;
pub mod confidence;
pub mod coverage;
pub mod failure;
pub mod poisson;
pub mod vulnerability;

pub use breakdown::{outcome_breakdown, sampled_breakdown, OutcomeBreakdown};
pub use compare::{compare_coverage_wrong, compare_failures, Comparison};
pub use confidence::wilson_interval;
pub use coverage::{fault_coverage, sampled_coverage, Weighting};
pub use failure::{exact_failures, extrapolated_failures, FailureEstimate};
pub use poisson::{table1, PoissonModel, Table1Row, DRAM_FIT_RATES, MEAN_FIT_PER_MBIT};
pub use vulnerability::{byte_vulnerability, mwtf, VulnerabilityMap};
