//! Absolute failure counts — the paper's sound comparison metric (§V).
//!
//! By Eq. 5/6 the ground-truth failure probability of a benchmark run is
//! proportional to its absolute failure count `F` over the full fault
//! space (`P(Failure) ≈ F · g`, with `e^{-gw} ≈ 1`). `F` comes either
//! exactly from a weighted full scan, or extrapolated from samples:
//! `F_ext = population · F_sampled / N_sampled` (Pitfall 3, Corollary 2 —
//! raw sample counts are *not* comparable across benchmarks because
//! `N_sampled` is chosen by the experimenter).

use crate::confidence::wilson_interval;
use sofi_campaign::{CampaignResult, SampledResult};

/// An absolute failure count, exact or estimated.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureEstimate {
    /// The failure count `F` (extrapolated to the population for sampled
    /// campaigns).
    pub failures: f64,
    /// Confidence bounds on `failures` (equal to the point value for exact
    /// scans).
    pub ci: (f64, f64),
    /// `true` if this is an exact full-scan count.
    pub exact: bool,
}

/// Exact weighted failure count from a full fault-space scan.
///
/// # Examples
///
/// ```
/// # use sofi_isa::{Asm, Reg};
/// # use sofi_campaign::Campaign;
/// # let mut a = Asm::with_name("hi");
/// # let msg = a.data_space("msg", 2);
/// # a.li(Reg::R1, 'H' as i32);
/// # a.sb(Reg::R1, Reg::R0, msg.offset());
/// # a.li(Reg::R1, 'i' as i32);
/// # a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
/// # a.lb(Reg::R2, Reg::R0, msg.offset());
/// # a.serial_out(Reg::R2);
/// # a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
/// # a.serial_out(Reg::R2);
/// # let campaign = Campaign::new(&a.build()?)?;
/// let result = campaign.run_full_defuse();
/// let f = sofi_metrics::exact_failures(&result);
/// assert_eq!(f.failures, 48.0); // the paper's "Hi" benchmark
/// assert!(f.exact);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn exact_failures(result: &CampaignResult) -> FailureEstimate {
    let f = result.failure_weight() as f64;
    FailureEstimate {
        failures: f,
        ci: (f, f),
        exact: true,
    }
}

/// Extrapolates a sampled failure count to the population
/// (`F_ext = population · F_sampled / N_sampled`), with a Wilson interval
/// scaled by the same factor.
///
/// The `population` recorded in the [`SampledResult`] is `w` for raw-space
/// samples and `w'` for weight-proportional class samples; in both cases
/// the extrapolated value estimates the same full-space `F` (known-benign
/// coordinates contribute zero failures by construction, §V-C).
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn extrapolated_failures(sampled: &SampledResult, confidence: f64) -> FailureEstimate {
    assert!(sampled.draws > 0, "cannot extrapolate an empty sample");
    let pop = sampled.population as f64;
    let fails = sampled.failure_hits();
    let (lo, hi) = wilson_interval(fails, sampled.draws, confidence);
    FailureEstimate {
        failures: pop * fails as f64 / sampled.draws as f64,
        ci: (pop * lo, pop * hi),
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{Campaign, SamplingMode};
    use sofi_isa::{Asm, Reg};
    use sofi_rng::DefaultRng;

    fn hi_campaign() -> Campaign {
        let mut a = Asm::with_name("hi");
        let msg = a.data_space("msg", 2);
        a.li(Reg::R1, 'H' as i32);
        a.sb(Reg::R1, Reg::R0, msg.offset());
        a.li(Reg::R1, 'i' as i32);
        a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
        a.lb(Reg::R2, Reg::R0, msg.offset());
        a.serial_out(Reg::R2);
        a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
        a.serial_out(Reg::R2);
        Campaign::new(&a.build().unwrap()).unwrap()
    }

    #[test]
    fn raw_space_extrapolation_recovers_exact_f() {
        let c = hi_campaign();
        let exact = exact_failures(&c.run_full_defuse());
        let mut rng = DefaultRng::seed_from_u64(21);
        let s = c.run_sampled(40_000, SamplingMode::UniformRaw, &mut rng);
        let est = extrapolated_failures(&s, 0.95);
        assert!(!est.exact);
        assert!(
            (est.failures - exact.failures).abs() < 3.0,
            "estimate {} vs exact {}",
            est.failures,
            exact.failures
        );
        assert!(est.ci.0 <= exact.failures && exact.failures <= est.ci.1);
    }

    #[test]
    fn weighted_class_extrapolation_recovers_exact_f() {
        let c = hi_campaign();
        let exact = exact_failures(&c.run_full_defuse());
        let mut rng = DefaultRng::seed_from_u64(22);
        let s = c.run_sampled(5_000, SamplingMode::WeightedClasses, &mut rng);
        let est = extrapolated_failures(&s, 0.95);
        // Every "hi" class fails, so the w'-restricted estimate is exact.
        assert_eq!(est.failures, exact.failures);
    }

    #[test]
    fn raw_sample_counts_are_not_comparable() {
        // Pitfall 3 Corollary 2: the raw F_sampled depends on N_sampled,
        // the extrapolated value does not.
        let c = hi_campaign();
        let s_small = c.run_sampled(
            1_000,
            SamplingMode::UniformRaw,
            &mut DefaultRng::seed_from_u64(1),
        );
        let s_big = c.run_sampled(
            32_000,
            SamplingMode::UniformRaw,
            &mut DefaultRng::seed_from_u64(2),
        );
        // Raw counts differ by ~32×…
        assert!(s_big.failure_hits() > s_small.failure_hits() * 20);
        // …extrapolated counts agree.
        let f_small = extrapolated_failures(&s_small, 0.95).failures;
        let f_big = extrapolated_failures(&s_big, 0.95).failures;
        assert!((f_small - f_big).abs() < 6.0, "{f_small} vs {f_big}");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let s = SampledResult {
            benchmark: "t".into(),
            domain: sofi_campaign::FaultDomain::Memory,
            mode: SamplingMode::UniformRaw,
            draws: 0,
            population: 10,
            benign_draws: 0,
            outcomes: vec![],
        };
        extrapolated_failures(&s, 0.95);
    }
}
