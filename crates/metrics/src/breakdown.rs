//! Per-outcome-type accounting (§VI-B generalization).
//!
//! The paper's analyses coalesce everything into No-Effect vs Failure, but
//! §VI-B notes the findings generalize to the full outcome taxonomy:
//! "the remaining effective result-type counts (e.g., 'Silent Data
//! Corruption', 'Timeout', ...) should be included in the analysis and
//! separately extrapolated to the fault-space size". This module does
//! exactly that, for full scans and for samples.

use crate::confidence::wilson_interval;
use sofi_campaign::{CampaignResult, Outcome, SampledResult};

/// Weighted (or extrapolated) counts per detailed outcome kind, indexed
/// as [`Outcome::KINDS`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutcomeBreakdown {
    /// Count (exact weight or extrapolated estimate) per outcome kind.
    pub counts: [f64; 8],
    /// Confidence bounds per kind (degenerate for exact scans).
    pub ci: [(f64, f64); 8],
    /// `true` if from a full scan.
    pub exact: bool,
}

impl OutcomeBreakdown {
    /// The count for one kind by its [`Outcome::kind_index`].
    pub fn count_of(&self, outcome: Outcome) -> f64 {
        self.counts[outcome.kind_index()]
    }

    /// Sum over all failure kinds (everything except the two benign ones).
    pub fn failure_total(&self) -> f64 {
        self.counts[2..].iter().sum()
    }

    /// `(label, count)` rows for the failure kinds, descending by count.
    pub fn failure_rows(&self) -> Vec<(&'static str, f64)> {
        let mut rows: Vec<(&'static str, f64)> = Outcome::KINDS[2..]
            .iter()
            .zip(&self.counts[2..])
            .map(|(&k, &c)| (k, c))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }
}

/// Exact per-kind weighted counts from a full scan. The known-benign
/// pruned weight counts as "No Effect" (index 0).
pub fn outcome_breakdown(result: &CampaignResult) -> OutcomeBreakdown {
    let tally = result.weighted_by_kind();
    let mut counts = [0.0; 8];
    let mut ci = [(0.0, 0.0); 8];
    for (i, &w) in tally.iter().enumerate() {
        counts[i] = w as f64;
        ci[i] = (w as f64, w as f64);
    }
    OutcomeBreakdown {
        counts,
        ci,
        exact: true,
    }
}

/// Extrapolates per-kind counts from a sampling campaign
/// (`count_kind = population · hits_kind / draws`), each with a Wilson
/// interval. For raw-space samples the benign draws land on index 0.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn sampled_breakdown(sampled: &SampledResult, confidence: f64) -> OutcomeBreakdown {
    assert!(sampled.draws > 0, "cannot extrapolate an empty sample");
    let mut hits = [0u64; 8];
    hits[0] = sampled.benign_draws;
    for o in &sampled.outcomes {
        hits[o.outcome.kind_index()] += o.hits;
    }
    let pop = sampled.population as f64;
    let mut counts = [0.0; 8];
    let mut ci = [(0.0, 0.0); 8];
    for i in 0..8 {
        counts[i] = pop * hits[i] as f64 / sampled.draws as f64;
        let (lo, hi) = wilson_interval(hits[i], sampled.draws, confidence);
        ci[i] = (pop * lo, pop * hi);
    }
    OutcomeBreakdown {
        counts,
        ci,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{Campaign, SamplingMode};
    use sofi_isa::{Asm, Reg};
    use sofi_rng::DefaultRng;

    /// A program with several distinct failure modes: SDC (buffer byte),
    /// CPU exception / timeout (pointer and counter words).
    fn multi_mode_program() -> sofi_isa::Program {
        let mut a = Asm::with_name("multimode");
        let data = a.data_bytes("data", &[9]);
        let count = a.data_word("count", 4);
        let ptr = a.data_word("ptr", 0);
        let top = a.label_here();
        a.lw(Reg::R1, Reg::R0, ptr.offset()); // pointer: flips → trap
        a.lb(Reg::R2, Reg::R1, data.offset());
        a.serial_out(Reg::R2);
        a.lw(Reg::R3, Reg::R0, count.offset()); // counter: flips → timeout
        a.addi(Reg::R3, Reg::R3, -1);
        a.sw(Reg::R3, Reg::R0, count.offset());
        a.bne(Reg::R3, Reg::R0, top);
        a.build().unwrap()
    }

    #[test]
    fn exact_breakdown_sums_to_space() {
        let c = Campaign::new(&multi_mode_program()).unwrap();
        let r = c.run_full_defuse();
        let b = outcome_breakdown(&r);
        assert!(b.exact);
        let total: f64 = b.counts.iter().sum();
        assert_eq!(total as u64, r.space.size());
        assert_eq!(b.failure_total() as u64, r.failure_weight());
        // Multiple distinct failure modes are present.
        let nonzero_failures = b.counts[2..].iter().filter(|&&c| c > 0.0).count();
        assert!(nonzero_failures >= 2, "{:?}", b.counts);
    }

    #[test]
    fn sampled_breakdown_matches_exact_per_kind() {
        let c = Campaign::new(&multi_mode_program()).unwrap();
        let exact = outcome_breakdown(&c.run_full_defuse());
        let mut rng = DefaultRng::seed_from_u64(3);
        let s = c.run_sampled(40_000, SamplingMode::UniformRaw, &mut rng);
        let est = sampled_breakdown(&s, 0.99);
        for i in 0..8 {
            assert!(
                est.ci[i].0 <= exact.counts[i] && exact.counts[i] <= est.ci[i].1,
                "kind {i}: exact {} outside CI {:?}",
                exact.counts[i],
                est.ci[i]
            );
        }
        assert!((est.failure_total() - exact.failure_total()).abs() / exact.failure_total() < 0.1);
    }

    #[test]
    fn failure_rows_sorted() {
        let c = Campaign::new(&multi_mode_program()).unwrap();
        let b = outcome_breakdown(&c.run_full_defuse());
        let rows = b.failure_rows();
        for pair in rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
