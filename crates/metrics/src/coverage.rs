//! The fault-coverage factor (Eq. 2) — correctly and incorrectly computed.
//!
//! Coverage `c = 1 − P(Failure | 1 Fault)` was devised for hardware
//! assessment \[Bouricius et al.] and is still what most FI tools report.
//! This module computes it in both accounting variants so Pitfall 1 can be
//! demonstrated, but per §IV the metric — even weighted — must not be used
//! to *compare different programs*: its denominator is the program's own
//! fault-space size, which hardening overheads change.

use crate::confidence::wilson_interval;
use sofi_campaign::{CampaignResult, SampledResult, SamplingMode};

/// Whether def/use class results are weighted by their class size
/// (data-lifetime length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weighting {
    /// **Pitfall 1**: every conducted experiment counts once, and the
    /// pruned known-benign coordinates are dropped entirely. The implied
    /// fault model degenerates to "bit flips while a memory read is in
    /// progress".
    Unweighted,
    /// Correct accounting: each result counts its class weight, and
    /// known-benign coordinates count toward the denominator, restoring
    /// the uniform fault model.
    Weighted,
}

/// Computes the fault-coverage factor of a full fault-space scan.
///
/// * `Weighted`: `c = 1 − F_weighted / w`
/// * `Unweighted`: `c = 1 − F_raw / N_experiments` (wrong, for
///   demonstration)
///
/// # Examples
///
/// ```
/// # use sofi_isa::{Asm, Reg};
/// # use sofi_campaign::Campaign;
/// use sofi_metrics::{fault_coverage, Weighting};
/// # let mut a = Asm::with_name("hi");
/// # let msg = a.data_space("msg", 2);
/// # a.li(Reg::R1, 'H' as i32);
/// # a.sb(Reg::R1, Reg::R0, msg.offset());
/// # a.li(Reg::R1, 'i' as i32);
/// # a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
/// # a.lb(Reg::R2, Reg::R0, msg.offset());
/// # a.serial_out(Reg::R2);
/// # a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
/// # a.serial_out(Reg::R2);
/// # let campaign = Campaign::new(&a.build()?)?;
/// let result = campaign.run_full_defuse();
/// // The paper's "Hi" benchmark: c = 1 − 48/128 = 62.5 %.
/// assert_eq!(fault_coverage(&result, Weighting::Weighted), 0.625);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fault_coverage(result: &CampaignResult, weighting: Weighting) -> f64 {
    match weighting {
        Weighting::Weighted => {
            let w = result.space.size() as f64;
            1.0 - result.failure_weight() as f64 / w
        }
        Weighting::Unweighted => {
            let n = result.experiments_run();
            if n == 0 {
                return 1.0;
            }
            1.0 - result.failure_raw() as f64 / n as f64
        }
    }
}

/// A sampled coverage estimate with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageEstimate {
    /// Point estimate of the coverage.
    pub coverage: f64,
    /// Wilson confidence interval for the coverage.
    pub ci: (f64, f64),
    /// Number of draws underlying the estimate.
    pub draws: u64,
}

/// Estimates the (weighted) fault coverage from a sampling campaign, with
/// a Wilson score interval at the given confidence.
///
/// Only [`SamplingMode::UniformRaw`] samples estimate the true coverage
/// directly (every raw coordinate is equally likely). For
/// [`SamplingMode::WeightedClasses`] the estimate is corrected for the
/// restricted population `w'` by crediting the skipped benign weight.
/// Estimates from [`SamplingMode::BiasedPerClass`] are computed the same
/// way as weighted-class ones but are *biased by construction*
/// (Pitfall 2) — useful only to display the bias.
pub fn sampled_coverage(sampled: &SampledResult, confidence: f64) -> CoverageEstimate {
    let fail = sampled.failure_hits();
    let n = sampled.draws;
    let (p_low, p_high) = wilson_interval(fail, n, confidence);
    let p_hat = fail as f64 / n as f64;
    match sampled.mode {
        SamplingMode::UniformRaw => CoverageEstimate {
            coverage: 1.0 - p_hat,
            ci: (1.0 - p_high, 1.0 - p_low),
            draws: n,
        },
        SamplingMode::WeightedClasses | SamplingMode::BiasedPerClass => {
            // Population w' excludes known-benign weight; scale failure
            // fraction back to the full space assuming the caller knows w
            // only through the sampled population. c = 1 − p̂ · w'/w is not
            // computable without w, so report coverage relative to the
            // *full* space via the population ratio when available.
            // Here population == w', and the benign remainder was never
            // sampled, so the failure fraction of the full space is
            // p̂ · w' / w. We cannot know w from the sample alone; callers
            // comparing coverages must use UniformRaw. We still expose the
            // conditional coverage 1 − p̂ (failure probability given a
            // non-benign hit).
            CoverageEstimate {
                coverage: 1.0 - p_hat,
                ci: (1.0 - p_high, 1.0 - p_low),
                draws: n,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{ExperimentResult, Outcome, OutcomeClass};
    use sofi_space::{Experiment, FaultCoord, FaultSpace};

    fn result_with(results: Vec<(u64, Outcome)>, benign_weight: u64) -> CampaignResult {
        let results = results
            .into_iter()
            .enumerate()
            .map(|(i, (weight, outcome))| ExperimentResult {
                experiment: Experiment {
                    id: i as u32,
                    coord: FaultCoord {
                        cycle: i as u64 + 1,
                        bit: 0,
                    },
                    weight,
                },
                outcome,
            })
            .collect::<Vec<_>>();
        let total: u64 = results.iter().map(|r| r.experiment.weight).sum::<u64>() + benign_weight;
        CampaignResult {
            benchmark: "t".into(),
            domain: sofi_campaign::FaultDomain::Memory,
            space: FaultSpace::new(total, 1),
            known_benign_weight: benign_weight,
            golden_cycles: total,
            results,
        }
    }

    #[test]
    fn weighting_changes_coverage() {
        // Two experiments: a heavy benign class and a light failing one.
        // Unweighted: c = 1 − 1/2 = 50 %. Weighted: c = 1 − 1/20 = 95 %.
        let r = result_with(
            vec![(9, Outcome::NoEffect), (1, Outcome::SilentDataCorruption)],
            10,
        );
        assert_eq!(fault_coverage(&r, Weighting::Unweighted), 0.5);
        assert_eq!(fault_coverage(&r, Weighting::Weighted), 0.95);
    }

    #[test]
    fn figure_1b_weighting_example() {
        // §III-D: 8 experiments, 4 fail, class weight 7 each, space 108.
        // Unweighted (wrong): 50 %. Weighted: 1 − 28/108 ≈ 74.1 %.
        let mut results = Vec::new();
        for i in 0..8u64 {
            let outcome = if i < 4 {
                Outcome::SilentDataCorruption
            } else {
                Outcome::NoEffect
            };
            results.push((7, outcome));
        }
        let r = result_with(results, 108 - 56);
        assert_eq!(fault_coverage(&r, Weighting::Unweighted), 0.5);
        let c = fault_coverage(&r, Weighting::Weighted);
        assert!((c - (1.0 - 28.0 / 108.0)).abs() < 1e-12);
        assert!((c - 0.7407).abs() < 1e-3);
    }

    #[test]
    fn empty_campaign_has_full_coverage() {
        let r = result_with(vec![], 42);
        assert_eq!(fault_coverage(&r, Weighting::Unweighted), 1.0);
        assert_eq!(fault_coverage(&r, Weighting::Weighted), 1.0);
    }

    #[test]
    fn detected_corrected_counts_as_covered() {
        let r = result_with(vec![(5, Outcome::DetectedCorrected)], 0);
        assert_eq!(fault_coverage(&r, Weighting::Weighted), 1.0);
        // Sanity: failure outcomes are the complement.
        assert_eq!(r.count_weighted(|o| o.class() == OutcomeClass::Failure), 0);
    }
}
