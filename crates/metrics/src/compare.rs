//! Benchmark comparison (§I, §V).
//!
//! The ground truth for "does hardening help?" is the ratio of absolute
//! failure probabilities, which by Eq. 6 reduces to the ratio of absolute
//! (extrapolated) failure counts:
//!
//! ```text
//! r = P(Failure)_hardened / P(Failure)_baseline
//!   = (w_h · F_h,sampled / N_h,sampled) / (w_b · F_b,sampled / N_b,sampled)
//! ```
//!
//! with `r < 1` iff the hardened variant improves. For full scans the
//! formula collapses to `r = F_hardened / F_baseline`.

use crate::coverage::{fault_coverage, Weighting};
use crate::failure::FailureEstimate;
use sofi_campaign::CampaignResult;
use std::fmt;

/// Result of comparing a hardened variant against its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Comparison {
    /// The ratio `r = F_hardened / F_baseline`.
    pub ratio: f64,
    /// Conservative bounds on `r` from the operands' confidence intervals
    /// (`[F_h.lo / F_b.hi, F_h.hi / F_b.lo]`).
    pub ci: (f64, f64),
}

impl Comparison {
    /// `true` iff the hardened variant reduces the failure count
    /// (`r < 1`).
    pub fn improves(&self) -> bool {
        self.ratio < 1.0
    }

    /// `true` if the confidence interval excludes 1 (the verdict is
    /// statistically unambiguous at the interval's level).
    pub fn conclusive(&self) -> bool {
        self.ci.1 < 1.0 || self.ci.0 > 1.0
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.ratio < 1.0 {
            "improves"
        } else if self.ratio == 1.0 {
            "no change"
        } else {
            "worsens"
        };
        write!(
            f,
            "r = {:.3} [{:.3}, {:.3}] ({verdict})",
            self.ratio, self.ci.0, self.ci.1
        )
    }
}

/// Compares two failure estimates: the paper's sound metric.
///
/// # Panics
///
/// Panics if the baseline estimate is zero — a benchmark without any
/// failing coordinate cannot be improved upon and the ratio is undefined.
pub fn compare_failures(baseline: &FailureEstimate, hardened: &FailureEstimate) -> Comparison {
    assert!(
        baseline.failures > 0.0,
        "baseline failure count is zero; ratio undefined"
    );
    let ratio = hardened.failures / baseline.failures;
    let lo = if baseline.ci.1 > 0.0 {
        hardened.ci.0 / baseline.ci.1
    } else {
        f64::INFINITY
    };
    let hi = if baseline.ci.0 > 0.0 {
        hardened.ci.1 / baseline.ci.0
    } else {
        f64::INFINITY
    };
    Comparison {
        ratio,
        ci: (lo, hi),
    }
}

/// **The defective comparison of §IV** — compares fault coverages and
/// declares the higher-coverage variant better. Provided only to
/// demonstrate the Fault-Space Dilution Delusion: any program can raise
/// its coverage arbitrarily by padding runtime or memory, without removing
/// a single failure.
///
/// Returns `(coverage_baseline, coverage_hardened, "hardened wins?")`.
pub fn compare_coverage_wrong(
    baseline: &CampaignResult,
    hardened: &CampaignResult,
    weighting: Weighting,
) -> (f64, f64, bool) {
    let cb = fault_coverage(baseline, weighting);
    let ch = fault_coverage(hardened, weighting);
    (cb, ch, ch > cb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(f: f64, lo: f64, hi: f64) -> FailureEstimate {
        FailureEstimate {
            failures: f,
            ci: (lo, hi),
            exact: false,
        }
    }

    #[test]
    fn ratio_and_verdict() {
        let c = compare_failures(&est(100.0, 90.0, 110.0), &est(20.0, 15.0, 25.0));
        assert!((c.ratio - 0.2).abs() < 1e-12);
        assert!(c.improves());
        assert!(c.conclusive()); // 25/90 < 1
    }

    #[test]
    fn worsening_detected() {
        let c = compare_failures(&est(100.0, 95.0, 105.0), &est(520.0, 500.0, 540.0));
        assert!(c.ratio > 5.0);
        assert!(!c.improves());
        assert!(c.conclusive());
    }

    #[test]
    fn overlapping_intervals_are_inconclusive() {
        let c = compare_failures(&est(100.0, 60.0, 140.0), &est(95.0, 55.0, 135.0));
        assert!(!c.conclusive());
    }

    #[test]
    fn exact_comparison_has_tight_ci() {
        let b = FailureEstimate {
            failures: 48.0,
            ci: (48.0, 48.0),
            exact: true,
        };
        let h = FailureEstimate {
            failures: 12.0,
            ci: (12.0, 12.0),
            exact: true,
        };
        let c = compare_failures(&b, &h);
        assert_eq!(c.ratio, 0.25);
        assert_eq!(c.ci, (0.25, 0.25));
    }

    #[test]
    #[should_panic(expected = "ratio undefined")]
    fn zero_baseline_panics() {
        compare_failures(&est(0.0, 0.0, 0.0), &est(1.0, 1.0, 1.0));
    }

    #[test]
    fn display_format() {
        let c = compare_failures(&est(10.0, 10.0, 10.0), &est(5.0, 5.0, 5.0));
        assert_eq!(c.to_string(), "r = 0.500 [0.500, 0.500] (improves)");
    }
}
