//! Confidence intervals for sampled proportions.

/// Two-sided Wilson score interval for a binomial proportion.
///
/// `successes` out of `trials` at the given `confidence` level (e.g.
/// `0.95`). Returns `(low, high)` bounds on the underlying proportion.
/// The Wilson interval behaves well for proportions near 0 and 1, which is
/// the normal regime for failure fractions.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or `confidence` is not in
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = sofi_metrics::wilson_interval(375, 1_000, 0.95);
/// assert!(lo < 0.375 && 0.375 < hi);
/// assert!(hi - lo < 0.07);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials, "successes exceed trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9 — far below sampling noise).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_rng::{DefaultRng, Rng};

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
    }

    #[test]
    fn interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(50, 100, 0.95);
        assert!(lo < 0.5 && 0.5 < hi);
        let (lo, hi) = wilson_interval(0, 100, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.06);
        let (lo, hi) = wilson_interval(100, 100, 0.95);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.94);
    }

    #[test]
    fn interval_narrows_with_samples() {
        let (lo1, hi1) = wilson_interval(10, 100, 0.95);
        let (lo2, hi2) = wilson_interval(1_000, 10_000, 0.95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn interval_is_ordered_and_bounded() {
        let mut rng = DefaultRng::seed_from_u64(0x417);
        for _ in 0..512 {
            let s = rng.gen_range(0u64..1_000);
            let n = s + rng.gen_range(0u64..1_000) + 1;
            let c = 0.5 + 0.499 * rng.next_f64();
            let (lo, hi) = wilson_interval(s, n, c);
            assert!((0.0..=1.0).contains(&lo), "lo {lo} for ({s}, {n}, {c})");
            assert!((0.0..=1.0).contains(&hi), "hi {hi} for ({s}, {n}, {c})");
            assert!(lo <= hi);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p - 1e-12 <= hi);
        }
    }

    #[test]
    fn quantile_is_monotonic() {
        let mut rng = DefaultRng::seed_from_u64(0x418);
        for _ in 0..512 {
            let a = 0.001 + 0.998 * rng.next_f64();
            let b = 0.001 + 0.998 * rng.next_f64();
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            assert!(
                normal_quantile(a) <= normal_quantile(b),
                "quantile not monotonic between {a} and {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        wilson_interval(0, 0, 0.95);
    }
}
