//! The Poisson fault-count model (§III-A, Table I).
//!
//! With uniformly distributed independent single-bit flips at per-bit rate
//! `g`, the number of faults hitting one benchmark run of fault-space size
//! `w = Δt · Δm` is Poisson-distributed with `λ = g·w` (Eq. 1):
//!
//! ```text
//! P_λ(k) = λ^k / k! · e^{-λ}
//! ```
//!
//! For realistic DRAM soft-error rates λ is tiny, which justifies the
//! single-fault-per-experiment methodology: `P(k ≥ 2)` is negligible
//! relative to `P(1)`.

/// Published DRAM soft-error rates in FIT/Mbit the paper averages:
/// 0.061 \[Sridharan & Liberty], 0.066 \[Sridharan et al.], 0.044
/// \[the 2013 large-scale field study].
pub const DRAM_FIT_RATES: [f64; 3] = [0.061, 0.066, 0.044];

/// Mean of [`DRAM_FIT_RATES`]: 0.057 FIT/Mbit, the paper's working value.
pub const MEAN_FIT_PER_MBIT: f64 =
    (DRAM_FIT_RATES[0] + DRAM_FIT_RATES[1] + DRAM_FIT_RATES[2]) / 3.0;

/// Converts a FIT/Mbit rate into the per-bit per-nanosecond rate `g`
/// (1 FIT = one failure per 10⁹ hours; 1 Mbit = 10⁶ bits).
///
/// For 0.057 FIT/Mbit this yields ≈ 1.6 · 10⁻²⁹ /(ns·bit), matching the
/// paper's derivation in §III-A.
///
/// # Examples
///
/// ```
/// let g = sofi_metrics::poisson::fit_per_mbit_to_per_bit_ns(sofi_metrics::MEAN_FIT_PER_MBIT);
/// assert!((g - 1.58e-29).abs() < 0.05e-29);
/// ```
pub fn fit_per_mbit_to_per_bit_ns(fit_per_mbit: f64) -> f64 {
    // failures / (1e9 h · 1e6 bit) → h = 3600e9 ns
    fit_per_mbit / (1e9 * 3600.0 * 1e9 * 1e6)
}

/// The Poisson fault-occurrence model for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoissonModel {
    /// Per-bit per-cycle fault rate `g` (the simplistic CPU runs at
    /// 1 GHz, so cycles and nanoseconds coincide).
    pub g: f64,
}

impl Default for PoissonModel {
    /// The paper's working model: `g` from the mean DRAM FIT rate.
    fn default() -> Self {
        PoissonModel {
            g: fit_per_mbit_to_per_bit_ns(MEAN_FIT_PER_MBIT),
        }
    }
}

impl PoissonModel {
    /// Creates a model with an explicit rate.
    pub fn new(g: f64) -> PoissonModel {
        PoissonModel { g }
    }

    /// The Poisson parameter `λ = g · w` for fault-space size `w`.
    pub fn lambda(&self, fault_space: f64) -> f64 {
        self.g * fault_space
    }

    /// `P_λ(k)`: probability of exactly `k` independent faults hitting a
    /// run with fault-space size `fault_space` (Eq. 1).
    pub fn p_faults(&self, k: u32, fault_space: f64) -> f64 {
        let lambda = self.lambda(fault_space);
        poisson_pmf(k, lambda)
    }

    /// The paper's single-fault approximation of the failure probability
    /// (Eq. 5): `P(Failure) ≈ F · g · e^{-g·w}` where `F` is the absolute
    /// (weighted or extrapolated) failure count.
    pub fn failure_probability(&self, failures: f64, fault_space: f64) -> f64 {
        failures * self.g * (-self.lambda(fault_space)).exp()
    }
}

/// Poisson probability mass function, numerically stable for tiny λ.
pub fn poisson_pmf(k: u32, lambda: f64) -> f64 {
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    // ln P = k·ln λ − λ − ln k!
    let mut ln_fact = 0.0;
    for i in 2..=k {
        ln_fact += (i as f64).ln();
    }
    ((k as f64) * lambda.ln() - lambda - ln_fact).exp()
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table1Row {
    /// Fault count `k`.
    pub k: u32,
    /// `P_λ(k Faults)`.
    pub probability: f64,
}

/// Regenerates Table I: Poisson probabilities for `k = 0..=k_max` faults
/// hitting one run of the paper's example benchmark (`Δt` = 10⁹ cycles,
/// i.e. 1 s at 1 GHz; `Δm` = 1 MiB = 2²³ bits).
///
/// # Examples
///
/// ```
/// let rows = sofi_metrics::table1(5);
/// assert!(rows[0].probability > 0.999_999_999);          // k = 0 dominates
/// assert!(rows[1].probability < 2e-13);                  // one fault: ~1.3e-13
/// assert!(rows[2].probability < rows[1].probability * 1e-12); // k = 2 negligible
/// ```
pub fn table1(k_max: u32) -> Vec<Table1Row> {
    let model = PoissonModel::default();
    // Δt = 1 s = 1e9 cycles; Δm = 1 MiB = 8 Mibit = 2^23 bits.
    let w = 1e9 * (8.0 * 1024.0 * 1024.0);
    (0..=k_max)
        .map(|k| Table1Row {
            k,
            probability: model.p_faults(k, w),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_conversion_matches_paper() {
        // The paper derives g ≈ 1.6e-29 per ns·bit from 0.057 FIT/Mbit.
        let g = fit_per_mbit_to_per_bit_ns(MEAN_FIT_PER_MBIT);
        assert!((g / 1.6e-29 - 1.0).abs() < 0.02, "g = {g:e}");
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1, 1.0, 5.0] {
            let total: f64 = (0..200).map(|k| poisson_pmf(k, lambda)).sum();
            assert!((total - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn pmf_edge_cases() {
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
        assert!((poisson_pmf(0, 1.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert!((poisson_pmf(1, 1.0) - (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1(5);
        assert_eq!(rows.len(), 6);
        // k = 0 is overwhelmingly likely.
        assert!(rows[0].probability > 0.999_999_999_999);
        // λ ≈ 1.33e-13 for 1 s × 1 MiB at g = 1.583e-29.
        let lambda = PoissonModel::default().lambda(1e9 * 8_388_608.0);
        assert!((lambda / 1.33e-13 - 1.0).abs() < 0.02, "λ = {lambda:e}");
        assert!((rows[1].probability / lambda - 1.0).abs() < 1e-9);
        // Each further fault is ~13 orders of magnitude less likely: the
        // justification for single-fault injection (§III-A).
        for pair in rows.windows(2).skip(1) {
            assert!(pair[1].probability < pair[0].probability * 1e-12);
        }
    }

    #[test]
    fn failure_probability_proportional_to_f() {
        // Eq. 6: P(Failure) ∝ F for fixed g (e^{-gw} ≈ 1).
        let m = PoissonModel::default();
        let w = 1e6 * 8192.0;
        let p1 = m.failure_probability(100.0, w);
        let p2 = m.failure_probability(500.0, w);
        assert!((p2 / p1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exp_correction_is_negligible() {
        // §V-A: 1 − e^{-gw} < 1e-12 for the example magnitudes.
        let m = PoissonModel::default();
        let w = 1e9 * 8_388_608.0;
        assert!(1.0 - (-m.lambda(w)).exp() < 1e-12);
    }
}
