//! The golden (fault-free reference) run.

use crate::timeline::Timelines;
use sofi_isa::Program;
use sofi_machine::{
    ExternalEvent, Machine, MachineConfig, MemAccess, RecordingObserver, RegAccess, RunStatus,
};
use std::error::Error;
use std::fmt;

/// Error capturing a golden run: the fault-free benchmark must terminate
/// cleanly, otherwise it is unusable as a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenError {
    /// The benchmark did not finish within the cycle limit.
    CycleLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// The benchmark stopped with a trap or nonzero exit code.
    AbnormalExit(RunStatus),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::CycleLimit { limit } => {
                write!(f, "golden run exceeded cycle limit {limit}")
            }
            GoldenError::AbnormalExit(status) => {
                write!(f, "golden run ended abnormally: {status:?}")
            }
        }
    }
}

impl Error for GoldenError {}

/// The reference run of a benchmark: its observable behaviour plus the
/// memory-access trace that drives fault-space analysis.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Benchmark runtime in cycles (`Δt`, the fault space's time extent).
    pub cycles: u64,
    /// RAM size in bits (`Δm`, the fault space's memory extent).
    pub ram_bits: u64,
    /// Reference serial output.
    pub serial: Vec<u8>,
    /// Reference exit code (always a clean halt; see [`GoldenRun::capture`]).
    pub exit_code: u16,
    /// Detection signals raised during the fault-free run (normally 0; a
    /// hardened benchmark raising detections without faults indicates
    /// false positives in the protection mechanism).
    pub detect_count: u64,
    /// Full RAM access trace in execution order.
    pub trace: Vec<MemAccess>,
    /// Full register-file access trace in execution order (for the
    /// §VI-B register fault model).
    pub reg_trace: Vec<RegAccess>,
}

impl GoldenRun {
    /// Executes `program` fault-free and captures the golden run.
    ///
    /// # Errors
    ///
    /// [`GoldenError::CycleLimit`] if the program runs longer than
    /// `cycle_limit`; [`GoldenError::AbnormalExit`] if it traps or halts
    /// with a nonzero code — a benchmark must be correct before its fault
    /// susceptibility can be measured.
    pub fn capture(program: &Program, cycle_limit: u64) -> Result<GoldenRun, GoldenError> {
        Self::capture_with_config(program, cycle_limit, MachineConfig::default())
    }

    /// [`GoldenRun::capture`] with explicit machine limits.
    ///
    /// # Errors
    ///
    /// Same as [`GoldenRun::capture`].
    pub fn capture_with_config(
        program: &Program,
        cycle_limit: u64,
        config: MachineConfig,
    ) -> Result<GoldenRun, GoldenError> {
        Self::capture_with_events(program, cycle_limit, config, Vec::new())
    }

    /// [`GoldenRun::capture`] with a deterministic external-event schedule
    /// (§II-C: replayed inputs keep the run reproducible).
    ///
    /// # Errors
    ///
    /// Same as [`GoldenRun::capture`].
    pub fn capture_with_events(
        program: &Program,
        cycle_limit: u64,
        config: MachineConfig,
        events: Vec<ExternalEvent>,
    ) -> Result<GoldenRun, GoldenError> {
        let mut obs = RecordingObserver::default();
        let mut machine = Machine::with_events(program, config, events);
        match machine.run_observed(cycle_limit, &mut obs) {
            RunStatus::Halted { code: 0 } => {}
            RunStatus::CycleLimit => return Err(GoldenError::CycleLimit { limit: cycle_limit }),
            other => return Err(GoldenError::AbnormalExit(other)),
        }
        Ok(GoldenRun {
            cycles: machine.cycle(),
            ram_bits: machine.ram().size_bits(),
            serial: machine.serial().to_vec(),
            exit_code: 0,
            detect_count: machine.detect_count(),
            trace: obs.accesses,
            reg_trace: obs.reg_accesses,
        })
    }

    /// Total fault-space size `w = Δt · Δm` in (cycle, bit) coordinates.
    pub fn fault_space_size(&self) -> u64 {
        self.cycles * self.ram_bits
    }

    /// `true` if `observed` is a prefix of the reference serial output.
    ///
    /// Used by the campaign executor's convergence termination: a faulted
    /// run whose machine state has converged back onto a pristine
    /// checkpoint will emit exactly the golden *tail* from there on, so
    /// its complete output equals golden iff the part already written is
    /// a golden prefix — if it is not, the run is already a silent data
    /// corruption and can be classified without simulating further.
    pub fn matches_serial_prefix(&self, observed: &[u8]) -> bool {
        self.serial.starts_with(observed)
    }

    /// Digests the access trace into per-bit timelines.
    pub fn timelines(&self) -> Timelines {
        Timelines::build(&self.trace, self.ram_bits)
    }

    /// Digests the register-file access trace into per-bit timelines
    /// (480 bits: `r1..r15` × 32).
    pub fn reg_timelines(&self) -> Timelines {
        Timelines::build_registers(&self.reg_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};

    #[test]
    fn captures_reference_behaviour() {
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[3]);
        a.lb(Reg::R1, Reg::R0, x.offset());
        a.serial_out(Reg::R1);
        a.sb(Reg::R1, Reg::R0, x.offset());
        let p = a.build().unwrap();
        let g = GoldenRun::capture(&p, 1_000).unwrap();
        assert_eq!(g.cycles, 3);
        assert_eq!(g.ram_bits, 8);
        assert_eq!(g.serial, vec![3]);
        assert_eq!(g.trace.len(), 2);
        assert_eq!(g.fault_space_size(), 24);
    }

    #[test]
    fn serial_prefix_check() {
        let mut a = Asm::new();
        let x = a.data_bytes("x", b"abc");
        for i in 0..3 {
            a.lb(Reg::R1, Reg::R0, x.at(i).offset());
            a.serial_out(Reg::R1);
        }
        let p = a.build().unwrap();
        let g = GoldenRun::capture(&p, 1_000).unwrap();
        assert!(g.matches_serial_prefix(b""));
        assert!(g.matches_serial_prefix(b"ab"));
        assert!(g.matches_serial_prefix(b"abc"));
        assert!(!g.matches_serial_prefix(b"ax"));
        assert!(!g.matches_serial_prefix(b"abcd"));
    }

    #[test]
    fn rejects_nonterminating() {
        let mut a = Asm::new();
        let top = a.label_here();
        a.j(top);
        let p = a.build().unwrap();
        assert!(matches!(
            GoldenRun::capture(&p, 100),
            Err(GoldenError::CycleLimit { limit: 100 })
        ));
    }

    #[test]
    fn rejects_trapping_program() {
        let mut a = Asm::new();
        a.lw(Reg::R1, Reg::R0, 100); // no RAM at all
        let p = a.build().unwrap();
        assert!(matches!(
            GoldenRun::capture(&p, 100),
            Err(GoldenError::AbnormalExit(RunStatus::Trapped(_)))
        ));
    }

    #[test]
    fn rejects_nonzero_exit() {
        let mut a = Asm::new();
        a.halt(2);
        let p = a.build().unwrap();
        assert!(matches!(
            GoldenRun::capture(&p, 100),
            Err(GoldenError::AbnormalExit(RunStatus::Halted { code: 2 }))
        ));
    }
}
