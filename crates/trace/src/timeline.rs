//! Per-bit access timelines.
//!
//! The def/use analysis of §III-C works bit-by-bit along the memory axis of
//! the fault space: for each RAM bit it needs the ordered sequence of
//! *defs* (writes) and *uses* (reads) touching that bit. [`Timelines`]
//! expands the byte/half/word access trace into exactly that.

use sofi_machine::{AccessKind, MemAccess, RegAccess, REG_FILE_BITS};

/// One event on a single bit's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitEvent {
    /// Cycle of the access (1-based).
    pub cycle: u64,
    /// Read ("use") or write ("def").
    pub kind: AccessKind,
}

/// Ordered access events for every RAM bit.
///
/// # Examples
///
/// ```
/// use sofi_machine::{MemAccess, AccessKind};
/// use sofi_isa::MemWidth;
/// use sofi_trace::Timelines;
///
/// let trace = vec![MemAccess {
///     cycle: 2,
///     addr: 0,
///     width: MemWidth::Byte,
///     kind: AccessKind::Write,
/// }];
/// let tl = Timelines::build(&trace, 16);
/// assert_eq!(tl.events(0).len(), 1);
/// assert!(tl.events(8).is_empty()); // second byte untouched
/// ```
#[derive(Debug, Clone)]
pub struct Timelines {
    per_bit: Vec<Vec<BitEvent>>,
}

impl Timelines {
    /// Expands an access trace into per-bit event lists.
    ///
    /// Events arrive in execution order from the machine, so each bit's
    /// list is sorted by cycle without further work.
    ///
    /// # Panics
    ///
    /// Panics if an access touches a bit at or beyond `ram_bits` (the
    /// machine bounds-checks accesses, so this indicates trace corruption).
    pub fn build(trace: &[MemAccess], ram_bits: u64) -> Timelines {
        let mut per_bit: Vec<Vec<BitEvent>> = vec![Vec::new(); ram_bits as usize];
        for access in trace {
            for bit in access.bits() {
                per_bit[bit as usize].push(BitEvent {
                    cycle: access.cycle,
                    kind: access.kind,
                });
            }
        }
        Timelines { per_bit }
    }

    /// Expands a register-file access trace into per-bit event lists
    /// (`(reg − 1) · 32 + bit` over `r1..r15`). Unlike RAM, a single
    /// instruction may read *and* write the same register, producing two
    /// same-cycle events in read-before-write order — the def/use
    /// analysis handles this explicitly.
    pub fn build_registers(trace: &[RegAccess]) -> Timelines {
        let mut per_bit: Vec<Vec<BitEvent>> = vec![Vec::new(); REG_FILE_BITS as usize];
        for access in trace {
            for bit in access.bits() {
                per_bit[bit as usize].push(BitEvent {
                    cycle: access.cycle,
                    kind: access.kind,
                });
            }
        }
        Timelines { per_bit }
    }

    /// Number of RAM bits covered (`Δm`).
    pub fn ram_bits(&self) -> u64 {
        self.per_bit.len() as u64
    }

    /// Events for one bit, in cycle order.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= ram_bits()`.
    pub fn events(&self, bit: u64) -> &[BitEvent] {
        &self.per_bit[bit as usize]
    }

    /// Iterates over `(bit, events)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[BitEvent])> {
        self.per_bit
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v.as_slice()))
    }

    /// Total number of bit-events (trace volume metric).
    pub fn event_count(&self) -> usize {
        self.per_bit.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::MemWidth;

    fn acc(cycle: u64, addr: u32, width: MemWidth, kind: AccessKind) -> MemAccess {
        MemAccess {
            cycle,
            addr,
            width,
            kind,
        }
    }

    #[test]
    fn word_access_touches_32_bits() {
        let tl = Timelines::build(&[acc(1, 4, MemWidth::Word, AccessKind::Read)], 64);
        for bit in 0..32 {
            assert!(tl.events(bit).is_empty());
        }
        for bit in 32..64 {
            assert_eq!(
                tl.events(bit),
                &[BitEvent {
                    cycle: 1,
                    kind: AccessKind::Read
                }]
            );
        }
        assert_eq!(tl.event_count(), 32);
    }

    #[test]
    fn events_stay_in_cycle_order() {
        let tl = Timelines::build(
            &[
                acc(1, 0, MemWidth::Byte, AccessKind::Write),
                acc(5, 0, MemWidth::Byte, AccessKind::Read),
                acc(9, 0, MemWidth::Byte, AccessKind::Write),
            ],
            8,
        );
        let cycles: Vec<u64> = tl.events(3).iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 5, 9]);
    }

    #[test]
    fn overlapping_widths_compose() {
        // A word write then a byte read of its third byte.
        let tl = Timelines::build(
            &[
                acc(1, 0, MemWidth::Word, AccessKind::Write),
                acc(2, 2, MemWidth::Byte, AccessKind::Read),
            ],
            32,
        );
        assert_eq!(tl.events(16).len(), 2); // byte 2 sees both
        assert_eq!(tl.events(8).len(), 1); // byte 1 sees only the write
    }

    #[test]
    fn iter_covers_all_bits() {
        let tl = Timelines::build(&[], 24);
        assert_eq!(tl.iter().count(), 24);
        assert_eq!(tl.ram_bits(), 24);
    }
}
