//! Trace statistics.
//!
//! Summary numbers about a golden run's memory behaviour. These feed the
//! paper's Figure 2g (runtime and memory usage of each benchmark variant)
//! and help explain *why* weighting matters: the wider the spread of data
//! lifetimes, the larger the bias of unweighted accounting (§III-D).

use crate::golden::GoldenRun;
use sofi_machine::AccessKind;

/// Aggregate statistics over a golden run's access trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceStats {
    /// Runtime in cycles (`Δt`).
    pub cycles: u64,
    /// RAM size in bits (`Δm`).
    pub ram_bits: u64,
    /// Fault-space size `w = Δt · Δm`.
    pub fault_space: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
    /// Bits read over the whole run (loads × width).
    pub bits_read: u64,
    /// Bits written over the whole run (stores × width).
    pub bits_written: u64,
    /// Bytes of RAM touched at least once.
    pub bytes_touched: u64,
    /// Serial output length (bytes).
    pub output_len: usize,
}

impl TraceStats {
    /// Computes statistics from a golden run.
    pub fn from_golden(golden: &GoldenRun) -> TraceStats {
        let mut loads = 0;
        let mut stores = 0;
        let mut bits_read = 0;
        let mut bits_written = 0;
        let mut touched = vec![false; (golden.ram_bits / 8) as usize];
        for a in &golden.trace {
            match a.kind {
                AccessKind::Read => {
                    loads += 1;
                    bits_read += a.width.bits() as u64;
                }
                AccessKind::Write => {
                    stores += 1;
                    bits_written += a.width.bits() as u64;
                }
            }
            for byte in a.addr..a.addr + a.width.bytes() {
                touched[byte as usize] = true;
            }
        }
        TraceStats {
            cycles: golden.cycles,
            ram_bits: golden.ram_bits,
            fault_space: golden.fault_space_size(),
            loads,
            stores,
            bits_read,
            bits_written,
            bytes_touched: touched.iter().filter(|&&t| t).count() as u64,
            output_len: golden.serial.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};

    #[test]
    fn counts_match_program() {
        let mut a = Asm::new();
        let buf = a.data_space("buf", 8);
        a.li(Reg::R1, 5);
        a.sw(Reg::R1, Reg::R0, buf.offset()); // store word
        a.lw(Reg::R2, Reg::R0, buf.offset()); // load word
        a.lb(Reg::R3, Reg::R0, buf.offset()); // load byte
        let p = a.build().unwrap();
        let g = GoldenRun::capture(&p, 1_000).unwrap();
        let s = TraceStats::from_golden(&g);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.bits_read, 40);
        assert_eq!(s.bits_written, 32);
        assert_eq!(s.bytes_touched, 4);
        assert_eq!(s.cycles, 4);
        assert_eq!(s.ram_bits, 64);
        assert_eq!(s.fault_space, 256);
        assert_eq!(s.output_len, 0);
    }
}
