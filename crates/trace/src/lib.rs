#![warn(missing_docs)]

//! Golden-run capture and memory-access trace digestion.
//!
//! Every fault-injection campaign starts from a *golden run*: one
//! fault-free, deterministic execution of the benchmark that records
//!
//! 1. the reference serial output and exit status (used to classify each
//!    experiment's outcome),
//! 2. the benchmark's runtime `Δt` in cycles and RAM extent `Δm` in bits
//!    (spanning the fault space of §III-A), and
//! 3. the full memory-access trace, digested into per-bit event timelines —
//!    the input to def/use equivalence-class analysis (§III-C).
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//! use sofi_trace::GoldenRun;
//!
//! let mut a = Asm::new();
//! let x = a.data_bytes("x", &[7]);
//! a.lb(Reg::R1, Reg::R0, x.offset());
//! a.serial_out(Reg::R1);
//! let p = a.build()?;
//!
//! let golden = GoldenRun::capture(&p, 10_000)?;
//! assert_eq!(golden.cycles, 2);
//! assert_eq!(golden.serial, vec![7]);
//! assert_eq!(golden.fault_space_size(), 2 * 8); // 2 cycles × 8 bits
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod golden;
mod stats;
mod timeline;

pub use golden::{GoldenError, GoldenRun};
pub use stats::TraceStats;
pub use timeline::{BitEvent, Timelines};
