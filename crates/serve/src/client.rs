//! Client-side wrappers over the wire protocol, used by the `sofi`
//! CLI's `submit` / `status` / `cancel` subcommands and by the
//! integration tests.

use crate::job::{JobSpec, JobStatus};
use crate::protocol::{read_message, write_message, Message, ProtocolError};
use crate::server::Conn;
use sofi_campaign::{CampaignResult, ExecutorStats};
use sofi_telemetry::Snapshot;
use std::fmt;
use std::io;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect.
    Connect(io::Error),
    /// The transport or framing broke mid-exchange.
    Protocol(ProtocolError),
    /// The daemon refused the submission: bounded queue full.
    Busy {
        /// Jobs currently queued daemon-side.
        queued: u32,
        /// The daemon's queue capacity.
        capacity: u32,
    },
    /// The daemon is draining and accepts no new submissions.
    ShuttingDown,
    /// The daemon reported a request-level error.
    Server(String),
    /// The daemon sent a message that makes no sense here. Boxed so the
    /// error variant stays small — `Message` can embed a full
    /// `CampaignResult`.
    Unexpected(Box<Message>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Busy { queued, capacity } => {
                write!(
                    f,
                    "daemon busy ({queued}/{capacity} jobs queued), retry later"
                )
            }
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
            ClientError::Server(msg) => write!(f, "daemon error: {msg}"),
            ClientError::Unexpected(msg) => {
                write!(f, "unexpected reply kind {}", msg.kind())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// One connection to a `sofi serve` daemon.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to `addr` — a Unix socket path when it contains `/`,
    /// TCP `host:port` otherwise.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the daemon is unreachable.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Ok(Client {
            conn: Conn::connect(addr).map_err(ClientError::Connect)?,
        })
    }

    fn roundtrip(&mut self, req: &Message) -> Result<Message, ClientError> {
        write_message(&mut self.conn, req)
            .map_err(|e| ClientError::Protocol(ProtocolError::Io(e.kind())))?;
        match read_message(&mut self.conn)? {
            Some(msg) => Ok(msg),
            None => Err(ClientError::Protocol(ProtocolError::Truncated)),
        }
    }

    /// Submits a job without waiting; returns the assigned id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] under backpressure,
    /// [`ClientError::ShuttingDown`] during drain.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, ClientError> {
        match self.roundtrip(&Message::Submit { spec, wait: false })? {
            Message::Accepted { job } => Ok(job),
            Message::Busy { queued, capacity } => Err(ClientError::Busy { queued, capacity }),
            Message::ShuttingDown => Err(ClientError::ShuttingDown),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Submits a job and blocks until it finishes, invoking
    /// `on_progress(done, total, stats)` for every streamed progress
    /// frame — `stats` carries the executor counters merged over the
    /// batches committed so far. Returns the job id with the final
    /// merged result and stats.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`], plus [`ClientError::Server`] when the job
    /// fails or is cancelled mid-wait.
    pub fn submit_wait(
        &mut self,
        spec: JobSpec,
        mut on_progress: impl FnMut(u64, u64, &ExecutorStats),
    ) -> Result<(u64, CampaignResult, ExecutorStats), ClientError> {
        let job = match self.roundtrip(&Message::Submit { spec, wait: true })? {
            Message::Accepted { job } => job,
            Message::Busy { queued, capacity } => {
                return Err(ClientError::Busy { queued, capacity });
            }
            Message::ShuttingDown => return Err(ClientError::ShuttingDown),
            Message::Error { message } => return Err(ClientError::Server(message)),
            other => return Err(ClientError::Unexpected(Box::new(other))),
        };
        loop {
            match read_message(&mut self.conn)? {
                Some(Message::Progress {
                    done, total, stats, ..
                }) => on_progress(done, total, &stats),
                Some(Message::JobResult { result, stats, .. }) => {
                    return Ok((job, result, stats));
                }
                Some(Message::Error { message }) => return Err(ClientError::Server(message)),
                Some(other) => return Err(ClientError::Unexpected(Box::new(other))),
                None => return Err(ClientError::Protocol(ProtocolError::Truncated)),
            }
        }
    }

    /// Fetches status for one job, or all jobs when `job` is `None`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown job ids.
    pub fn status(&mut self, job: Option<u64>) -> Result<Vec<JobStatus>, ClientError> {
        match self.roundtrip(&Message::Status { job })? {
            Message::StatusReport { jobs } => Ok(jobs),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Fetches a telemetry snapshot: one job's registry, or the merged
    /// daemon-wide view when `job` is `None`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown job ids.
    pub fn stats(&mut self, job: Option<u64>) -> Result<Snapshot, ClientError> {
        match self.roundtrip(&Message::Stats { job })? {
            Message::Telemetry { snapshot } => Ok(snapshot),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for unknown or already-terminal jobs.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        match self.roundtrip(&Message::Cancel { job })? {
            Message::Cancelled { .. } => Ok(()),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Message::Shutdown)? {
            Message::ShuttingDown => Ok(()),
            Message::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}
