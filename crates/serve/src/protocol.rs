//! The length-prefixed binary wire protocol.
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SOFI"
//! 4       2     protocol version (currently 4), little-endian
//! 6       2     message kind, little-endian
//! 8       4     payload length in bytes, little-endian
//! 12      4     FNV-1a-32 checksum, little-endian
//! 16      len   payload (message-kind-specific, see `wire`)
//! ```
//!
//! The checksum covers header bytes 0–11 *and* the payload, so a
//! corrupted kind or length field is caught just like a corrupted
//! payload byte — a single-bit flip anywhere outside the checksum field
//! itself can never silently decode as a different message.
//!
//! Decoding is total: any byte sequence either yields a [`Message`] or a
//! typed [`ProtocolError`] — never a panic (property-tested in
//! `tests/protocol_fuzz.rs`). Oversized length fields are rejected from
//! the header alone, before any allocation, so a malicious or corrupt
//! peer cannot balloon the daemon's memory.

use crate::job::{JobSpec, JobStatus};
use crate::wire::{self, Reader, WireError, Writer};
use sofi_campaign::{CampaignResult, ExecutorStats};
use sofi_telemetry::Snapshot;
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SOFI";
/// Current protocol version. Bump on any incompatible frame or payload
/// change; peers reject mismatches with [`ProtocolError::BadVersion`].
///
/// History: v2 added the [`Message::Stats`]/[`Message::Telemetry`] frame
/// pair, live [`ExecutorStats`] in [`Message::Progress`] and
/// [`JobStatus`], and a seventh packed [`sofi_campaign::CampaignConfig`]
/// word (the `telemetry` flag). v3 appended the eighth packed config
/// word (the machine's `block_engine` flag). v4 appended the ninth
/// packed config word (`memo_gate`), the `warm_store` flag in
/// [`JobSpec`], and three trailing [`ExecutorStats`] words
/// (`gate_shards_on`, `gate_shards_off`, `store_hits`).
pub const VERSION: u16 = 4;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on payload size (64 MiB) — rejected before allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// A protocol-level failure while reading or decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended mid-frame (header or payload truncated).
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// The header's length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The limit it exceeded.
        max: u32,
    },
    /// The frame did not hash to the header's checksum.
    BadChecksum {
        /// Checksum from the header.
        expected: u32,
        /// FNV-1a-32 of the received header bytes 0–11 plus payload.
        found: u32,
    },
    /// The header's kind field names no known message.
    UnknownKind(u16),
    /// The payload failed to decode as the kind's message body.
    Malformed(WireError),
    /// An I/O error other than clean end-of-stream.
    Io(io::ErrorKind),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "protocol version {v} (this build speaks {VERSION})")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte limit")
            }
            ProtocolError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "payload checksum {found:#010x}, header says {expected:#010x}"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            ProtocolError::Malformed(e) => write!(f, "malformed payload: {e}"),
            ProtocolError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> ProtocolError {
        ProtocolError::Malformed(e)
    }
}

/// Every message the protocol carries, requests and responses alike.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // --- requests (client → daemon) ---
    /// Submit a campaign job. With `wait`, the daemon keeps the
    /// connection open and streams [`Message::Progress`] frames followed
    /// by the final [`Message::JobResult`].
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Stream progress + result on this connection.
        wait: bool,
    },
    /// Request status: one job, or all known jobs when `job` is `None`.
    Status {
        /// Job id, or `None` for the full list.
        job: Option<u64>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id to cancel.
        job: u64,
    },
    /// Graceful drain: finish queued and running jobs, accept no new
    /// submissions, then exit.
    Shutdown,
    /// Request a telemetry snapshot: one job's registry, or the
    /// daemon-wide registry merged with every job's when `job` is
    /// `None`. Answered with [`Message::Telemetry`].
    Stats {
        /// Job id, or `None` for the merged daemon-wide view.
        job: Option<u64>,
    },

    // --- responses (daemon → client) ---
    /// Submission accepted and queued.
    Accepted {
        /// Assigned job id.
        job: u64,
    },
    /// Backpressure: the bounded queue is full, try again later.
    Busy {
        /// Jobs currently queued.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
    /// Answer to [`Message::Status`].
    StatusReport {
        /// One entry per requested job.
        jobs: Vec<JobStatus>,
    },
    /// Streamed progress event for a `--wait` submission.
    Progress {
        /// Job id.
        job: u64,
        /// Experiments with committed outcomes so far.
        done: u64,
        /// Total experiments in the plan.
        total: u64,
        /// Executor counters merged over the batches committed so far.
        stats: ExecutorStats,
    },
    /// Final result of a finished job.
    JobResult {
        /// Job id.
        job: u64,
        /// The merged campaign result (bit-identical to an in-process
        /// executor run of the same spec).
        result: CampaignResult,
        /// Executor counters accumulated over all batches.
        stats: ExecutorStats,
    },
    /// Acknowledges a cancellation.
    Cancelled {
        /// Job id.
        job: u64,
    },
    /// Request-level failure (unknown job, assembly error, …).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// The daemon is draining and accepts no new submissions.
    ShuttingDown,
    /// Answer to [`Message::Stats`]: a point-in-time telemetry snapshot.
    Telemetry {
        /// Counters, gauges and histograms from the requested registry.
        snapshot: Snapshot,
    },
}

impl Message {
    /// The header kind code for this message.
    pub fn kind(&self) -> u16 {
        match self {
            Message::Submit { .. } => 1,
            Message::Status { .. } => 2,
            Message::Cancel { .. } => 3,
            Message::Shutdown => 4,
            Message::Stats { .. } => 5,
            Message::Accepted { .. } => 100,
            Message::Busy { .. } => 101,
            Message::StatusReport { .. } => 102,
            Message::Progress { .. } => 103,
            Message::JobResult { .. } => 104,
            Message::Cancelled { .. } => 105,
            Message::Error { .. } => 106,
            Message::ShuttingDown => 107,
            Message::Telemetry { .. } => 108,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Submit { spec, wait } => {
                spec.encode(&mut w);
                w.bool(*wait);
            }
            Message::Status { job } | Message::Stats { job } => match job {
                Some(id) => {
                    w.bool(true);
                    w.u64(*id);
                }
                None => w.bool(false),
            },
            Message::Cancel { job } => w.u64(*job),
            Message::Shutdown | Message::ShuttingDown => {}
            Message::Accepted { job } => w.u64(*job),
            Message::Busy { queued, capacity } => {
                w.u32(*queued);
                w.u32(*capacity);
            }
            Message::StatusReport { jobs } => {
                w.u32(jobs.len() as u32);
                for j in jobs {
                    j.encode(&mut w);
                }
            }
            Message::Progress {
                job,
                done,
                total,
                stats,
            } => {
                w.u64(*job);
                w.u64(*done);
                w.u64(*total);
                wire::put_stats(&mut w, stats);
            }
            Message::JobResult { job, result, stats } => {
                w.u64(*job);
                wire::put_campaign_result(&mut w, result);
                wire::put_stats(&mut w, stats);
            }
            Message::Cancelled { job } => w.u64(*job),
            Message::Error { message } => w.str(message),
            Message::Telemetry { snapshot } => wire::put_snapshot(&mut w, snapshot),
        }
        w.finish()
    }

    fn decode_payload(kind: u16, payload: &[u8]) -> Result<Message, ProtocolError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            1 => {
                let spec = JobSpec::decode(&mut r)?;
                let wait = r.bool()?;
                Message::Submit { spec, wait }
            }
            2 => {
                let job = if r.bool()? { Some(r.u64()?) } else { None };
                Message::Status { job }
            }
            3 => Message::Cancel { job: r.u64()? },
            4 => Message::Shutdown,
            5 => {
                let job = if r.bool()? { Some(r.u64()?) } else { None };
                Message::Stats { job }
            }
            100 => Message::Accepted { job: r.u64()? },
            101 => Message::Busy {
                queued: r.u32()?,
                capacity: r.u32()?,
            },
            102 => {
                // A JobStatus is ≥ 30 bytes (3 u64s + domain + state +
                // two length prefixes); 8 is a safe lower bound.
                let n = r.seq_len(8)?;
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    jobs.push(JobStatus::decode(&mut r)?);
                }
                Message::StatusReport { jobs }
            }
            103 => Message::Progress {
                job: r.u64()?,
                done: r.u64()?,
                total: r.u64()?,
                stats: wire::take_stats(&mut r)?,
            },
            104 => Message::JobResult {
                job: r.u64()?,
                result: wire::take_campaign_result(&mut r)?,
                stats: wire::take_stats(&mut r)?,
            },
            105 => Message::Cancelled { job: r.u64()? },
            106 => Message::Error { message: r.str()? },
            107 => Message::ShuttingDown,
            108 => Message::Telemetry {
                snapshot: wire::take_snapshot(&mut r)?,
            },
            other => return Err(ProtocolError::UnknownKind(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// Encodes this message as one complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        debug_assert!(payload.len() as u32 <= MAX_PAYLOAD);
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&self.kind().to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let checksum = frame_checksum(frame[..12].try_into().unwrap(), &payload);
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one frame from the start of `buf`, returning the message
    /// and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtocolError`] on any malformed input; never
    /// panics.
    pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
        if buf.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated);
        }
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
        let (kind, len) = check_header(&header)?;
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(ProtocolError::Truncated);
        }
        let payload = &buf[HEADER_LEN..total];
        verify_checksum(&header, payload)?;
        Ok((Message::decode_payload(kind, payload)?, total))
    }
}

/// The frame checksum: FNV-1a-32 over the first 12 header bytes, then
/// the payload.
fn frame_checksum(header_prefix: &[u8; 12], payload: &[u8]) -> u32 {
    wire::fnv1a32_update(wire::fnv1a32(header_prefix), payload)
}

fn verify_checksum(header: &[u8; HEADER_LEN], payload: &[u8]) -> Result<(), ProtocolError> {
    let found = frame_checksum(header[..12].try_into().unwrap(), payload);
    let expected = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if found == expected {
        Ok(())
    } else {
        Err(ProtocolError::BadChecksum { expected, found })
    }
}

/// Validates a frame header, returning `(kind, payload_len)`.
fn check_header(header: &[u8; HEADER_LEN]) -> Result<(u16, u32), ProtocolError> {
    let magic: [u8; 4] = header[..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let kind = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((kind, len))
}

/// Writes one framed message to `w` (single `write_all`, then flush).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&msg.encode_frame())?;
    w.flush()
}

/// Reads one framed message from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer closed the connection between messages); EOF *inside* a frame is
/// [`ProtocolError::Truncated`].
///
/// # Errors
///
/// Returns a typed [`ProtocolError`] on malformed frames or I/O failure
/// (including [`ProtocolError::Io`] with `TimedOut`/`WouldBlock` when a
/// read timeout configured on the underlying socket expires).
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let (kind, len) = check_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => ProtocolError::Truncated,
        kind => ProtocolError::Io(kind),
    })?;
    verify_checksum(&header, &payload)?;
    Message::decode_payload(kind, &payload).map(Some)
}

enum ReadOutcome {
    Filled,
    CleanEof,
}

/// `read_exact`, except an EOF before the *first* byte is reported as
/// clean rather than an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::CleanEof)
                } else {
                    Err(ProtocolError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e.kind())),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{CampaignConfig, FaultDomain};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Submit {
                spec: JobSpec {
                    name: "hi".into(),
                    source: ".text\nnop\n".into(),
                    domain: FaultDomain::Memory,
                    config: CampaignConfig::default(),
                    warm_store: true,
                },
                wait: true,
            },
            Message::Status { job: None },
            Message::Status { job: Some(3) },
            Message::Cancel { job: 9 },
            Message::Shutdown,
            Message::Stats { job: None },
            Message::Stats { job: Some(7) },
            Message::Accepted { job: 1 },
            Message::Busy {
                queued: 16,
                capacity: 16,
            },
            Message::StatusReport { jobs: vec![] },
            Message::Progress {
                job: 1,
                done: 32,
                total: 64,
                stats: ExecutorStats {
                    workers: 2,
                    experiments: 32,
                    memo_hits: 5,
                    ..ExecutorStats::default()
                },
            },
            Message::Cancelled { job: 2 },
            Message::Error {
                message: "no such job".into(),
            },
            Message::ShuttingDown,
            Message::Telemetry {
                snapshot: sample_snapshot(),
            },
        ]
    }

    fn sample_snapshot() -> Snapshot {
        let reg = sofi_telemetry::Registry::enabled();
        reg.counter(sofi_telemetry::names::EXPERIMENTS).add(32);
        reg.gauge(sofi_telemetry::names::QUEUE_DEPTH).set(1);
        let h = reg.histogram(sofi_telemetry::names::FAULTED_RUN_CYCLES);
        for v in [0, 3, 250, 4096] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn frames_round_trip() {
        for msg in sample_messages() {
            let frame = msg.encode_frame();
            let (back, consumed) = Message::decode_frame(&frame).unwrap();
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        for msg in sample_messages() {
            write_message(&mut buf, &msg).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        for msg in sample_messages() {
            assert_eq!(read_message(&mut cursor).unwrap(), Some(msg));
        }
        assert_eq!(read_message(&mut cursor).unwrap(), None);
    }

    /// A well-formed frame (valid checksum) with an arbitrary kind and
    /// raw payload — for exercising decode paths encode_frame can't
    /// produce.
    fn raw_frame(kind: u16, payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&kind.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let checksum = frame_checksum(frame[..12].try_into().unwrap(), payload);
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame.extend_from_slice(payload);
        frame
    }

    #[test]
    fn header_corruption_is_typed() {
        let frame = Message::Shutdown.encode_frame();

        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            Message::decode_frame(&bad),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut bad = frame.clone();
        bad[4] = 99;
        assert_eq!(
            Message::decode_frame(&bad),
            Err(ProtocolError::BadVersion(99))
        );

        // A frame from a v1 peer (pre-telemetry build) is a typed
        // version error, never a misdecode or panic.
        let mut v1 = frame.clone();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(
            Message::decode_frame(&v1),
            Err(ProtocolError::BadVersion(1))
        );

        // An intact frame whose kind is simply unknown.
        assert_eq!(
            Message::decode_frame(&raw_frame(0xFFFF, &[])),
            Err(ProtocolError::UnknownKind(0xFFFF))
        );
        // A *corrupted* kind field (checksum not updated) is caught by
        // the checksum, not misdecoded as another message.
        let mut bad = frame.clone();
        bad[6] ^= 1;
        assert!(matches!(
            Message::decode_frame(&bad),
            Err(ProtocolError::BadChecksum { .. })
        ));

        let mut bad = frame.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Message::decode_frame(&bad),
            Err(ProtocolError::Oversized { .. })
        ));

        assert_eq!(
            Message::decode_frame(&frame[..HEADER_LEN - 1]),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn payload_corruption_is_typed() {
        let frame = Message::Accepted { job: 7 }.encode_frame();
        // Flip a payload byte: checksum mismatch.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            Message::decode_frame(&bad),
            Err(ProtocolError::BadChecksum { .. })
        ));
        // Truncate the payload: Truncated (length field says more).
        assert_eq!(
            Message::decode_frame(&frame[..frame.len() - 1]),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // A valid Accepted payload with an extra byte, checksummed
        // correctly — must fail in decode, not be silently ignored.
        let mut payload = 7u64.to_le_bytes().to_vec();
        payload.push(0xAB);
        assert!(matches!(
            Message::decode_frame(&raw_frame(100, &payload)),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
