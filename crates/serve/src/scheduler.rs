//! The in-memory job queue and worker pool.
//!
//! Jobs move `Queued → Running → Done | Failed | Cancelled`. A fixed pool
//! of worker threads pops queued jobs, rebuilds the campaign from the job
//! spec (assemble → golden run → def/use plan), and dispatches the fault
//! list in fixed-size batches through the existing
//! [`sofi_campaign::Campaign`] executor — convergence, memoization and
//! thread knobs all carried in the spec's [`sofi_campaign::CampaignConfig`].
//! Every completed batch is committed to the [`crate::journal`] *before*
//! the job's progress counter advances, so a crash at any point loses at
//! most the in-flight batch, never a reported one.
//!
//! On startup the scheduler replays the journal: jobs with a terminal
//! record are kept for status queries; jobs interrupted mid-campaign
//! (start record, no end record) are re-queued with their committed
//! results pre-loaded, and only the uncovered tail of the fault list is
//! re-dispatched ([`sofi_campaign::resume`]).

use crate::job::{JobSpec, JobState, JobStatus};
use crate::journal::{self, Journal, Record};
use crate::store::{self, WarmStore};
use sofi_campaign::{resume, Campaign, CampaignResult, ExecutorStats, ExperimentResult};
use sofi_isa::assemble_text;
use sofi_telemetry::{names, Registry, Snapshot};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent campaign workers (each job additionally parallelizes
    /// internally per its own `CampaignConfig::threads`).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get a Busy response.
    pub queue_capacity: usize,
    /// Experiments per journaled batch (progress granularity and the
    /// upper bound on work lost in a crash).
    pub batch_size: usize,
    /// Idle-client read timeout on daemon connections.
    pub idle_timeout: Duration,
    /// Test hook: simulate the daemon being killed after this many batch
    /// commits in this process — workers stop dead, no end records are
    /// written, the journal is left exactly as a real kill would leave
    /// it. `None` (the default) in production.
    pub crash_after_commits: Option<u64>,
    /// Path of the persistent cross-campaign warm store
    /// ([`crate::store::WarmStore`]); `None` (the default) disables the
    /// store entirely — jobs neither preload nor persist memo facts.
    pub warm_store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            batch_size: 32,
            idle_timeout: Duration::from_secs(30),
            crash_after_commits: None,
            warm_store: None,
        }
    }
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued under the given job id.
    Accepted(u64),
    /// Queue full — backpressure.
    Busy {
        /// Jobs currently queued.
        queued: u32,
        /// The configured capacity.
        capacity: u32,
    },
    /// The daemon is draining and accepts no new jobs.
    ShuttingDown,
}

/// Outcome of a cancellation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job will not (further) execute.
    Cancelled,
    /// The job had already reached a terminal state.
    AlreadyTerminal(JobState),
    /// No such job id.
    Unknown,
}

/// A progress snapshot returned by [`Scheduler::wait_progress`].
#[derive(Debug, Clone)]
pub struct JobUpdate {
    /// Point-in-time status.
    pub status: JobStatus,
    /// The final result + stats, present once the job is `Done`.
    pub outcome: Option<(CampaignResult, ExecutorStats)>,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: bool,
    done: u64,
    total: u64,
    /// Committed outcomes: journal-replayed results plus this
    /// incarnation's batches, in commit order.
    results: Vec<ExperimentResult>,
    outcome: Option<(CampaignResult, ExecutorStats)>,
    error: String,
    /// Executor counters merged from every batch committed so far —
    /// the live figures behind mid-run status queries.
    stats: ExecutorStats,
    /// Per-job telemetry registry, always enabled: the campaign records
    /// its spans and histograms here regardless of the spec's
    /// `telemetry` flag, so `Stats` queries work for every job.
    telemetry: Registry,
}

impl JobEntry {
    fn new(spec: JobSpec, state: JobState, results: Vec<ExperimentResult>) -> JobEntry {
        JobEntry {
            spec,
            state,
            cancel: false,
            done: results.len() as u64,
            total: 0,
            results,
            outcome: None,
            error: String::new(),
            stats: ExecutorStats::default(),
            telemetry: Registry::enabled(),
        }
    }

    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            id,
            name: self.spec.name.clone(),
            domain: self.spec.domain,
            state: self.state,
            done: self.done,
            total: self.total,
            error: self.error.clone(),
            stats: self.stats,
        }
    }
}

#[derive(Debug)]
struct SchedState {
    journal: Journal,
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    /// Set by the crash hook: every worker stops dead, nothing further
    /// is journaled.
    crashed: bool,
    batch_commits: u64,
}

#[derive(Debug)]
struct Inner {
    config: ServeConfig,
    state: Mutex<SchedState>,
    /// Wakes workers (queue push, drain, crash).
    work_cv: Condvar,
    /// Wakes status watchers (progress, state transitions).
    watch_cv: Condvar,
    /// Daemon-wide telemetry: job lifecycle counters, queue-depth gauge,
    /// journal fsync latencies. Per-job registries live in [`JobEntry`].
    telemetry: Registry,
    /// The persistent cross-campaign warm store, when configured. Its
    /// own lock (not the scheduler state's): store appends fsync, and
    /// stalling status queries behind a disk flush would be rude.
    store: Option<Mutex<WarmStore>>,
}

impl Inner {
    /// Journals one record, timing the write+fsync into the
    /// `serve.journal_fsync_ns` histogram. Call with the state lock held
    /// (the journal lives inside it).
    fn append_timed(&self, st: &mut SchedState, record: &Record) -> io::Result<()> {
        let span = self.telemetry.span(names::JOURNAL_FSYNC_NS);
        let result = st.journal.append(record);
        span.finish();
        result
    }
}

/// The campaign scheduler: owns the journal, the job table and the
/// worker pool. All methods take `&self`; clone the [`Arc`] wrapper to
/// share it with server connection threads.
#[derive(Debug)]
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Opens the journal at `path`, recovers interrupted jobs, and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures.
    pub fn open(path: &Path, config: ServeConfig) -> io::Result<Scheduler> {
        let (journal, records) = Journal::open(path)?;
        let recovered = journal::recover(records);
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut next_id = 1;
        for job in recovered {
            next_id = next_id.max(job.job + 1);
            let interrupted = job.end.is_none();
            let state = if interrupted {
                JobState::Queued
            } else {
                job.end.unwrap()
            };
            jobs.insert(job.job, JobEntry::new(job.spec, state, job.results));
            if interrupted {
                queue.push_back(job.job);
            }
        }
        let telemetry = Registry::enabled();
        telemetry.gauge(names::QUEUE_DEPTH).set(queue.len() as u64);
        let store = match &config.warm_store {
            Some(path) => Some(Mutex::new(WarmStore::open(path)?)),
            None => None,
        };
        let inner = Arc::new(Inner {
            config: config.clone(),
            state: Mutex::new(SchedState {
                journal,
                jobs,
                queue,
                next_id,
                draining: false,
                crashed: false,
                batch_commits: 0,
            }),
            work_cv: Condvar::new(),
            watch_cv: Condvar::new(),
            telemetry,
            store,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Scheduler {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Submits a job: journals the start record and queues it, or
    /// reports backpressure / drain.
    pub fn submit(&self, spec: JobSpec) -> SubmitOutcome {
        let mut st = self.inner.state.lock().unwrap();
        if st.draining || st.crashed {
            return SubmitOutcome::ShuttingDown;
        }
        if st.queue.len() >= self.inner.config.queue_capacity {
            return SubmitOutcome::Busy {
                queued: st.queue.len() as u32,
                capacity: self.inner.config.queue_capacity as u32,
            };
        }
        let id = st.next_id;
        // Commit the start record first: a job the client saw accepted
        // survives a crash.
        if self
            .inner
            .append_timed(
                &mut st,
                &Record::JobStart {
                    job: id,
                    spec: spec.clone(),
                },
            )
            .is_err()
        {
            return SubmitOutcome::Busy {
                queued: st.queue.len() as u32,
                capacity: self.inner.config.queue_capacity as u32,
            };
        }
        st.next_id += 1;
        st.jobs
            .insert(id, JobEntry::new(spec, JobState::Queued, Vec::new()));
        st.queue.push_back(id);
        self.inner.telemetry.counter(names::JOBS_SUBMITTED).incr();
        self.inner
            .telemetry
            .gauge(names::QUEUE_DEPTH)
            .set(st.queue.len() as u64);
        drop(st);
        self.inner.work_cv.notify_one();
        SubmitOutcome::Accepted(id)
    }

    /// Status of one job (`None` if unknown) or of every known job.
    pub fn status(&self, job: Option<u64>) -> Option<Vec<JobStatus>> {
        let st = self.inner.state.lock().unwrap();
        match job {
            Some(id) => st.jobs.get(&id).map(|j| vec![j.status(id)]),
            None => Some(st.jobs.iter().map(|(&id, j)| j.status(id)).collect()),
        }
    }

    /// Requests cancellation. Queued jobs are cancelled immediately
    /// (with a journaled end record); running jobs stop at the next
    /// batch boundary.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut st = self.inner.state.lock().unwrap();
        let Some(job) = st.jobs.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        if job.state.is_terminal() {
            return CancelOutcome::AlreadyTerminal(job.state);
        }
        job.cancel = true;
        if job.state == JobState::Queued {
            job.state = JobState::Cancelled;
            st.queue.retain(|&q| q != id);
            if !st.crashed {
                let _ = self.inner.append_timed(
                    &mut st,
                    &Record::End {
                        job: id,
                        state: JobState::Cancelled,
                    },
                );
            }
            self.inner.telemetry.counter(names::JOBS_FINISHED).incr();
            self.inner
                .telemetry
                .gauge(names::QUEUE_DEPTH)
                .set(st.queue.len() as u64);
            drop(st);
            self.inner.watch_cv.notify_all();
        }
        CancelOutcome::Cancelled
    }

    /// The final result of a `Done` job, if it finished in this daemon
    /// incarnation.
    pub fn result(&self, id: u64) -> Option<(CampaignResult, ExecutorStats)> {
        self.inner
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&id)?
            .outcome
            .clone()
    }

    /// A point-in-time telemetry snapshot: one job's registry, or (for
    /// `None`) the daemon-wide registry merged with every job's.
    /// Returns `None` only for an unknown job id.
    pub fn telemetry_snapshot(&self, job: Option<u64>) -> Option<Snapshot> {
        let st = self.inner.state.lock().unwrap();
        match job {
            Some(id) => st.jobs.get(&id).map(|j| j.telemetry.snapshot()),
            None => {
                let mut snap = self.inner.telemetry.snapshot();
                for j in st.jobs.values() {
                    snap.merge(&j.telemetry.snapshot());
                }
                Some(snap)
            }
        }
    }

    /// Blocks until `job` progresses past `last_done` committed
    /// experiments or reaches a terminal state, then returns a snapshot.
    /// Returns `None` for unknown jobs and when the daemon crash hook
    /// has tripped (no further progress will happen).
    pub fn wait_progress(&self, job: u64, last_done: u64) -> Option<JobUpdate> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.crashed {
                return None;
            }
            let entry = st.jobs.get(&job)?;
            if entry.state.is_terminal() || entry.done != last_done {
                return Some(JobUpdate {
                    status: entry.status(job),
                    outcome: entry.outcome.clone(),
                });
            }
            st = self.inner.watch_cv.wait(st).unwrap();
        }
    }

    /// Blocks until every known job is terminal (or the crash hook
    /// tripped). Test/drain helper.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while !st.crashed && st.jobs.values().any(|j| !j.state.is_terminal()) {
            st = self.inner.watch_cv.wait(st).unwrap();
        }
    }

    /// `true` once the [`ServeConfig::crash_after_commits`] hook has
    /// fired.
    pub fn crashed(&self) -> bool {
        self.inner.state.lock().unwrap().crashed
    }

    /// Flips the drain flag: every later submission is refused with
    /// [`SubmitOutcome::ShuttingDown`]. The cheap non-blocking first
    /// half of [`Scheduler::drain`], called by the server *before* it
    /// acknowledges a `Shutdown` request — otherwise a client that saw
    /// the acknowledgement could race a submission in through the
    /// window before the accept loop reaches the full drain.
    pub fn begin_drain(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.draining = true;
        }
        self.inner.work_cv.notify_all();
    }

    /// Graceful drain: stop accepting submissions, let queued and
    /// running jobs finish, then join the worker pool.
    pub fn drain(&self) {
        self.begin_drain();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.inner.watch_cv.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Batch-level stats merge: counters sum; `workers` reports the peak
/// per-batch worker count rather than a meaningless batch-count
/// multiple.
fn merge_stats(total: &mut ExecutorStats, batch: &ExecutorStats) {
    total.workers = total.workers.max(batch.workers);
    total.experiments += batch.experiments;
    total.pristine_cycles += batch.pristine_cycles;
    total.faulted_cycles += batch.faulted_cycles;
    total.converged_early += batch.converged_early;
    total.faulted_cycles_saved += batch.faulted_cycles_saved;
    total.memo_hits += batch.memo_hits;
    total.memo_misses += batch.memo_misses;
    total.memoized_cycles_saved += batch.memoized_cycles_saved;
    total.gate_shards_on += batch.gate_shards_on;
    total.gate_shards_off += batch.gate_shards_off;
    total.store_hits += batch.store_hits;
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, spec, recovered_ids, job_tel) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.crashed {
                    return;
                }
                if let Some(&id) = st.queue.front() {
                    st.queue.pop_front();
                    inner
                        .telemetry
                        .gauge(names::QUEUE_DEPTH)
                        .set(st.queue.len() as u64);
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    let spec = job.spec.clone();
                    let ids: HashSet<u32> = job.results.iter().map(|r| r.experiment.id).collect();
                    break (id, spec, ids, job.telemetry.clone());
                }
                if st.draining {
                    return;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        inner.watch_cv.notify_all();
        run_job(inner, id, &spec, &recovered_ids, job_tel);
        inner.watch_cv.notify_all();
    }
}

/// Marks `id` failed (journaled) with a message.
fn fail_job(inner: &Inner, id: u64, message: String) {
    let mut st = inner.state.lock().unwrap();
    if !st.crashed {
        let _ = inner.append_timed(
            &mut st,
            &Record::End {
                job: id,
                state: JobState::Failed,
            },
        );
    }
    if let Some(job) = st.jobs.get_mut(&id) {
        job.state = JobState::Failed;
        job.error = message;
    }
    inner.telemetry.counter(names::JOBS_FINISHED).incr();
}

fn run_job(inner: &Inner, id: u64, spec: &JobSpec, recovered: &HashSet<u32>, job_tel: Registry) {
    let program = match assemble_text(&spec.name, &spec.source) {
        Ok(p) => p,
        Err(e) => return fail_job(inner, id, format!("assembly failed: {e}")),
    };
    let campaign = match Campaign::with_config_telemetry(&program, spec.config, job_tel) {
        Ok(c) => c,
        Err(e) => return fail_job(inner, id, format!("golden run failed: {e}")),
    };
    // Warm-store preload: facts persisted by earlier jobs over the same
    // context answer this job's memo probes without simulation.
    let warm = spec.warm_store && spec.config.memoization && inner.store.is_some();
    let ctx = store::context_key(&spec.source, spec.domain, &spec.config);
    if warm {
        // This job both consumes and feeds the store: lock probing on
        // (even where the per-campaign cost gate would cut it) so fresh
        // facts are harvested for future submissions over this context.
        campaign.set_memo_harvest();
        if let Some(store) = &inner.store {
            let facts = store.lock().unwrap().lookup(ctx);
            if !facts.is_empty() {
                campaign.preload_memo(&facts);
                inner
                    .telemetry
                    .counter(names::STORE_PRELOADS)
                    .add(facts.len() as u64);
            }
        }
    }
    let plan = campaign.plan_for(spec.domain);
    let tail = resume::unfinished(&plan.experiments, recovered);
    inner
        .telemetry
        .counter(names::EXPERIMENTS_RECOVERED)
        .add(resume::recovered_count(&plan.experiments, recovered));
    {
        let mut st = inner.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.total = plan.experiments.len() as u64;
            job.done = recovered.len() as u64;
        }
    }
    inner.watch_cv.notify_all();

    let mut stats = ExecutorStats::default();
    for batch in resume::batches(&tail, inner.config.batch_size) {
        // Check for cancellation at every batch boundary.
        if inner
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .is_some_and(|j| j.cancel)
        {
            let mut st = inner.state.lock().unwrap();
            if !st.crashed {
                let _ = inner.append_timed(
                    &mut st,
                    &Record::End {
                        job: id,
                        state: JobState::Cancelled,
                    },
                );
            }
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
            }
            inner.telemetry.counter(names::JOBS_FINISHED).incr();
            drop(st);
            inner.watch_cv.notify_all();
            return;
        }

        let (results, batch_stats) = campaign.run_experiments_stats(spec.domain, batch);
        merge_stats(&mut stats, &batch_stats);

        let mut st = inner.state.lock().unwrap();
        // The crash hook models a kill between two journal commits: the
        // batch just computed is lost, exactly like a real crash
        // mid-batch.
        if let Some(limit) = inner.config.crash_after_commits {
            if st.batch_commits >= limit {
                st.crashed = true;
                drop(st);
                inner.work_cv.notify_all();
                inner.watch_cv.notify_all();
                return;
            }
        }
        if inner
            .append_timed(
                &mut st,
                &Record::Batch {
                    job: id,
                    results: results.clone(),
                },
            )
            .is_err()
        {
            drop(st);
            return fail_job(inner, id, "journal write failed".into());
        }
        st.batch_commits += 1;
        inner.telemetry.counter(names::BATCHES_COMMITTED).incr();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.done += results.len() as u64;
            job.results.extend(results);
            job.stats = stats;
        }
        drop(st);
        inner.watch_cv.notify_all();
    }

    // All batches committed: merge (replayed + fresh) into the canonical
    // result — bit-identical to an uninterrupted in-process run.
    let mut st = inner.state.lock().unwrap();
    if st.crashed {
        return;
    }
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    let merged = job.results.clone();
    let result = campaign.assemble_result(spec.domain, plan, merged);
    job.outcome = Some((result, stats));
    job.stats = stats;
    job.state = JobState::Done;
    let _ = inner.append_timed(
        &mut st,
        &Record::End {
            job: id,
            state: JobState::Done,
        },
    );
    inner.telemetry.counter(names::JOBS_FINISHED).incr();
    drop(st);
    inner.watch_cv.notify_all();

    // Persist the fault-equivalence facts this job's runs established,
    // so later jobs over the same context start warm. Best-effort and
    // after the result is already visible: a store write failure can
    // only cost future speed, never this job's outcome.
    if warm {
        if let Some(store) = &inner.store {
            let fresh = campaign.export_memo();
            if !fresh.is_empty() {
                let span = inner.telemetry.span(names::STORE_APPEND_NS);
                let appended = store.lock().unwrap().append(ctx, &fresh);
                span.finish();
                if let Ok(n) = appended {
                    inner.telemetry.counter(names::STORE_APPENDS).add(n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{CampaignConfig, FaultDomain};
    use std::path::PathBuf;

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sofi-sched-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    const HI: &str = "
        .data
        msg: .space 2
        .text
        li r1, 'H'
        sb r1, msg(r0)
        li r1, 'i'
        sb r1, msg+1(r0)
        lb r2, msg(r0)
        serial r2
        lb r2, msg+1(r0)
        serial r2
    ";

    fn hi_spec() -> JobSpec {
        JobSpec {
            name: "hi".into(),
            source: HI.into(),
            domain: FaultDomain::Memory,
            config: CampaignConfig::sequential(),
            warm_store: true,
        }
    }

    #[test]
    fn submit_runs_to_done_and_matches_in_process() {
        let path = temp_journal("done");
        let sched = Scheduler::open(&path, ServeConfig::default()).unwrap();
        let SubmitOutcome::Accepted(id) = sched.submit(hi_spec()) else {
            panic!("fresh queue refused a job");
        };
        sched.wait_idle();
        let status = sched.status(Some(id)).unwrap().remove(0);
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.done, status.total);
        let (result, stats) = sched.result(id).unwrap();

        let program = assemble_text("hi", HI).unwrap();
        let campaign = Campaign::with_config(&program, CampaignConfig::sequential()).unwrap();
        assert_eq!(result, campaign.run_full_defuse());
        assert_eq!(stats.experiments, result.results.len() as u64);
        drop(sched);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_source_fails_cleanly() {
        let path = temp_journal("fail");
        let sched = Scheduler::open(&path, ServeConfig::default()).unwrap();
        let SubmitOutcome::Accepted(id) = sched.submit(JobSpec {
            source: "frobnicate r1\n".into(),
            ..hi_spec()
        }) else {
            panic!("refused");
        };
        sched.wait_idle();
        let status = sched.status(Some(id)).unwrap().remove(0);
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.contains("assembly failed"), "{}", status.error);
        drop(sched);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn queue_backpressure_reports_busy() {
        let path = temp_journal("busy");
        let sched = Scheduler::open(
            &path,
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                // One enormous batch per job keeps the worker busy long
                // enough for the queue to fill deterministically? No —
                // instead park the worker with a job that must run
                // *after* we overfill. Simpler: capacity 1 and submit 3
                // before the single worker can drain both.
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut accepted = 0;
        let mut busy = 0;
        for _ in 0..32 {
            match sched.submit(hi_spec()) {
                SubmitOutcome::Accepted(_) => accepted += 1,
                SubmitOutcome::Busy { capacity, .. } => {
                    assert_eq!(capacity, 1);
                    busy += 1;
                }
                SubmitOutcome::ShuttingDown => panic!("not draining"),
            }
        }
        assert!(accepted >= 1);
        assert!(busy >= 1, "32 instant submissions never hit capacity 1");
        sched.wait_idle();
        drop(sched);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cancel_queued_job() {
        let path = temp_journal("cancel");
        // Zero-worker pools are floored to one worker; use a pool busy
        // with an earlier job so the second stays queued.
        let sched = Scheduler::open(
            &path,
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let SubmitOutcome::Accepted(_first) = sched.submit(hi_spec()) else {
            panic!("refused");
        };
        let SubmitOutcome::Accepted(second) = sched.submit(hi_spec()) else {
            panic!("refused");
        };
        // Cancel the second job; whether it was still queued or already
        // running, it must end terminal without error.
        assert!(matches!(
            sched.cancel(second),
            CancelOutcome::Cancelled | CancelOutcome::AlreadyTerminal(_)
        ));
        sched.wait_idle();
        let state = sched.status(Some(second)).unwrap().remove(0).state;
        assert!(
            state == JobState::Cancelled || state == JobState::Done,
            "cancelled job ended {state:?}"
        );
        assert_eq!(sched.cancel(9999), CancelOutcome::Unknown);
        drop(sched);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drain_refuses_new_work() {
        let path = temp_journal("drain");
        let sched = Scheduler::open(&path, ServeConfig::default()).unwrap();
        sched.drain();
        assert_eq!(sched.submit(hi_spec()), SubmitOutcome::ShuttingDown);
        drop(sched);
        std::fs::remove_file(&path).unwrap();
    }
}
