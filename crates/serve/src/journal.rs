//! The crash-safe result journal.
//!
//! An append-only record file. Each record is framed as
//!
//! ```text
//! offset  size  field
//! 0       4     payload length, little-endian
//! 4       4     FNV-1a-32 checksum of the payload, little-endian
//! 8       len   payload (tag byte + record body, `wire` codec)
//! ```
//!
//! and committed with `fsync` before the daemon reports the batch as
//! done, so the file's *valid prefix* is always a consistent history:
//!
//! * a record is either fully present with a matching checksum, or it is
//!   part of the torn tail a crash left behind;
//! * [`Journal::open`] replays the valid prefix, truncates the tail at
//!   the first unreadable record, and positions the write cursor there —
//!   a restarted daemon continues exactly where the last committed batch
//!   ended;
//! * experiment outcomes are journaled *before* the in-memory progress
//!   counter advances, so replay can only over-approximate pending work,
//!   never lose a committed result.

use crate::job::{JobSpec, JobState};
use crate::wire::{self, Reader, WireError, Writer};
use sofi_campaign::ExperimentResult;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was accepted: the full spec, so a restarted daemon can
    /// rebuild the identical campaign (same program, domain and config
    /// ⇒ same deterministic plan and experiment ids).
    JobStart {
        /// Daemon-assigned job id.
        job: u64,
        /// The submitted spec, verbatim.
        spec: JobSpec,
    },
    /// A batch of experiments completed and their outcomes are final.
    Batch {
        /// Job id.
        job: u64,
        /// The batch's outcomes (any order within the job).
        results: Vec<ExperimentResult>,
    },
    /// The job reached a terminal state; replay needs no further work.
    End {
        /// Job id.
        job: u64,
        /// `Done`, `Failed` or `Cancelled`.
        state: JobState,
    },
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::JobStart { job, spec } => {
                w.u8(0);
                w.u64(*job);
                spec.encode(&mut w);
            }
            Record::Batch { job, results } => {
                w.u8(1);
                w.u64(*job);
                w.u32(results.len() as u32);
                for r in results {
                    wire::put_experiment_result(&mut w, r);
                }
            }
            Record::End { job, state } => {
                w.u8(2);
                w.u64(*job);
                w.u8(state.encode());
            }
        }
        w.finish()
    }

    fn decode(payload: &[u8]) -> Result<Record, WireError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            0 => Record::JobStart {
                job: r.u64()?,
                spec: JobSpec::decode(&mut r)?,
            },
            1 => {
                let job = r.u64()?;
                let n = r.seq_len(wire::EXPERIMENT_RESULT_MIN_BYTES)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(wire::take_experiment_result(&mut r)?);
                }
                Record::Batch { job, results }
            }
            2 => Record::End {
                job: r.u64()?,
                state: JobState::decode(&mut r)?,
            },
            t => return Err(r.err(format!("bad journal record tag {t}"))),
        };
        r.expect_end()?;
        Ok(rec)
    }
}

/// An open journal file positioned at the end of its valid prefix.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    commits: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays every committed
    /// record, and truncates any torn tail a crash left behind.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures; corrupt record *content* is not
    /// an error — it marks the end of the committed history.
    pub fn open(path: &Path) -> io::Result<(Journal, Vec<Record>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = replay(&bytes);
        if valid_len as u64 != bytes.len() as u64 {
            // Torn tail from a mid-write crash: drop it so the next
            // append starts at a committed record boundary.
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let commits = records.len() as u64;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                commits,
            },
            records,
        ))
    }

    /// Appends one record and commits it: the write is flushed and
    /// `fsync`ed before this returns, so a crash afterwards cannot lose
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the record must be considered
    /// uncommitted.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&wire::fnv1a32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.commits += 1;
        Ok(())
    }

    /// Committed records so far (replayed + appended).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decodes the valid record prefix of `bytes`, returning the records and
/// the byte length of the prefix. Decoding stops — without error — at
/// the first truncated frame, checksum mismatch, or undecodable payload.
fn replay(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut pos = 0;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if wire::fnv1a32(payload) != crc {
            break;
        }
        let Ok(record) = Record::decode(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, pos)
}

/// A job reconstructed from journal replay.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Job id from the start record.
    pub job: u64,
    /// The spec, verbatim as submitted.
    pub spec: JobSpec,
    /// Every committed experiment outcome, in commit order.
    pub results: Vec<ExperimentResult>,
    /// Terminal state, or `None` for a job interrupted mid-campaign
    /// (start record without end record) — the daemon resumes these.
    pub end: Option<JobState>,
}

/// Folds a replayed record stream into per-job recovery state, in
/// first-seen job order. Batches for unknown jobs (possible only with a
/// hand-edited journal) are dropped.
pub fn recover(records: Vec<Record>) -> Vec<RecoveredJob> {
    let mut order: Vec<u64> = Vec::new();
    let mut jobs: HashMap<u64, RecoveredJob> = HashMap::new();
    for record in records {
        match record {
            Record::JobStart { job, spec } => {
                order.push(job);
                jobs.insert(
                    job,
                    RecoveredJob {
                        job,
                        spec,
                        results: Vec::new(),
                        end: None,
                    },
                );
            }
            Record::Batch { job, results } => {
                if let Some(j) = jobs.get_mut(&job) {
                    j.results.extend(results);
                }
            }
            Record::End { job, state } => {
                if let Some(j) = jobs.get_mut(&job) {
                    j.end = Some(state);
                }
            }
        }
    }
    order
        .into_iter()
        .filter_map(|id| jobs.remove(&id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::{CampaignConfig, FaultDomain, Outcome};
    use sofi_space::{Experiment, FaultCoord};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sofi-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn spec() -> JobSpec {
        JobSpec {
            name: "j".into(),
            source: "nop\n".into(),
            domain: FaultDomain::Memory,
            config: CampaignConfig::sequential(),
            warm_store: true,
        }
    }

    fn batch(job: u64, ids: &[u32]) -> Record {
        Record::Batch {
            job,
            results: ids
                .iter()
                .map(|&id| ExperimentResult {
                    experiment: Experiment {
                        id,
                        coord: FaultCoord {
                            cycle: u64::from(id) + 1,
                            bit: 0,
                        },
                        weight: 2,
                    },
                    outcome: Outcome::NoEffect,
                })
                .collect(),
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            Record::JobStart {
                job: 1,
                spec: spec(),
            },
            batch(1, &[0, 1, 2]),
            batch(1, &[3]),
            Record::End {
                job: 1,
                state: JobState::Done,
            },
        ];
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for r in &records {
                j.append(r).unwrap();
            }
            assert_eq!(j.commits(), 4);
        }
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(j.commits(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&Record::JobStart {
                job: 1,
                spec: spec(),
            })
            .unwrap();
            j.append(&batch(1, &[0])).unwrap();
        }
        // Simulate a crash mid-write: append half a record.
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[0x55, 0x01, 0x00, 0x00, 0xAA]);
        std::fs::write(&path, &torn).unwrap();

        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2, "torn tail must not hide commits");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full.len() as u64);
        // The journal stays appendable at the committed boundary.
        j.append(&batch(1, &[1])).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_corruption_ends_the_valid_prefix() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&Record::JobStart {
                job: 1,
                spec: spec(),
            })
            .unwrap();
            j.append(&batch(1, &[0])).unwrap();
            j.append(&batch(1, &[1])).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* record's payload.
        let second_start = {
            let len0 = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            8 + len0
        };
        bytes[second_start + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "corruption must cut the history there");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_partitions_jobs() {
        let recovered = recover(vec![
            Record::JobStart {
                job: 1,
                spec: spec(),
            },
            Record::JobStart {
                job: 2,
                spec: spec(),
            },
            batch(1, &[0, 1]),
            batch(2, &[0]),
            batch(1, &[2]),
            Record::End {
                job: 1,
                state: JobState::Done,
            },
        ]);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].job, 1);
        assert_eq!(recovered[0].results.len(), 3);
        assert_eq!(recovered[0].end, Some(JobState::Done));
        assert_eq!(recovered[1].job, 2);
        assert_eq!(recovered[1].results.len(), 1);
        assert_eq!(recovered[1].end, None, "job 2 was interrupted");
    }
}
