//! Binary wire codec: primitives + result-type encodings.
//!
//! Everything the daemon persists or ships over a socket — frames, journal
//! records, job specs, campaign results — reduces to this little-endian
//! codec. It is deliberately dumb: fixed-width integers, length-prefixed
//! strings/sequences, one tag byte per enum variant. Decoding is total
//! (never panics on arbitrary bytes) and returns a typed [`WireError`]
//! with the offending byte offset, which the protocol layer surfaces as
//! `ProtocolError::Malformed`.

use sofi_campaign::{CampaignResult, ExecutorStats, ExperimentResult, FaultDomain, Outcome};
use sofi_isa::MemWidth;
use sofi_machine::Trap;
use sofi_space::{Experiment, FaultCoord, FaultSpace};
use sofi_telemetry::{Bucket, HistogramSnapshot, Snapshot};
use std::fmt;

/// Decode failure: what went wrong and where in the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description ("truncated u32", "bad outcome tag 9").
    pub message: String,
    /// Byte offset into the payload at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at payload byte {}", self.message, self.offset)
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 32-bit hash — the frame and journal-record checksum. Not
/// cryptographic; it exists to catch torn writes and line corruption.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    fnv1a32_update(0x811c_9dc5, bytes)
}

/// Streaming FNV-1a-32: folds `bytes` into an existing hash state, so a
/// checksum can cover discontiguous regions (the frame header and the
/// payload) without concatenating them. Seed with `fnv1a32(b"")`
/// (the offset basis) for a fresh hash.
///
/// A single corrupted byte always changes the result: the first
/// differing byte sends the two states through `xor` to different
/// values, and every subsequent step (xor with an identical byte,
/// multiply by an odd constant) is a bijection, so the states can never
/// re-converge.
pub fn fnv1a32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state ^= u32::from(b);
        state = state.wrapping_mul(0x0100_0193);
    }
    state
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends length-prefixed (`u32`) raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error constructor at the current offset.
    pub fn err(&self, message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
            offset: self.pos,
        }
    }

    /// Fails unless the whole buffer was consumed (catches overlong
    /// payloads smuggled under a valid prefix).
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing bytes after message", self.remaining())))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.err(format!("truncated {what}")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a one-byte bool (strict: only 0 and 1 are valid).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.err(format!(
                "string length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.err(format!(
                "byte-array length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(self.take(len, "byte-array body")?.to_vec())
    }

    /// Reads a `u32` sequence length, bounding it by what could possibly
    /// fit in the remaining bytes at `min_elem` bytes per element.
    pub fn seq_len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(self.err(format!(
                "sequence length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

// --- Suite result-type codecs -------------------------------------------

/// Encodes a [`FaultDomain`] as one tag byte.
pub fn put_domain(w: &mut Writer, d: FaultDomain) {
    w.u8(match d {
        FaultDomain::Memory => 0,
        FaultDomain::RegisterFile => 1,
    });
}

/// Decodes a [`FaultDomain`].
pub fn take_domain(r: &mut Reader<'_>) -> Result<FaultDomain, WireError> {
    match r.u8()? {
        0 => Ok(FaultDomain::Memory),
        1 => Ok(FaultDomain::RegisterFile),
        t => Err(r.err(format!("bad fault-domain tag {t}"))),
    }
}

fn put_width(w: &mut Writer, width: MemWidth) {
    w.u8(match width {
        MemWidth::Byte => 1,
        MemWidth::Half => 2,
        MemWidth::Word => 4,
    });
}

fn take_width(r: &mut Reader<'_>) -> Result<MemWidth, WireError> {
    match r.u8()? {
        1 => Ok(MemWidth::Byte),
        2 => Ok(MemWidth::Half),
        4 => Ok(MemWidth::Word),
        t => Err(r.err(format!("bad memory-width tag {t}"))),
    }
}

fn put_trap(w: &mut Writer, trap: Trap) {
    match trap {
        Trap::Misaligned { addr, width } => {
            w.u8(0);
            w.u32(addr);
            put_width(w, width);
        }
        Trap::OutOfRange { addr } => {
            w.u8(1);
            w.u32(addr);
        }
        Trap::MmioRead { addr } => {
            w.u8(2);
            w.u32(addr);
        }
        Trap::BadJump { target } => {
            w.u8(3);
            w.u32(target);
        }
        Trap::SerialOverflow => w.u8(4),
    }
}

fn take_trap(r: &mut Reader<'_>) -> Result<Trap, WireError> {
    match r.u8()? {
        0 => Ok(Trap::Misaligned {
            addr: r.u32()?,
            width: take_width(r)?,
        }),
        1 => Ok(Trap::OutOfRange { addr: r.u32()? }),
        2 => Ok(Trap::MmioRead { addr: r.u32()? }),
        3 => Ok(Trap::BadJump { target: r.u32()? }),
        4 => Ok(Trap::SerialOverflow),
        t => Err(r.err(format!("bad trap tag {t}"))),
    }
}

/// Encodes an [`Outcome`] as tag byte + variant payload.
pub fn put_outcome(w: &mut Writer, o: Outcome) {
    match o {
        Outcome::NoEffect => w.u8(0),
        Outcome::DetectedCorrected => w.u8(1),
        Outcome::SilentDataCorruption => w.u8(2),
        Outcome::DetectedUnrecoverable => w.u8(3),
        Outcome::AbnormalHalt { code } => {
            w.u8(4);
            w.u16(code);
        }
        Outcome::CpuException(trap) => {
            w.u8(5);
            put_trap(w, trap);
        }
        Outcome::Timeout => w.u8(6),
        Outcome::OutputFlood => w.u8(7),
    }
}

/// Decodes an [`Outcome`].
pub fn take_outcome(r: &mut Reader<'_>) -> Result<Outcome, WireError> {
    match r.u8()? {
        0 => Ok(Outcome::NoEffect),
        1 => Ok(Outcome::DetectedCorrected),
        2 => Ok(Outcome::SilentDataCorruption),
        3 => Ok(Outcome::DetectedUnrecoverable),
        4 => Ok(Outcome::AbnormalHalt { code: r.u16()? }),
        5 => Ok(Outcome::CpuException(take_trap(r)?)),
        6 => Ok(Outcome::Timeout),
        7 => Ok(Outcome::OutputFlood),
        t => Err(r.err(format!("bad outcome tag {t}"))),
    }
}

/// Encodes one [`ExperimentResult`] (experiment + outcome).
pub fn put_experiment_result(w: &mut Writer, res: &ExperimentResult) {
    w.u32(res.experiment.id);
    w.u64(res.experiment.coord.cycle);
    w.u64(res.experiment.coord.bit);
    w.u64(res.experiment.weight);
    put_outcome(w, res.outcome);
}

/// Decodes one [`ExperimentResult`].
pub fn take_experiment_result(r: &mut Reader<'_>) -> Result<ExperimentResult, WireError> {
    Ok(ExperimentResult {
        experiment: Experiment {
            id: r.u32()?,
            coord: FaultCoord {
                cycle: r.u64()?,
                bit: r.u64()?,
            },
            weight: r.u64()?,
        },
        outcome: take_outcome(r)?,
    })
}

/// Minimum encoded size of an [`ExperimentResult`] (for sequence-length
/// sanity bounds).
pub const EXPERIMENT_RESULT_MIN_BYTES: usize = 4 + 8 + 8 + 8 + 1;

/// Encodes a full [`CampaignResult`].
pub fn put_campaign_result(w: &mut Writer, res: &CampaignResult) {
    w.str(&res.benchmark);
    put_domain(w, res.domain);
    w.u64(res.space.cycles);
    w.u64(res.space.bits);
    w.u64(res.known_benign_weight);
    w.u64(res.golden_cycles);
    w.u32(res.results.len() as u32);
    for r in &res.results {
        put_experiment_result(w, r);
    }
}

/// Decodes a full [`CampaignResult`].
pub fn take_campaign_result(r: &mut Reader<'_>) -> Result<CampaignResult, WireError> {
    let benchmark = r.str()?;
    let domain = take_domain(r)?;
    let space = FaultSpace {
        cycles: r.u64()?,
        bits: r.u64()?,
    };
    let known_benign_weight = r.u64()?;
    let golden_cycles = r.u64()?;
    let n = r.seq_len(EXPERIMENT_RESULT_MIN_BYTES)?;
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        results.push(take_experiment_result(r)?);
    }
    Ok(CampaignResult {
        benchmark,
        domain,
        space,
        known_benign_weight,
        golden_cycles,
        results,
    })
}

/// Encodes the executor counters that travel with a finished job.
pub fn put_stats(w: &mut Writer, s: &ExecutorStats) {
    w.u64(s.workers as u64);
    w.u64(s.experiments);
    w.u64(s.pristine_cycles);
    w.u64(s.faulted_cycles);
    w.u64(s.converged_early);
    w.u64(s.faulted_cycles_saved);
    w.u64(s.memo_hits);
    w.u64(s.memo_misses);
    w.u64(s.memoized_cycles_saved);
    w.u64(s.gate_shards_on);
    w.u64(s.gate_shards_off);
    w.u64(s.store_hits);
}

/// Decodes [`ExecutorStats`].
pub fn take_stats(r: &mut Reader<'_>) -> Result<ExecutorStats, WireError> {
    Ok(ExecutorStats {
        workers: r.u64()? as usize,
        experiments: r.u64()?,
        pristine_cycles: r.u64()?,
        faulted_cycles: r.u64()?,
        converged_early: r.u64()?,
        faulted_cycles_saved: r.u64()?,
        memo_hits: r.u64()?,
        memo_misses: r.u64()?,
        memoized_cycles_saved: r.u64()?,
        gate_shards_on: r.u64()?,
        gate_shards_off: r.u64()?,
        store_hits: r.u64()?,
    })
}

/// Minimum encoded size of a named counter/gauge entry (empty name).
const METRIC_ENTRY_MIN_BYTES: usize = 4 + 8;
/// Minimum encoded size of a named histogram (empty name, no buckets).
const HISTOGRAM_MIN_BYTES: usize = 4 + 4 * 8 + 4;
/// Encoded size of one histogram bucket.
const BUCKET_BYTES: usize = 3 * 8;

fn put_metric_entries(w: &mut Writer, entries: &[(String, u64)]) {
    w.u32(entries.len() as u32);
    for (name, value) in entries {
        w.str(name);
        w.u64(*value);
    }
}

fn take_metric_entries(r: &mut Reader<'_>) -> Result<Vec<(String, u64)>, WireError> {
    let n = r.seq_len(METRIC_ENTRY_MIN_BYTES)?;
    let mut entries = Vec::with_capacity(n);
    let mut prev: Option<String> = None;
    for _ in 0..n {
        let name = r.str()?;
        if prev.as_deref() >= Some(name.as_str()) {
            return Err(r.err(format!("metric names not strictly sorted at {name:?}")));
        }
        let value = r.u64()?;
        prev = Some(name.clone());
        entries.push((name, value));
    }
    Ok(entries)
}

/// Encodes a telemetry [`Snapshot`] (counters, gauges, histograms with
/// their occupied buckets).
pub fn put_snapshot(w: &mut Writer, s: &Snapshot) {
    put_metric_entries(w, &s.counters);
    put_metric_entries(w, &s.gauges);
    w.u32(s.histograms.len() as u32);
    for (name, h) in &s.histograms {
        w.str(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.min);
        w.u64(h.max);
        w.u32(h.buckets.len() as u32);
        for b in &h.buckets {
            w.u64(b.lo);
            w.u64(b.hi);
            w.u64(b.count);
        }
    }
}

/// Decodes a telemetry [`Snapshot`]. Name lists must be strictly sorted
/// (the registry emits them that way and [`Snapshot::merge`] relies on
/// it), and bucket lists strictly ascending by `lo`; anything else is a
/// typed [`WireError`].
pub fn take_snapshot(r: &mut Reader<'_>) -> Result<Snapshot, WireError> {
    let counters = take_metric_entries(r)?;
    let gauges = take_metric_entries(r)?;
    let n = r.seq_len(HISTOGRAM_MIN_BYTES)?;
    let mut histograms = Vec::with_capacity(n);
    let mut prev: Option<String> = None;
    for _ in 0..n {
        let name = r.str()?;
        if prev.as_deref() >= Some(name.as_str()) {
            return Err(r.err(format!("histogram names not strictly sorted at {name:?}")));
        }
        prev = Some(name.clone());
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let buckets_len = r.seq_len(BUCKET_BYTES)?;
        let mut buckets = Vec::with_capacity(buckets_len);
        let mut prev_lo: Option<u64> = None;
        for _ in 0..buckets_len {
            let b = Bucket {
                lo: r.u64()?,
                hi: r.u64()?,
                count: r.u64()?,
            };
            if b.hi < b.lo || prev_lo.is_some_and(|p| b.lo <= p) {
                return Err(r.err(format!("histogram buckets not ascending at lo {}", b.lo)));
            }
            prev_lo = Some(b.lo);
            buckets.push(b);
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                sum,
                min,
                max,
                buckets,
            },
        ));
    }
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn every_outcome_round_trips() {
        let outcomes = [
            Outcome::NoEffect,
            Outcome::DetectedCorrected,
            Outcome::SilentDataCorruption,
            Outcome::DetectedUnrecoverable,
            Outcome::AbnormalHalt { code: 0xDE },
            Outcome::CpuException(Trap::Misaligned {
                addr: 13,
                width: MemWidth::Word,
            }),
            Outcome::CpuException(Trap::OutOfRange { addr: 999 }),
            Outcome::CpuException(Trap::MmioRead { addr: 0xFF00 }),
            Outcome::CpuException(Trap::BadJump { target: 77 }),
            Outcome::CpuException(Trap::SerialOverflow),
            Outcome::Timeout,
            Outcome::OutputFlood,
        ];
        for o in outcomes {
            let mut w = Writer::new();
            put_outcome(&mut w, o);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            assert_eq!(take_outcome(&mut r).unwrap(), o);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn campaign_result_round_trips() {
        let res = CampaignResult {
            benchmark: "bench".into(),
            domain: FaultDomain::RegisterFile,
            space: FaultSpace::new(100, 64),
            known_benign_weight: 17,
            golden_cycles: 100,
            results: vec![
                ExperimentResult {
                    experiment: Experiment {
                        id: 0,
                        coord: FaultCoord { cycle: 3, bit: 5 },
                        weight: 9,
                    },
                    outcome: Outcome::SilentDataCorruption,
                },
                ExperimentResult {
                    experiment: Experiment {
                        id: 1,
                        coord: FaultCoord { cycle: 90, bit: 63 },
                        weight: 1,
                    },
                    outcome: Outcome::NoEffect,
                },
            ],
        };
        let mut w = Writer::new();
        put_campaign_result(&mut w, &res);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(take_campaign_result(&mut r).unwrap(), res);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut r = Reader::new(&[]);
        assert!(r.u32().unwrap_err().message.contains("truncated"));
        // String whose claimed length exceeds the buffer.
        let mut w = Writer::new();
        w.u32(1000);
        let buf = w.finish();
        assert!(Reader::new(&buf)
            .str()
            .unwrap_err()
            .message
            .contains("exceeds"));
        // Bogus enum tags.
        assert!(take_outcome(&mut Reader::new(&[9])).is_err());
        assert!(take_domain(&mut Reader::new(&[3])).is_err());
        // Bool strictness.
        assert!(Reader::new(&[2]).bool().is_err());
    }

    #[test]
    fn snapshot_round_trips() {
        // Build a snapshot through the real registry so the encoded form
        // matches what the daemon actually emits.
        let reg = sofi_telemetry::Registry::enabled();
        reg.counter("serve.jobs_submitted").add(3);
        reg.counter("executor.experiments").add(41);
        reg.gauge("serve.queue_depth").set(2);
        let h = reg.histogram("executor.faulted_run_cycles");
        for v in [0, 1, 17, 900, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();

        let mut w = Writer::new();
        put_snapshot(&mut w, &snap);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(take_snapshot(&mut r).unwrap(), snap);
        r.expect_end().unwrap();

        // The empty snapshot round-trips too.
        let mut w = Writer::new();
        put_snapshot(&mut w, &Snapshot::default());
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(take_snapshot(&mut r).unwrap(), Snapshot::default());
        r.expect_end().unwrap();
    }

    #[test]
    fn snapshot_decode_rejects_malformed_input() {
        // Unsorted counter names.
        let mut w = Writer::new();
        w.u32(2);
        w.str("b");
        w.u64(1);
        w.str("a");
        w.u64(2);
        w.u32(0);
        w.u32(0);
        let buf = w.finish();
        let err = take_snapshot(&mut Reader::new(&buf)).unwrap_err();
        assert!(err.message.contains("sorted"), "{}", err.message);

        // Duplicate histogram names.
        let mut w = Writer::new();
        w.u32(0);
        w.u32(0);
        w.u32(2);
        for _ in 0..2 {
            w.str("dup");
            w.u64(0);
            w.u64(0);
            w.u64(0);
            w.u64(0);
            w.u32(0);
        }
        let buf = w.finish();
        assert!(take_snapshot(&mut Reader::new(&buf)).is_err());

        // Buckets out of order.
        let mut w = Writer::new();
        w.u32(0);
        w.u32(0);
        w.u32(1);
        w.str("h");
        w.u64(2);
        w.u64(10);
        w.u64(4);
        w.u64(6);
        w.u32(2);
        w.u64(6);
        w.u64(7);
        w.u64(1);
        w.u64(4); // lo goes backwards
        w.u64(5);
        w.u64(1);
        let buf = w.finish();
        let err = take_snapshot(&mut Reader::new(&buf)).unwrap_err();
        assert!(err.message.contains("ascending"), "{}", err.message);

        // Absurd claimed lengths are caught by the sequence guard, not
        // by allocation.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        assert!(take_snapshot(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        // Reference values for the FNV-1a parameters (empty input hashes
        // to the offset basis).
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_ne!(fnv1a32(b"sofi"), fnv1a32(b"sofj"));
    }
}
