//! Job specs and the per-job state machine.

use crate::wire::{self, Reader, WireError, Writer};
use sofi_campaign::{CampaignConfig, ExecutorStats, FaultDomain};
use std::fmt;

/// Everything needed to reconstruct and run a campaign, carried in the
/// Submit request and persisted verbatim in the journal's job-start
/// record (so a restarted daemon can rebuild the identical campaign).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Benchmark name (defaults to the source file stem).
    pub name: String,
    /// Assembly source text; the daemon assembles it server-side, so the
    /// client needs no local toolchain state.
    pub source: String,
    /// Which fault space to scan.
    pub domain: FaultDomain,
    /// Executor knobs (threads, convergence, memoization, timeouts),
    /// packed via [`CampaignConfig::pack`] on the wire.
    pub config: CampaignConfig,
    /// Consult (and feed) the daemon's persistent cross-campaign warm
    /// store for this job: memoized outcome facts recorded by earlier
    /// jobs over the same program/domain/budget context are preloaded
    /// into the campaign's memo before execution, and fresh facts are
    /// persisted when the job completes. On by default; `submit --cold`
    /// clears it for ablation and benchmarking. Ignored when the spec's
    /// `config.memoization` is off or the daemon runs without a store.
    pub warm_store: bool,
}

impl JobSpec {
    /// Serializes the spec.
    pub fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.str(&self.source);
        wire::put_domain(w, self.domain);
        for word in self.config.pack() {
            w.u64(word);
        }
        w.bool(self.warm_store);
    }

    /// Deserializes a spec.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or bad tags.
    pub fn decode(r: &mut Reader<'_>) -> Result<JobSpec, WireError> {
        let name = r.str()?;
        let source = r.str()?;
        let domain = wire::take_domain(r)?;
        let mut words = [0u64; 9];
        for word in &mut words {
            *word = r.u64()?;
        }
        Ok(JobSpec {
            name,
            source,
            domain,
            config: CampaignConfig::unpack(words),
            warm_store: r.bool()?,
        })
    }
}

/// The job lifecycle: `Queued → Running → Done | Failed | Cancelled`.
///
/// `Running` is additionally the state a crashed daemon finds jobs in
/// after journal replay (start record, no end record); recovery re-queues
/// the uncovered tail rather than inventing a new state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing experiment batches.
    Running,
    /// All experiments executed; the result is available.
    Done,
    /// The campaign could not run (assembly error, golden run failed).
    Failed,
    /// Cancelled by request before completion.
    Cancelled,
}

impl JobState {
    /// `true` once the job will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// One tag byte on the wire and in journal end records.
    pub fn encode(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
        }
    }

    /// Inverse of [`JobState::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on an unknown tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<JobState, WireError> {
        match r.u8()? {
            0 => Ok(JobState::Queued),
            1 => Ok(JobState::Running),
            2 => Ok(JobState::Done),
            3 => Ok(JobState::Failed),
            4 => Ok(JobState::Cancelled),
            t => Err(r.err(format!("bad job-state tag {t}"))),
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

/// A point-in-time public view of one job, as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Daemon-assigned job id.
    pub id: u64,
    /// Benchmark name from the spec.
    pub name: String,
    /// Fault domain from the spec.
    pub domain: FaultDomain,
    /// Current lifecycle state.
    pub state: JobState,
    /// Experiments with committed outcomes so far.
    pub done: u64,
    /// Total experiments in the job's plan (0 until the golden run and
    /// def/use analysis have completed).
    pub total: u64,
    /// Failure detail for [`JobState::Failed`] jobs, empty otherwise.
    pub error: String,
    /// Live executor statistics merged from every batch committed so
    /// far (all-zero until the first batch lands). Derived figures like
    /// [`ExecutorStats::early_termination_rate`] are ratios of these
    /// merged counters, so they stay meaningful mid-run.
    pub stats: ExecutorStats,
}

impl JobStatus {
    /// Serializes the status.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.id);
        w.str(&self.name);
        wire::put_domain(w, self.domain);
        w.u8(self.state.encode());
        w.u64(self.done);
        w.u64(self.total);
        w.str(&self.error);
        wire::put_stats(w, &self.stats);
    }

    /// Deserializes a status.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or bad tags.
    pub fn decode(r: &mut Reader<'_>) -> Result<JobStatus, WireError> {
        Ok(JobStatus {
            id: r.u64()?,
            name: r.str()?,
            domain: wire::take_domain(r)?,
            state: JobState::decode(r)?,
            done: r.u64()?,
            total: r.u64()?,
            error: r.str()?,
            stats: wire::take_stats(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = JobSpec {
            name: "fib".into(),
            source: ".text\nnop\n".into(),
            domain: FaultDomain::RegisterFile,
            config: CampaignConfig {
                threads: 3,
                telemetry: true,
                ..CampaignConfig::default()
            },
            warm_store: false,
        };
        let mut w = Writer::new();
        spec.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(JobSpec::decode(&mut r).unwrap(), spec);
        r.expect_end().unwrap();
    }

    #[test]
    fn state_round_trips_and_terminality() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            let buf = [s.encode()];
            assert_eq!(JobState::decode(&mut Reader::new(&buf)).unwrap(), s);
        }
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::decode(&mut Reader::new(&[9])).is_err());
    }

    #[test]
    fn status_round_trips() {
        let st = JobStatus {
            id: 42,
            name: "hi".into(),
            domain: FaultDomain::Memory,
            state: JobState::Running,
            done: 10,
            total: 16,
            error: String::new(),
            stats: ExecutorStats {
                workers: 2,
                experiments: 10,
                converged_early: 4,
                ..ExecutorStats::default()
            },
        };
        let mut w = Writer::new();
        st.encode(&mut w);
        let buf = w.finish();
        assert_eq!(JobStatus::decode(&mut Reader::new(&buf)).unwrap(), st);
    }
}
