//! `sofi-serve`: the campaign service daemon.
//!
//! A std-only (no external dependencies) client/server layer over the
//! `sofi-campaign` executor:
//!
//! - [`protocol`] — a versioned, length-prefixed, checksummed binary
//!   frame format ([`protocol::Message`]); decoding is total and never
//!   panics.
//! - [`job`] — job specs (name + assembly source + fault domain +
//!   packed [`sofi_campaign::CampaignConfig`]) and the
//!   `Queued → Running → Done | Failed | Cancelled` state machine.
//! - [`journal`] — an append-only, per-record-checksummed, fsync'd
//!   result journal; a killed daemon replays the valid prefix on
//!   restart and resumes interrupted campaigns from the uncovered tail
//!   of their fault lists.
//! - [`scheduler`] — the bounded in-memory job queue and fixed worker
//!   pool dispatching fault-list batches through
//!   [`sofi_campaign::Campaign::run_experiments_stats`].
//! - [`store`] — the persistent cross-campaign warm store
//!   ([`store::WarmStore`]): an append-only, checksummed file of
//!   memoized outcome facts keyed by program/domain/budget context,
//!   preloaded into later campaigns over the same context.
//! - [`server`] / [`client`] — the TCP/Unix-socket daemon
//!   ([`server::Server`]) and the CLI-facing client ([`client::Client`]).
//!
//! The merged result of a journaled (even interrupted-and-resumed)
//! campaign is bit-identical to an in-process
//! [`sofi_campaign::Campaign`] run of the same spec: the daemon replays
//! committed batches, re-runs only the missing experiments, and
//! reassembles through the same [`sofi_campaign::Campaign::assemble_result`]
//! path (proven in `tests/serve_roundtrip.rs` and
//! `tests/serve_recovery.rs`).

pub mod client;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError};
pub use job::{JobSpec, JobState, JobStatus};
pub use journal::{Journal, Record, RecoveredJob};
pub use protocol::{Message, ProtocolError};
pub use scheduler::{CancelOutcome, Scheduler, ServeConfig, SubmitOutcome};
pub use server::{Server, ShutdownHandle};
pub use store::{context_key, WarmStore};
