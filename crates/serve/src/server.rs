//! The daemon: accepts connections on TCP or a Unix socket, speaks the
//! framed [`crate::protocol`], and drives the [`crate::scheduler`].
//!
//! One thread per connection; each handler loops reading request frames
//! until the client closes, the idle read-timeout expires, or a protocol
//! error occurs (reported back as an `Error` frame where the transport
//! still allows it). A `Shutdown` request flips the drain flag: queued
//! and running jobs finish, new submissions get `ShuttingDown`, and
//! [`Server::run`] returns once the accept loop and all workers have
//! stopped.

use crate::job::JobSpec;
use crate::protocol::{read_message, write_message, Message, ProtocolError};
use crate::scheduler::{CancelOutcome, Scheduler, ServeConfig, SubmitOutcome};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// `true` when `addr` names a Unix-domain socket path rather than a TCP
/// host:port — any address containing a `/`.
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Conn {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr` (Unix socket iff the address contains `/`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Conn> {
        if is_unix_addr(addr) {
            Ok(Conn::Unix(UnixStream::connect(addr)?))
        } else {
            Ok(Conn::Tcp(TcpStream::connect(addr)?))
        }
    }

    /// Applies a read timeout (`None` clears it).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            Listener::Unix(l, _) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The campaign service daemon.
#[derive(Debug)]
pub struct Server {
    listener: Listener,
    addr: String,
    sched: Arc<Scheduler>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (TCP `host:port`, or a Unix socket path when the
    /// address contains `/` — a stale socket file is replaced), opens or
    /// resumes the journal at `journal`, and starts the worker pool.
    /// Interrupted jobs found in the journal are re-queued immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind and journal-I/O failures.
    pub fn bind(addr: &str, journal: &Path, config: ServeConfig) -> io::Result<Server> {
        let listener = if is_unix_addr(addr) {
            let path = PathBuf::from(addr);
            let _ = std::fs::remove_file(&path);
            Listener::Unix(UnixListener::bind(&path)?, path)
        } else {
            Listener::Tcp(TcpListener::bind(addr)?)
        };
        let bound = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Unix(_, path) => path.display().to_string(),
        };
        let sched = Arc::new(Scheduler::open(journal, config)?);
        Ok(Server {
            listener,
            addr: bound,
            sched,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address — with TCP port resolved, so binding to port 0
    /// yields the ephemeral port the tests need.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The shared scheduler (status inspection in tests).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// A handle that makes [`Server::run`] return as if a `Shutdown`
    /// request had arrived.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.addr.clone(),
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serves connections until a `Shutdown` request (or
    /// [`ShutdownHandle::shutdown`]), then drains: running and queued
    /// jobs finish, handler threads join, and the method returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(self) -> io::Result<()> {
        let handles: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
        loop {
            let conn = match self.listener.accept() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(e);
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client): drop it and
                // stop accepting.
                break;
            }
            let sched = Arc::clone(&self.sched);
            let shutdown = Arc::clone(&self.shutdown);
            let addr = self.addr.clone();
            handles.lock().unwrap().push(std::thread::spawn(move || {
                handle_connection(conn, &sched, &shutdown, &addr);
            }));
        }
        for h in handles.into_inner().unwrap() {
            let _ = h.join();
        }
        self.sched.drain();
        Ok(())
    }
}

/// Triggers a graceful drain from outside the accept loop.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    addr: String,
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Flips the shutdown flag and unblocks the accept loop.
    pub fn shutdown(&self) {
        request_shutdown(&self.shutdown, &self.addr);
    }
}

/// Sets the flag and pokes the listener with a throwaway connection so
/// `accept()` returns and observes it.
fn request_shutdown(shutdown: &AtomicBool, addr: &str) {
    shutdown.store(true, Ordering::SeqCst);
    let _ = Conn::connect(addr);
}

fn handle_connection(mut conn: Conn, sched: &Scheduler, shutdown: &AtomicBool, addr: &str) {
    let _ = conn.set_read_timeout(Some(sched.config().idle_timeout));
    loop {
        let msg = match read_message(&mut conn) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // client closed between frames
            Err(ProtocolError::Io(io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)) => {
                // Idle client: tell it why and hang up.
                let _ = write_message(
                    &mut conn,
                    &Message::Error {
                        message: "idle timeout".into(),
                    },
                );
                return;
            }
            Err(e) => {
                let _ = write_message(
                    &mut conn,
                    &Message::Error {
                        message: format!("protocol error: {e}"),
                    },
                );
                return;
            }
        };
        let keep_going = match msg {
            Message::Submit { spec, wait } => handle_submit(&mut conn, sched, spec, wait),
            Message::Status { job } => {
                let reply = match sched.status(job) {
                    Some(jobs) => Message::StatusReport { jobs },
                    None => Message::Error {
                        message: format!("no such job {}", job.unwrap_or(0)),
                    },
                };
                write_message(&mut conn, &reply).is_ok()
            }
            Message::Stats { job } => {
                let reply = match sched.telemetry_snapshot(job) {
                    Some(snapshot) => Message::Telemetry { snapshot },
                    None => Message::Error {
                        message: format!("no such job {}", job.unwrap_or(0)),
                    },
                };
                write_message(&mut conn, &reply).is_ok()
            }
            Message::Cancel { job } => {
                let reply = match sched.cancel(job) {
                    CancelOutcome::Cancelled => Message::Cancelled { job },
                    CancelOutcome::AlreadyTerminal(state) => Message::Error {
                        message: format!("job {job} already {state}"),
                    },
                    CancelOutcome::Unknown => Message::Error {
                        message: format!("no such job {job}"),
                    },
                };
                write_message(&mut conn, &reply).is_ok()
            }
            Message::Shutdown => {
                // Refuse new submissions before the client hears the
                // acknowledgement, so nothing it does afterwards can
                // slip into the queue.
                sched.begin_drain();
                let _ = write_message(&mut conn, &Message::ShuttingDown);
                request_shutdown(shutdown, addr);
                false
            }
            other => {
                let _ = write_message(
                    &mut conn,
                    &Message::Error {
                        message: format!("unexpected message kind {} from client", other.kind()),
                    },
                );
                false
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Submits and, for `wait`, streams progress frames until the job is
/// terminal, finishing with `JobResult` (or `Error` for failed/cancelled
/// jobs). Returns `false` when the connection should close.
fn handle_submit(conn: &mut Conn, sched: &Scheduler, spec: JobSpec, wait: bool) -> bool {
    let job = match sched.submit(spec) {
        SubmitOutcome::Accepted(job) => job,
        SubmitOutcome::Busy { queued, capacity } => {
            return write_message(conn, &Message::Busy { queued, capacity }).is_ok();
        }
        SubmitOutcome::ShuttingDown => {
            return write_message(conn, &Message::ShuttingDown).is_ok();
        }
    };
    if write_message(conn, &Message::Accepted { job }).is_err() {
        return false;
    }
    if !wait {
        return true;
    }
    // Streaming can outlast the idle timeout between batches of a slow
    // campaign; progress frames are our own liveness signal, so wait
    // without a deadline.
    let _ = conn.set_read_timeout(None);
    let mut last_done = u64::MAX; // force an initial Progress frame
    loop {
        let Some(update) = sched.wait_progress(job, last_done) else {
            let _ = write_message(
                conn,
                &Message::Error {
                    message: format!("job {job} no longer tracked"),
                },
            );
            return false;
        };
        last_done = update.status.done;
        if write_message(
            conn,
            &Message::Progress {
                job,
                done: update.status.done,
                total: update.status.total,
                stats: update.status.stats,
            },
        )
        .is_err()
        {
            // Client went away mid-stream: the job keeps running.
            return false;
        }
        if update.status.state.is_terminal() {
            let reply = match update.outcome {
                Some((result, stats)) => Message::JobResult { job, result, stats },
                None => Message::Error {
                    message: if update.status.error.is_empty() {
                        format!("job {job} ended {}", update.status.state)
                    } else {
                        format!("job {job} failed: {}", update.status.error)
                    },
                },
            };
            let _ = write_message(conn, &reply);
            let _ = conn.set_read_timeout(Some(sched.config().idle_timeout));
            return true;
        }
    }
}
