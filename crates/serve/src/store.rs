//! The persistent cross-campaign warm store.
//!
//! A daemon-side, append-only file of fault-equivalence outcome facts
//! ([`sofi_campaign::MemoRecord`]): `(cycle, state digest) → (outcome,
//! final cycle)` entries exported by completed jobs and preloaded into
//! later campaigns over the same *context* — program source, fault
//! domain, and the outcome-relevant configuration (timeout factor,
//! timeout slack, serial limit). State digests are purely
//! content-determined, so a fact recorded by one daemon process is valid
//! in any later one.
//!
//! The file format follows the result journal's laws exactly
//! ([`crate::journal`]): each record is framed as
//!
//! ```text
//! offset  size  field
//! 0       4     payload length, little-endian
//! 4       4     FNV-1a-32 checksum of the payload, little-endian
//! 8       len   payload (tag byte + record body, `wire` codec)
//! ```
//!
//! appended with `fsync` (one batch record per completed job), and
//! [`WarmStore::open`] replays the valid prefix and truncates any torn
//! tail a crash left behind — so a daemon killed mid-append loses at
//! most the in-flight batch, never a committed one, and every surviving
//! record is bit-identical to what was written
//! (`tests/warm_store.rs`).

use crate::wire::{self, Reader, WireError, Writer};
use sofi_campaign::{CampaignConfig, FaultDomain, MemoRecord};
use sofi_machine::StateDigest;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A 128-bit campaign-context key: everything that must match for a
/// memoized outcome fact to transfer between jobs. Two independent
/// FNV-1a-64 lanes over the same context bytes — not cryptographic, but
/// 128 bits of separation keeps facts from one program from ever being
/// consulted for another.
pub type ContextKey = u128;

/// FNV-1a-64 with a caller-chosen offset basis (the second lane uses a
/// different basis so the lanes are independent functions).
fn fnv1a64_from(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Computes the context key under which a job's memo facts are stored
/// and looked up: program source text, fault domain, and the three
/// config fields that determine experiment outcomes (the cycle budget's
/// `timeout_factor` and `timeout_slack`, and the machine's
/// `serial_limit`). Scheduling knobs — threads, convergence,
/// memoization, the gate, telemetry, the block engine — are provably
/// outcome-neutral and deliberately excluded, so ablation runs share
/// one warm context.
pub fn context_key(source: &str, domain: FaultDomain, config: &CampaignConfig) -> ContextKey {
    let mut ctx = Vec::with_capacity(source.len() + 32);
    ctx.extend_from_slice(source.as_bytes());
    ctx.push(match domain {
        FaultDomain::Memory => 0,
        FaultDomain::RegisterFile => 1,
    });
    ctx.extend_from_slice(&config.timeout_factor.to_le_bytes());
    ctx.extend_from_slice(&config.timeout_slack.to_le_bytes());
    ctx.extend_from_slice(&(config.machine.serial_limit as u64).to_le_bytes());
    let lo = fnv1a64_from(0xCBF2_9CE4_8422_2325, &ctx);
    let hi = fnv1a64_from(0x6C62_272E_07BB_0142, &ctx);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// One store record: a batch of memo facts for one context, exported by
/// one completed job.
fn encode_batch(ctx: ContextKey, records: &[MemoRecord]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(0); // record tag, for future format evolution
    w.u64((ctx >> 64) as u64);
    w.u64(ctx as u64);
    w.u32(records.len() as u32);
    for r in records {
        w.u64(r.cycle);
        let bits = r.digest.to_bits();
        w.u64((bits >> 64) as u64);
        w.u64(bits as u64);
        wire::put_outcome(&mut w, r.outcome);
        w.u64(r.final_cycle);
    }
    w.finish()
}

/// Minimum encoded size of one memo fact (outcome tag is ≥ 1 byte).
const MEMO_RECORD_MIN_BYTES: usize = 8 + 16 + 1 + 8;

fn decode_batch(payload: &[u8]) -> Result<(ContextKey, Vec<MemoRecord>), WireError> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        0 => {}
        t => return Err(r.err(format!("bad warm-store record tag {t}"))),
    }
    let hi = r.u64()?;
    let lo = r.u64()?;
    let ctx = (u128::from(hi) << 64) | u128::from(lo);
    let n = r.seq_len(MEMO_RECORD_MIN_BYTES)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let cycle = r.u64()?;
        let d_hi = r.u64()?;
        let d_lo = r.u64()?;
        let digest = StateDigest::from_bits((u128::from(d_hi) << 64) | u128::from(d_lo));
        let outcome = wire::take_outcome(&mut r)?;
        let final_cycle = r.u64()?;
        records.push(MemoRecord {
            cycle,
            digest,
            outcome,
            final_cycle,
        });
    }
    r.expect_end()?;
    Ok((ctx, records))
}

/// An open warm store positioned at the end of its valid prefix, with
/// the full fact index in memory.
#[derive(Debug)]
pub struct WarmStore {
    file: File,
    path: PathBuf,
    /// `context → (cycle, digest bits) → fact`. The inner map both
    /// deduplicates appends (a fact persisted once is never rewritten)
    /// and serves lookups.
    index: HashMap<ContextKey, HashMap<(u64, u128), MemoRecord>>,
}

impl WarmStore {
    /// Opens (or creates) the store at `path`, replays every committed
    /// batch into the in-memory index, and truncates any torn tail.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures; corrupt record *content* is not
    /// an error — it marks the end of the committed history, exactly as
    /// in [`crate::journal::Journal::open`].
    pub fn open(path: &Path) -> io::Result<WarmStore> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (batches, valid_len) = replay(&bytes);
        if valid_len as u64 != bytes.len() as u64 {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let mut index: HashMap<ContextKey, HashMap<(u64, u128), MemoRecord>> = HashMap::new();
        for (ctx, records) in batches {
            let facts = index.entry(ctx).or_default();
            for r in records {
                facts.entry((r.cycle, r.digest.to_bits())).or_insert(r);
            }
        }
        Ok(WarmStore {
            file,
            path: path.to_path_buf(),
            index,
        })
    }

    /// Every persisted fact for `ctx`, sorted by `(cycle, digest)` —
    /// ready for [`sofi_campaign::Campaign::preload_memo`]. Empty for an
    /// unknown context.
    pub fn lookup(&self, ctx: ContextKey) -> Vec<MemoRecord> {
        let Some(facts) = self.index.get(&ctx) else {
            return Vec::new();
        };
        let mut out: Vec<MemoRecord> = facts.values().copied().collect();
        out.sort_by_key(|r| (r.cycle, r.digest.to_bits()));
        out
    }

    /// Appends the not-yet-persisted subset of `records` for `ctx` as
    /// one checksummed, `fsync`ed batch, and indexes it. Returns how
    /// many facts were actually appended (0 — with no write at all —
    /// when every record was already persisted).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the batch must be considered
    /// uncommitted (the index is only updated after a successful sync).
    pub fn append(&mut self, ctx: ContextKey, records: &[MemoRecord]) -> io::Result<u64> {
        let known = self.index.entry(ctx).or_default();
        let fresh: Vec<MemoRecord> = records
            .iter()
            .filter(|r| !known.contains_key(&(r.cycle, r.digest.to_bits())))
            .copied()
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let payload = encode_batch(ctx, &fresh);
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&wire::fnv1a32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        let known = self.index.entry(ctx).or_default();
        for r in &fresh {
            known.insert((r.cycle, r.digest.to_bits()), *r);
        }
        Ok(fresh.len() as u64)
    }

    /// Total facts indexed across all contexts.
    pub fn len(&self) -> usize {
        self.index.values().map(HashMap::len).sum()
    }

    /// `true` when the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.index.values().all(HashMap::is_empty)
    }

    /// Distinct contexts with at least one fact.
    pub fn contexts(&self) -> usize {
        self.index.values().filter(|f| !f.is_empty()).count()
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decodes the valid batch prefix of `bytes`, returning the batches and
/// the byte length of the prefix. Stops — without error — at the first
/// truncated frame, checksum mismatch, or undecodable payload.
fn replay(bytes: &[u8]) -> (Vec<(ContextKey, Vec<MemoRecord>)>, usize) {
    let mut batches = Vec::new();
    let mut pos = 0;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if wire::fnv1a32(payload) != crc {
            break;
        }
        let Ok(batch) = decode_batch(payload) else {
            break;
        };
        batches.push(batch);
        pos += 8 + len;
    }
    (batches, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_campaign::Outcome;
    use sofi_machine::StateDigest;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sofi-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}.store", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn fact(cycle: u64, digest: u128, outcome: Outcome) -> MemoRecord {
        MemoRecord {
            cycle,
            digest: StateDigest::from_bits(digest),
            outcome,
            final_cycle: cycle + 100,
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("roundtrip");
        let ctx_a = 0x1111_u128;
        let ctx_b = 0x2222_u128;
        let a = vec![
            fact(5, 0xAAAA, Outcome::NoEffect),
            fact(9, 0xBBBB, Outcome::SilentDataCorruption),
        ];
        let b = vec![fact(3, 0xCCCC, Outcome::Timeout)];
        {
            let mut store = WarmStore::open(&path).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.append(ctx_a, &a).unwrap(), 2);
            assert_eq!(store.append(ctx_b, &b).unwrap(), 1);
            // Re-appending already-persisted facts writes nothing.
            assert_eq!(store.append(ctx_a, &a).unwrap(), 0);
        }
        let store = WarmStore::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.contexts(), 2);
        assert_eq!(store.lookup(ctx_a), a);
        assert_eq!(store.lookup(ctx_b), b);
        assert!(store.lookup(0x3333).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_path("torn");
        let ctx = 0x42_u128;
        {
            let mut store = WarmStore::open(&path).unwrap();
            store
                .append(ctx, &[fact(1, 0x11, Outcome::NoEffect)])
                .unwrap();
            store
                .append(ctx, &[fact(2, 0x22, Outcome::DetectedCorrected)])
                .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Simulate a daemon killed mid-append: half a record on the end.
        let mut torn = full.clone();
        torn.extend_from_slice(&[0x99, 0x03, 0x00, 0x00, 0x17, 0xFE]);
        std::fs::write(&path, &torn).unwrap();

        let mut store = WarmStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "torn tail must not hide committed facts");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full.len() as u64);
        store
            .append(ctx, &[fact(3, 0x33, Outcome::Timeout)])
            .unwrap();
        drop(store);
        let store = WarmStore::open(&path).unwrap();
        assert_eq!(store.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_corruption_ends_the_valid_prefix() {
        let path = temp_path("crc");
        let ctx = 0x7_u128;
        {
            let mut store = WarmStore::open(&path).unwrap();
            store
                .append(ctx, &[fact(1, 0x11, Outcome::NoEffect)])
                .unwrap();
            store
                .append(ctx, &[fact(2, 0x22, Outcome::NoEffect)])
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = {
            let len0 = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            8 + len0
        };
        bytes[second_start + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let store = WarmStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "corruption must cut the history there");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn context_key_separates_programs_domains_and_budgets() {
        let cfg = CampaignConfig::default();
        let base = context_key("nop\n", FaultDomain::Memory, &cfg);
        assert_ne!(base, context_key("add r1, r2\n", FaultDomain::Memory, &cfg));
        assert_ne!(base, context_key("nop\n", FaultDomain::RegisterFile, &cfg));
        let slow = CampaignConfig {
            timeout_factor: cfg.timeout_factor + 1,
            ..cfg
        };
        assert_ne!(base, context_key("nop\n", FaultDomain::Memory, &slow));
        // Outcome-neutral scheduling knobs share the context.
        let reknobbed = CampaignConfig {
            threads: 7,
            convergence: false,
            memoization: false,
            memo_gate: false,
            telemetry: true,
            ..cfg
        };
        assert_eq!(base, context_key("nop\n", FaultDomain::Memory, &reknobbed));
    }
}
