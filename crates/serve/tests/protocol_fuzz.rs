//! Property tests for the wire protocol: seeded random messages
//! round-trip bit-exactly, malformed frames come back as *typed* errors,
//! and arbitrary byte soup never panics the decoder.

use sofi_campaign::{
    CampaignConfig, CampaignResult, ExecutorStats, ExperimentResult, FaultDomain, Outcome,
};
use sofi_isa::MemWidth;
use sofi_machine::Trap;
use sofi_rng::{DefaultRng, Rng};
use sofi_serve::job::{JobSpec, JobState, JobStatus};
use sofi_serve::protocol::{Message, ProtocolError, HEADER_LEN, MAX_PAYLOAD};
use sofi_space::{Experiment, FaultCoord, FaultSpace};

fn random_string(rng: &mut DefaultRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| {
            // A mix of plain ASCII and multi-byte chars.
            match rng.gen_range(0u32..20) {
                0 => 'é',
                1 => '☃',
                2 => '\n',
                _ => char::from(rng.gen_range(0x20u32..0x7f) as u8),
            }
        })
        .collect()
}

fn random_domain(rng: &mut DefaultRng) -> FaultDomain {
    if rng.gen_bool(0.5) {
        FaultDomain::Memory
    } else {
        FaultDomain::RegisterFile
    }
}

fn random_outcome(rng: &mut DefaultRng) -> Outcome {
    match rng.gen_range(0u32..8) {
        0 => Outcome::NoEffect,
        1 => Outcome::DetectedCorrected,
        2 => Outcome::SilentDataCorruption,
        3 => Outcome::DetectedUnrecoverable,
        4 => Outcome::Timeout,
        5 => Outcome::OutputFlood,
        6 => Outcome::AbnormalHalt {
            code: rng.gen_range(0u32..u32::from(u16::MAX)) as u16,
        },
        _ => Outcome::CpuException(match rng.gen_range(0u32..5) {
            0 => Trap::Misaligned {
                addr: rng.next_u32(),
                width: *[MemWidth::Byte, MemWidth::Half, MemWidth::Word]
                    .get(rng.gen_range(0usize..3))
                    .unwrap(),
            },
            1 => Trap::OutOfRange {
                addr: rng.next_u32(),
            },
            2 => Trap::MmioRead {
                addr: rng.next_u32(),
            },
            3 => Trap::BadJump {
                target: rng.next_u32(),
            },
            _ => Trap::SerialOverflow,
        }),
    }
}

fn random_results(rng: &mut DefaultRng, max: usize) -> Vec<ExperimentResult> {
    let n = rng.gen_range(0..max + 1);
    (0..n)
        .map(|i| ExperimentResult {
            experiment: Experiment {
                id: i as u32,
                coord: FaultCoord {
                    cycle: rng.gen_range(1u64..1 << 40),
                    bit: rng.gen_range(0u64..1 << 20),
                },
                weight: rng.gen_range(1u64..1 << 30),
            },
            outcome: random_outcome(rng),
        })
        .collect()
}

fn random_spec(rng: &mut DefaultRng) -> JobSpec {
    JobSpec {
        name: random_string(rng, 24),
        source: random_string(rng, 200),
        domain: random_domain(rng),
        config: CampaignConfig {
            threads: rng.gen_range(0usize..9),
            convergence: rng.gen_bool(0.5),
            memoization: rng.gen_bool(0.5),
            memo_gate: rng.gen_bool(0.5),
            telemetry: rng.gen_bool(0.5),
            ..CampaignConfig::default()
        },
        warm_store: rng.gen_bool(0.5),
    }
}

fn random_stats(rng: &mut DefaultRng) -> ExecutorStats {
    ExecutorStats {
        workers: rng.gen_range(0usize..64),
        experiments: rng.next_u64() >> 8,
        pristine_cycles: rng.next_u64() >> 8,
        faulted_cycles: rng.next_u64() >> 8,
        converged_early: rng.next_u64() >> 8,
        faulted_cycles_saved: rng.next_u64() >> 8,
        memo_hits: rng.next_u64() >> 8,
        memo_misses: rng.next_u64() >> 8,
        memoized_cycles_saved: rng.next_u64() >> 8,
        gate_shards_on: rng.gen_range(0u64..8),
        gate_shards_off: rng.gen_range(0u64..8),
        store_hits: rng.next_u64() >> 8,
    }
}

fn random_snapshot(rng: &mut DefaultRng) -> sofi_telemetry::Snapshot {
    // Built through a real registry so names stay sorted and buckets
    // ascending — the invariants the decoder enforces.
    let reg = sofi_telemetry::Registry::enabled();
    for _ in 0..rng.gen_range(0usize..5) {
        reg.counter(&random_string(rng, 12)).add(rng.next_u64());
    }
    for _ in 0..rng.gen_range(0usize..3) {
        reg.gauge(&random_string(rng, 12)).set(rng.next_u64());
    }
    for _ in 0..rng.gen_range(0usize..4) {
        let h = reg.histogram(&random_string(rng, 12));
        for _ in 0..rng.gen_range(0usize..20) {
            h.record(rng.next_u64() >> rng.gen_range(0u32..64));
        }
    }
    reg.snapshot()
}

fn random_status(rng: &mut DefaultRng) -> JobStatus {
    let state = *[
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
    ]
    .get(rng.gen_range(0usize..5))
    .unwrap();
    JobStatus {
        id: rng.next_u64(),
        name: random_string(rng, 16),
        domain: random_domain(rng),
        state,
        done: rng.gen_range(0u64..1 << 30),
        total: rng.gen_range(0u64..1 << 30),
        error: random_string(rng, 40),
        stats: random_stats(rng),
    }
}

fn random_message(rng: &mut DefaultRng) -> Message {
    match rng.gen_range(0u32..14) {
        0 => Message::Submit {
            spec: random_spec(rng),
            wait: rng.gen_bool(0.5),
        },
        1 => Message::Status {
            job: if rng.gen_bool(0.5) {
                Some(rng.next_u64())
            } else {
                None
            },
        },
        2 => Message::Cancel {
            job: rng.next_u64(),
        },
        3 => Message::Shutdown,
        4 => Message::Accepted {
            job: rng.next_u64(),
        },
        5 => Message::Busy {
            queued: rng.next_u32(),
            capacity: rng.next_u32(),
        },
        6 => Message::StatusReport {
            jobs: (0..rng.gen_range(0usize..5))
                .map(|_| random_status(rng))
                .collect(),
        },
        7 => Message::Progress {
            job: rng.next_u64(),
            done: rng.next_u64(),
            total: rng.next_u64(),
            stats: random_stats(rng),
        },
        8 => Message::JobResult {
            job: rng.next_u64(),
            result: CampaignResult {
                benchmark: random_string(rng, 16),
                domain: random_domain(rng),
                space: FaultSpace::new(rng.gen_range(1u64..1 << 20), rng.gen_range(1u64..1 << 20)),
                known_benign_weight: rng.next_u64() >> 1,
                golden_cycles: rng.gen_range(1u64..1 << 40),
                results: random_results(rng, 20),
            },
            stats: random_stats(rng),
        },
        9 => Message::Cancelled {
            job: rng.next_u64(),
        },
        10 => Message::Error {
            message: random_string(rng, 60),
        },
        11 => Message::Stats {
            job: if rng.gen_bool(0.5) {
                Some(rng.next_u64())
            } else {
                None
            },
        },
        12 => Message::Telemetry {
            snapshot: random_snapshot(rng),
        },
        _ => Message::ShuttingDown,
    }
}

#[test]
fn seeded_random_messages_round_trip() {
    let mut rng = DefaultRng::seed_from_u64(0x50F1_5E4E);
    for _ in 0..500 {
        let msg = random_message(&mut rng);
        let frame = msg.encode_frame();
        let (back, consumed) = Message::decode_frame(&frame)
            .unwrap_or_else(|e| panic!("decode failed ({e}) for {msg:?}"));
        assert_eq!(consumed, frame.len(), "partial consume for {msg:?}");
        assert_eq!(back, msg);
    }
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let mut rng = DefaultRng::seed_from_u64(7);
    for _ in 0..50 {
        let frame = random_message(&mut rng).encode_frame();
        for cut in 0..frame.len() {
            match Message::decode_frame(&frame[..cut]) {
                Err(ProtocolError::Truncated) => {}
                other => panic!(
                    "cut at {cut}/{}: expected Truncated, got {other:?}",
                    frame.len()
                ),
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_never_misdecodes_silently() {
    let mut rng = DefaultRng::seed_from_u64(99);
    for _ in 0..50 {
        let msg = random_message(&mut rng);
        let frame = msg.encode_frame();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 1 << rng.gen_range(0u32..8);
            if bad == frame {
                continue;
            }
            match Message::decode_frame(&bad) {
                // Corrupting the length field may make the frame "longer":
                // Truncated is the correct typed answer. Any other typed
                // error is fine too.
                Err(_) => {}
                Ok((back, _)) => {
                    // A flip the checksum can't see would have to be in the
                    // header's checksum field itself colliding — with a
                    // 32-bit FNV over the payload plus full header
                    // validation, a single-bit flip that decodes MUST
                    // reproduce a frame... it cannot equal the original
                    // message with a differing byte, so fail loudly.
                    panic!("corrupt frame (byte {i}) decoded as {back:?}");
                }
            }
        }
    }
}

#[test]
fn malformed_headers_yield_the_documented_errors() {
    let frame = Message::Shutdown.encode_frame();

    let mut bad = frame.clone();
    bad[2] = b'f';
    assert!(matches!(
        Message::decode_frame(&bad),
        Err(ProtocolError::BadMagic(_))
    ));

    let mut bad = frame.clone();
    bad[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert_eq!(
        Message::decode_frame(&bad),
        Err(ProtocolError::BadVersion(9))
    );

    // A corrupted kind field without a matching checksum is a checksum
    // failure (the checksum covers the header)…
    let mut bad = frame.clone();
    bad[6..8].copy_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        Message::decode_frame(&bad),
        Err(ProtocolError::BadChecksum { .. })
    ));
    // …while an *intact* frame with an unknown kind is UnknownKind.
    let mut unknown = Vec::new();
    unknown.extend_from_slice(b"SOFI");
    unknown.extend_from_slice(&sofi_serve::protocol::VERSION.to_le_bytes());
    unknown.extend_from_slice(&999u16.to_le_bytes());
    unknown.extend_from_slice(&0u32.to_le_bytes());
    let checksum = sofi_serve::wire::fnv1a32(&unknown);
    unknown.extend_from_slice(&checksum.to_le_bytes());
    assert_eq!(
        Message::decode_frame(&unknown),
        Err(ProtocolError::UnknownKind(999))
    );

    let mut bad = frame.clone();
    bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert_eq!(
        Message::decode_frame(&bad),
        Err(ProtocolError::Oversized {
            len: MAX_PAYLOAD + 1,
            max: MAX_PAYLOAD,
        })
    );

    let mut bad = Message::Cancel { job: 3 }.encode_frame();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    assert!(matches!(
        Message::decode_frame(&bad),
        Err(ProtocolError::BadChecksum { .. })
    ));

    assert_eq!(
        Message::decode_frame(&frame[..HEADER_LEN - 1]),
        Err(ProtocolError::Truncated)
    );
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = DefaultRng::seed_from_u64(0xDEAD);
    for _ in 0..2000 {
        let len = rng.gen_range(0usize..256);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        // Half the iterations get a valid magic/version prefix so the
        // deeper decode paths are exercised, not just BadMagic.
        if rng.gen_bool(0.5) && buf.len() >= 6 {
            buf[..4].copy_from_slice(b"SOFI");
            buf[4..6].copy_from_slice(&sofi_serve::protocol::VERSION.to_le_bytes());
        }
        let _ = Message::decode_frame(&buf); // must return, never panic
    }
}

#[test]
fn stream_reader_rejects_mid_frame_eof() {
    let msg = Message::Accepted { job: 5 };
    let frame = msg.encode_frame();
    for cut in 1..frame.len() {
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match sofi_serve::protocol::read_message(&mut cursor) {
            Err(ProtocolError::Truncated) => {}
            other => panic!("cut {cut}: {other:?}"),
        }
    }
    let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
    assert_eq!(
        sofi_serve::protocol::read_message(&mut cursor).unwrap(),
        None
    );
}
