//! End-to-end telemetry over the wire: start a daemon on an ephemeral
//! loopback port, run a campaign through it, and read the metrics back
//! via the versioned `Stats`/`Telemetry` frame pair — both the per-job
//! registry and the daemon-wide merge. When `SOFI_RESULTS_DIR` is set
//! (the CI serve-smoke step), the daemon-wide snapshot is exported as a
//! JSON artifact next to the bench results.

use sofi_campaign::{CampaignConfig, FaultDomain};
use sofi_serve::{Client, ClientError, JobSpec, ServeConfig, Server};
use sofi_telemetry::{names, Snapshot};
use std::path::PathBuf;

const PROG: &str = "
    .data
    msg: .space 2
    .text
    li r1, 'H'
    sb r1, msg(r0)
    li r1, 'i'
    sb r1, msg+1(r0)
    lb r2, msg(r0)
    serial r2
    lb r2, msg+1(r0)
    serial r2
";

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sofi-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn counter(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
}

fn histogram_count(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.histograms
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h.count)
}

#[test]
fn daemon_exposes_job_and_daemon_wide_telemetry() {
    let journal = temp_path("telemetry.journal");
    let _ = std::fs::remove_file(&journal);
    let server = Server::bind(
        "127.0.0.1:0",
        &journal,
        ServeConfig {
            batch_size: 8, // several journal commits => several fsync spans
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&addr).unwrap();
    let spec = JobSpec {
        name: "hi".into(),
        source: PROG.into(),
        domain: FaultDomain::Memory,
        config: CampaignConfig::default(),
        warm_store: true,
    };
    let (job, result, stats) = client.submit_wait(spec, |_, _, _| {}).unwrap();
    assert!(!result.results.is_empty());

    // Per-job registry: executor counters and the paper-relevant
    // histograms (faulted-run lengths, checkpoint-restore distances).
    let job_snap = client.stats(Some(job)).unwrap();
    assert_eq!(
        counter(&job_snap, names::EXPERIMENTS),
        Some(stats.experiments)
    );
    assert!(
        histogram_count(&job_snap, names::FAULTED_RUN_CYCLES).is_some_and(|n| n > 0),
        "faulted-run histogram missing: {job_snap:?}"
    );
    assert!(
        histogram_count(&job_snap, names::RESTORE_DISTANCE_CYCLES).is_some_and(|n| n > 0),
        "restore-distance histogram missing: {job_snap:?}"
    );

    // Daemon-wide snapshot: scheduler counters plus the journal fsync
    // histogram, merged with every job's registry.
    let daemon_snap = client.stats(None).unwrap();
    assert_eq!(counter(&daemon_snap, names::JOBS_SUBMITTED), Some(1));
    assert_eq!(counter(&daemon_snap, names::JOBS_FINISHED), Some(1));
    assert!(counter(&daemon_snap, names::BATCHES_COMMITTED).is_some_and(|n| n >= 2));
    assert!(
        histogram_count(&daemon_snap, names::JOURNAL_FSYNC_NS).is_some_and(|n| n > 0),
        "journal fsync histogram missing: {daemon_snap:?}"
    );
    assert_eq!(
        counter(&daemon_snap, names::EXPERIMENTS),
        Some(stats.experiments),
        "daemon-wide snapshot must absorb the job registry"
    );

    // Unknown job ids get the typed server error, not a hangup.
    assert!(matches!(
        client.stats(Some(999)),
        Err(ClientError::Server(_))
    ));

    // CI artifact: export the daemon-wide snapshot as schema-tagged JSON.
    if let Ok(dir) = std::env::var("SOFI_RESULTS_DIR") {
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = sofi_report::telemetry_artifact(&daemon_snap);
        let path = std::path::Path::new(&dir).join("TELEMETRY_serve_smoke.json");
        std::fs::write(&path, artifact.pretty()).unwrap();
    }

    client.shutdown().unwrap();
    daemon.join().unwrap();
    std::fs::remove_file(&journal).unwrap();
}
