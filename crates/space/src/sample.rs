//! Fault sampling strategies (§III-B, §III-E, §V-C).
//!
//! Three samplers, two of them correct and one deliberately wrong:
//!
//! * [`draw_uniform`] — the textbook approach: coordinates drawn uniformly
//!   (with replacement) from the **raw** fault space. Combined with a
//!   [`crate::ClassIndex`], several draws landing in one def/use class cost
//!   a single conducted experiment while each draw still counts in the
//!   estimate — the practice §III-E prescribes.
//! * [`draw_weighted_experiments`] — uniform sampling restricted to the
//!   non-benign population `w' ≤ w` (§V-C: known "No Effect" classes need
//!   not be sampled when only failure counts matter). Classes are drawn
//!   with probability proportional to their *weight*.
//! * [`draw_biased_per_class`] — **Pitfall 2**: draws uniformly from the
//!   pruned experiment *list*, ignoring weights. Every class is equally
//!   likely regardless of how many raw coordinates it represents, which
//!   skews any estimate computed from the samples. Provided so the bias
//!   can be demonstrated and regression-tested.

use crate::coord::{FaultCoord, FaultSpace};
use crate::index::{ClassIndex, ClassRef};
use crate::plan::InjectionPlan;
use sofi_rng::Rng;
use std::collections::HashMap;

/// A batch of raw-fault-space sample draws resolved to their classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleBatch {
    /// Number of draws (`N_sampled`).
    pub draws: u64,
    /// Draws per experiment class (`id → hits`). Only classes with at
    /// least one hit appear; one experiment per key must be conducted.
    pub experiment_hits: HashMap<u32, u64>,
    /// Draws that landed on known-benign coordinates (no experiments).
    pub benign_hits: u64,
}

impl SampleBatch {
    /// The number of distinct experiments that must actually be executed.
    pub fn experiments_to_run(&self) -> usize {
        self.experiment_hits.len()
    }
}

/// Draws `n` coordinates uniformly (with replacement) from the raw fault
/// space.
pub fn draw_uniform<R: Rng + ?Sized>(space: FaultSpace, n: u64, rng: &mut R) -> Vec<FaultCoord> {
    let size = space.size();
    assert!(size > 0, "cannot sample an empty fault space");
    (0..n)
        .map(|_| space.coord_of_index(rng.gen_range(0..size)))
        .collect()
}

/// Resolves raw draws into a [`SampleBatch`] via the class index.
pub fn resolve_draws(coords: &[FaultCoord], index: &ClassIndex) -> SampleBatch {
    let mut experiment_hits: HashMap<u32, u64> = HashMap::new();
    let mut benign_hits = 0;
    for &coord in coords {
        match index.lookup(coord) {
            ClassRef::Experiment(id) => *experiment_hits.entry(id).or_default() += 1,
            ClassRef::KnownBenign => benign_hits += 1,
        }
    }
    SampleBatch {
        draws: coords.len() as u64,
        experiment_hits,
        benign_hits,
    }
}

/// Draws `n` experiment classes with probability proportional to their
/// weight — equivalent to uniform raw-space sampling conditioned on hitting
/// a non-benign coordinate (population `w'`, §V-C).
pub fn draw_weighted_experiments<R: Rng + ?Sized>(
    plan: &InjectionPlan,
    n: u64,
    rng: &mut R,
) -> SampleBatch {
    assert!(
        !plan.experiments.is_empty(),
        "plan has no experiment classes to sample"
    );
    // Cumulative weights for binary search.
    let mut cum = Vec::with_capacity(plan.experiments.len());
    let mut total = 0u64;
    for e in &plan.experiments {
        total += e.weight;
        cum.push(total);
    }
    let mut experiment_hits: HashMap<u32, u64> = HashMap::new();
    for _ in 0..n {
        let x = rng.gen_range(0..total);
        let pos = cum.partition_point(|&c| c <= x);
        *experiment_hits.entry(plan.experiments[pos].id).or_default() += 1;
    }
    SampleBatch {
        draws: n,
        experiment_hits,
        benign_hits: 0,
    }
}

/// **Pitfall 2 (biased sampling)**: draws `n` classes uniformly from the
/// pruned experiment list, ignoring class weights. The returned batch looks
/// like a legitimate sample but its distribution is skewed toward
/// short-lived data. Never use this for real estimates.
pub fn draw_biased_per_class<R: Rng + ?Sized>(
    plan: &InjectionPlan,
    n: u64,
    rng: &mut R,
) -> SampleBatch {
    assert!(
        !plan.experiments.is_empty(),
        "plan has no experiment classes to sample"
    );
    let mut experiment_hits: HashMap<u32, u64> = HashMap::new();
    for _ in 0..n {
        let pos = rng.gen_range(0..plan.experiments.len());
        *experiment_hits.entry(plan.experiments[pos].id).or_default() += 1;
    }
    SampleBatch {
        draws: n,
        experiment_hits,
        benign_hits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defuse::DefUseAnalysis;
    use sofi_isa::{Asm, Reg};
    use sofi_rng::DefaultRng;
    use sofi_trace::GoldenRun;

    fn fixture() -> (DefUseAnalysis, InjectionPlan, ClassIndex) {
        // One short-lived and one long-lived byte: weights differ 1 : 13.
        let mut a = Asm::new();
        let x = a.data_space("x", 2);
        a.li(Reg::R1, 1); // 1
        a.sb(Reg::R1, Reg::R0, x.offset()); // 2  W b0
        a.lb(Reg::R2, Reg::R0, x.offset()); // 3  R b0  (weight 1)
        a.sb(Reg::R1, Reg::R0, x.at(1).offset()); // 4  W b1
        for _ in 0..11 {
            a.nop(); // 5..=15
        }
        a.lb(Reg::R3, Reg::R0, x.at(1).offset()); // 16 R b1 (weight 12)
        let g = GoldenRun::capture(&a.build().unwrap(), 1_000).unwrap();
        let analysis = DefUseAnalysis::from_golden(&g);
        let plan = analysis.plan();
        let index = ClassIndex::new(&analysis, &plan);
        (analysis, plan, index)
    }

    #[test]
    fn uniform_draws_stay_in_space() {
        let (analysis, _, _) = fixture();
        let mut rng = DefaultRng::seed_from_u64(1);
        for c in draw_uniform(analysis.space, 1_000, &mut rng) {
            assert!(analysis.space.contains(c));
        }
    }

    #[test]
    fn resolve_accounts_every_draw() {
        let (analysis, _, index) = fixture();
        let mut rng = DefaultRng::seed_from_u64(2);
        let coords = draw_uniform(analysis.space, 5_000, &mut rng);
        let batch = resolve_draws(&coords, &index);
        let exp_total: u64 = batch.experiment_hits.values().sum();
        assert_eq!(exp_total + batch.benign_hits, batch.draws);
        assert!(batch.experiments_to_run() <= 16);
    }

    #[test]
    fn uniform_hit_rates_follow_weights() {
        let (analysis, plan, index) = fixture();
        let mut rng = DefaultRng::seed_from_u64(3);
        let n = 200_000;
        let coords = draw_uniform(analysis.space, n, &mut rng);
        let batch = resolve_draws(&coords, &index);
        // Expected fraction of non-benign draws = w_exp / w.
        let w = analysis.space.size() as f64;
        let w_exp = plan.experiment_weight() as f64;
        let got = (n - batch.benign_hits) as f64 / n as f64;
        assert!((got - w_exp / w).abs() < 0.01, "got {got}");
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let (_, plan, _) = fixture();
        let mut rng = DefaultRng::seed_from_u64(4);
        let n = 100_000;
        let batch = draw_weighted_experiments(&plan, n, &mut rng);
        // Long-lived classes (weight 12) get ~12× the hits of weight-1 ones.
        let total_w = plan.experiment_weight() as f64;
        for e in &plan.experiments {
            let hits = batch.experiment_hits.get(&e.id).copied().unwrap_or(0) as f64;
            let expect = n as f64 * e.weight as f64 / total_w;
            assert!(
                (hits - expect).abs() < expect * 0.25 + 30.0,
                "class {} hits {hits} expect {expect}",
                e.id
            );
        }
        assert_eq!(batch.benign_hits, 0);
    }

    #[test]
    fn biased_sampler_is_uniform_per_class() {
        let (_, plan, _) = fixture();
        let mut rng = DefaultRng::seed_from_u64(5);
        let n = 100_000;
        let batch = draw_biased_per_class(&plan, n, &mut rng);
        let expect = n as f64 / plan.experiments.len() as f64;
        for e in &plan.experiments {
            let hits = batch.experiment_hits.get(&e.id).copied().unwrap_or(0) as f64;
            assert!(
                (hits - expect).abs() < expect * 0.2,
                "class {} hits {hits} expect {expect}",
                e.id
            );
        }
    }

    #[test]
    fn biased_and_weighted_disagree() {
        // The essence of Pitfall 2: with unequal weights the two samplers
        // produce measurably different hit distributions.
        let (_, plan, _) = fixture();
        let mut rng = DefaultRng::seed_from_u64(6);
        let n = 50_000;
        let biased = draw_biased_per_class(&plan, n, &mut rng);
        let weighted = draw_weighted_experiments(&plan, n, &mut rng);
        // Compare hits on a weight-12 class.
        let heavy = plan
            .experiments
            .iter()
            .find(|e| e.weight == 12)
            .expect("fixture has a weight-12 class");
        let hb = biased.experiment_hits.get(&heavy.id).copied().unwrap_or(0) as f64;
        let hw = weighted
            .experiment_hits
            .get(&heavy.id)
            .copied()
            .unwrap_or(0) as f64;
        // Weighted expectation: n·12/104 ≈ 5769; biased: n/16 = 3125.
        assert!(hw > hb * 1.5, "weighted {hw} vs biased {hb}");
    }

    #[test]
    #[should_panic(expected = "empty fault space")]
    fn sampling_empty_space_panics() {
        let mut rng = DefaultRng::seed_from_u64(0);
        draw_uniform(FaultSpace::new(0, 8), 1, &mut rng);
    }
}
