//! Def/use equivalence-class analysis (§III-C of the paper).
//!
//! For every RAM bit, the golden-run access timeline partitions the bit's
//! column of the fault space into maximal intervals delimited by accesses:
//!
//! * an interval ending in a **read** ("use") is one equivalence class: a
//!   flip anywhere in it is first activated by that read, so a single
//!   experiment — injected directly before the read — stands for the whole
//!   interval (weight = interval length);
//! * an interval ending in a **write** ("def") is known *benign* without
//!   any experiment: the flip is overwritten before it can be read;
//! * the interval after the last access (or a whole never-accessed column)
//!   is likewise benign: the flip is never read (dormant fault).
//!
//! The class weights are exactly the "data life-cycle lengths" that
//! Pitfall 1 requires every result to be weighted with.

use crate::coord::{FaultCoord, FaultSpace};
use sofi_machine::AccessKind;
use sofi_trace::{GoldenRun, Timelines};

/// How an equivalence class's outcome is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ClassKind {
    /// The class ends with a read: one FI experiment (at the read cycle)
    /// determines the outcome of every coordinate in the class.
    Experiment,
    /// The outcome is known a priori to be "No Effect" — the fault is
    /// overwritten or never activated. No experiment is conducted.
    KnownBenign,
}

/// One def/use equivalence class: the coordinates
/// `(first_cycle..=last_cycle) × {bit}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EquivClass {
    /// The memory bit this class lives on.
    pub bit: u64,
    /// First cycle of the interval (inclusive, 1-based).
    pub first_cycle: u64,
    /// Last cycle of the interval (inclusive). For `Experiment` classes
    /// this is the activating read's cycle — the canonical injection point.
    pub last_cycle: u64,
    /// Experiment or known-benign.
    pub kind: ClassKind,
}

impl EquivClass {
    /// Number of fault-space coordinates in the class (its weight).
    pub fn weight(&self) -> u64 {
        self.last_cycle - self.first_cycle + 1
    }

    /// The representative injection coordinate (latest cycle in the class,
    /// i.e. directly before the activating read — the black dot of
    /// Figure 1b).
    pub fn representative(&self) -> FaultCoord {
        FaultCoord {
            cycle: self.last_cycle,
            bit: self.bit,
        }
    }

    /// `true` if `coord` lies inside this class.
    pub fn contains(&self, coord: FaultCoord) -> bool {
        coord.bit == self.bit && (self.first_cycle..=self.last_cycle).contains(&coord.cycle)
    }
}

/// Distribution of data lifetimes (experiment-class sizes).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LifetimeStats {
    /// Number of experiment classes.
    pub classes: u64,
    /// Shortest lifetime (cycles).
    pub min: u64,
    /// Median lifetime (midpoint of the two middle elements for
    /// even-sized populations).
    pub median: f64,
    /// Longest lifetime.
    pub max: u64,
    /// Mean lifetime.
    pub mean: f64,
    /// Population standard deviation of lifetimes.
    pub std_dev: f64,
    /// Class counts per log₂ bucket: `histogram[k]` counts lifetimes in
    /// `[2^k, 2^(k+1))` (the last bucket is open-ended).
    pub histogram: [u64; 24],
}

/// Complete def/use partitioning of a benchmark's fault space.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefUseAnalysis {
    /// The fault space being partitioned.
    pub space: FaultSpace,
    /// All classes, grouped by bit and ordered by cycle within each bit.
    pub classes: Vec<EquivClass>,
}

impl DefUseAnalysis {
    /// Runs the analysis on a golden run's trace.
    pub fn from_golden(golden: &GoldenRun) -> DefUseAnalysis {
        Self::from_timelines(&golden.timelines(), golden.cycles)
    }

    /// Runs the analysis on pre-digested timelines.
    pub fn from_timelines(timelines: &Timelines, cycles: u64) -> DefUseAnalysis {
        let space = FaultSpace::new(cycles, timelines.ram_bits());
        let mut classes = Vec::new();
        for (bit, events) in timelines.iter() {
            let mut prev = 0u64; // last access cycle (0 = start of run)
            for ev in events {
                debug_assert!(ev.cycle >= prev, "events must be ordered");
                if ev.cycle == prev {
                    // Same-cycle read-modify-write (register files only:
                    // `add r1, r1, r2`): the read already closed this
                    // bit's class, and the write re-defines it from the
                    // next cycle on — no additional class.
                    debug_assert_eq!(ev.kind, AccessKind::Write);
                    continue;
                }
                let kind = match ev.kind {
                    AccessKind::Read => ClassKind::Experiment,
                    AccessKind::Write => ClassKind::KnownBenign,
                };
                classes.push(EquivClass {
                    bit,
                    first_cycle: prev + 1,
                    last_cycle: ev.cycle,
                    kind,
                });
                prev = ev.cycle;
            }
            if prev < cycles {
                // Tail after the last access (or the whole column when the
                // bit is never accessed): dormant, benign.
                classes.push(EquivClass {
                    bit,
                    first_cycle: prev + 1,
                    last_cycle: cycles,
                    kind: ClassKind::KnownBenign,
                });
            }
        }
        DefUseAnalysis { space, classes }
    }

    /// Classes requiring an FI experiment.
    pub fn experiment_classes(&self) -> impl Iterator<Item = &EquivClass> {
        self.classes
            .iter()
            .filter(|c| c.kind == ClassKind::Experiment)
    }

    /// Total weight of known-benign coordinates (a-priori "No Effect").
    pub fn known_benign_weight(&self) -> u64 {
        self.classes
            .iter()
            .filter(|c| c.kind == ClassKind::KnownBenign)
            .map(EquivClass::weight)
            .sum()
    }

    /// Builds the pruned injection plan (experiments sorted by cycle).
    pub fn plan(&self) -> crate::plan::InjectionPlan {
        crate::plan::InjectionPlan::from_analysis(self)
    }

    /// Statistics over the *data lifetimes* (experiment-class sizes) of
    /// this fault space — the quantity Pitfall 1's weighting is about.
    /// The larger the spread, the larger the bias of unweighted
    /// accounting (§III-D).
    pub fn lifetime_stats(&self) -> LifetimeStats {
        lifetime_stats_of(self.experiment_classes().map(EquivClass::weight).collect())
    }

    /// Checks the partition invariant: class weights sum to `w` and classes
    /// within one bit tile the cycle axis without gaps or overlaps.
    /// Primarily used by tests and debug assertions.
    pub fn is_exact_partition(&self) -> bool {
        let total: u64 = self.classes.iter().map(EquivClass::weight).sum();
        if total != self.space.size() {
            return false;
        }
        // Per-bit tiling check.
        let mut next_expected: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for c in &self.classes {
            let expected = next_expected.entry(c.bit).or_insert(1);
            if c.first_cycle != *expected || c.last_cycle > self.space.cycles {
                return false;
            }
            *expected = c.last_cycle + 1;
        }
        next_expected
            .values()
            .all(|&next| next == self.space.cycles + 1)
            && next_expected.len() as u64 == self.space.bits
    }
}

/// [`LifetimeStats`] over a raw multiset of lifetimes.
fn lifetime_stats_of(mut weights: Vec<u64>) -> LifetimeStats {
    weights.sort_unstable();
    if weights.is_empty() {
        return LifetimeStats::default();
    }
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let mean = total as f64 / n as f64;
    let variance = weights
        .iter()
        .map(|&w| {
            let d = w as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    let mut histogram = [0u64; 24];
    for &w in &weights {
        let bucket = (63 - w.leading_zeros() as usize).min(23);
        histogram[bucket] += 1;
    }
    LifetimeStats {
        classes: n as u64,
        min: weights[0],
        // Conventional midpoint: for odd n both indices coincide; for
        // even n this averages the two middle elements.
        median: (weights[(n - 1) / 2] + weights[n / 2]) as f64 / 2.0,
        max: weights[n - 1],
        mean,
        std_dev: variance.sqrt(),
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};

    fn analyze(f: impl FnOnce(&mut Asm)) -> (GoldenRun, DefUseAnalysis) {
        let mut a = Asm::new();
        f(&mut a);
        let g = GoldenRun::capture(&a.build().unwrap(), 100_000).unwrap();
        let d = DefUseAnalysis::from_golden(&g);
        (g, d)
    }

    #[test]
    fn hi_benchmark_class_structure() {
        // The paper's Figure 3a: W@2, W@4, R@5, R@7 over two bytes.
        let (g, d) = analyze(|a| {
            let msg = a.data_space("msg", 2);
            a.li(Reg::R1, 'H' as i32); // cycle 1
            a.sb(Reg::R1, Reg::R0, msg.offset()); // cycle 2: W byte 0
            a.li(Reg::R1, 'i' as i32); // cycle 3
            a.sb(Reg::R1, Reg::R0, msg.at(1).offset()); // cycle 4: W byte 1
            a.lb(Reg::R2, Reg::R0, msg.offset()); // cycle 5: R byte 0
            a.serial_out(Reg::R2); // cycle 6
            a.lb(Reg::R2, Reg::R0, msg.at(1).offset()); // cycle 7: R byte 1
            a.serial_out(Reg::R2); // cycle 8
        });
        assert_eq!(g.cycles, 8);
        assert_eq!(g.ram_bits, 16);
        assert!(d.is_exact_partition());

        // Each byte-0 bit: benign [1,2], experiment [3,5], benign [6,8].
        let byte0: Vec<_> = d.classes.iter().filter(|c| c.bit == 0).collect();
        assert_eq!(byte0.len(), 3);
        assert_eq!(
            (byte0[0].kind, byte0[0].first_cycle, byte0[0].last_cycle),
            (ClassKind::KnownBenign, 1, 2)
        );
        assert_eq!(
            (byte0[1].kind, byte0[1].first_cycle, byte0[1].last_cycle),
            (ClassKind::Experiment, 3, 5)
        );
        assert_eq!(byte0[1].weight(), 3);
        assert_eq!(
            (byte0[2].kind, byte0[2].first_cycle, byte0[2].last_cycle),
            (ClassKind::KnownBenign, 6, 8)
        );

        // 16 experiments (8 bits × 2 bytes), total failure-candidate weight
        // 3 · 8 · 2 = 48 — exactly the paper's F for the baseline.
        assert_eq!(d.experiment_classes().count(), 16);
        let weight: u64 = d.experiment_classes().map(EquivClass::weight).sum();
        assert_eq!(weight, 48);
        assert_eq!(d.known_benign_weight(), 128 - 48);
    }

    #[test]
    fn untouched_bits_are_fully_benign() {
        let (_, d) = analyze(|a| {
            a.data_space("pad", 4);
            a.nop();
            a.nop();
        });
        assert_eq!(d.experiment_classes().count(), 0);
        assert_eq!(d.known_benign_weight(), 2 * 32);
        assert!(d.is_exact_partition());
    }

    #[test]
    fn read_of_initialized_data_starts_at_cycle_one() {
        // Data that is live from reset (a .data value) is vulnerable from
        // cycle 1 until its first read.
        let (_, d) = analyze(|a| {
            let x = a.data_bytes("x", &[1]);
            a.nop(); // cycle 1
            a.nop(); // cycle 2
            a.lb(Reg::R1, Reg::R0, x.offset()); // cycle 3
        });
        let exp: Vec<_> = d.experiment_classes().collect();
        assert_eq!(exp.len(), 8);
        assert_eq!(exp[0].first_cycle, 1);
        assert_eq!(exp[0].last_cycle, 3);
        assert_eq!(exp[0].weight(), 3);
    }

    #[test]
    fn back_to_back_reads_form_separate_classes() {
        let (_, d) = analyze(|a| {
            let x = a.data_bytes("x", &[1]);
            a.lb(Reg::R1, Reg::R0, x.offset()); // cycle 1
            a.lb(Reg::R2, Reg::R0, x.offset()); // cycle 2
        });
        let exp: Vec<_> = d.experiment_classes().collect();
        assert_eq!(exp.len(), 16); // 8 bits × 2 reads
        assert_eq!(exp.iter().map(|c| c.weight()).sum::<u64>(), 16);
    }

    #[test]
    fn representative_is_the_read_cycle() {
        let c = EquivClass {
            bit: 3,
            first_cycle: 2,
            last_cycle: 9,
            kind: ClassKind::Experiment,
        };
        assert_eq!(c.representative(), FaultCoord { cycle: 9, bit: 3 });
        assert_eq!(c.weight(), 8);
        assert!(c.contains(FaultCoord { cycle: 2, bit: 3 }));
        assert!(!c.contains(FaultCoord { cycle: 1, bit: 3 }));
        assert!(!c.contains(FaultCoord { cycle: 5, bit: 4 }));
    }

    #[test]
    fn lifetime_stats_on_hi() {
        // "Hi": 16 experiment classes, all of weight 3.
        let (_, d) = analyze(|a| {
            let msg = a.data_space("msg", 2);
            a.li(Reg::R1, 'H' as i32);
            a.sb(Reg::R1, Reg::R0, msg.offset());
            a.li(Reg::R1, 'i' as i32);
            a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
            a.lb(Reg::R2, Reg::R0, msg.offset());
            a.serial_out(Reg::R2);
            a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
            a.serial_out(Reg::R2);
        });
        let s = d.lifetime_stats();
        assert_eq!(s.classes, 16);
        assert_eq!((s.min, s.max), (3, 3));
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        // All lifetimes land in the [2, 4) bucket.
        assert_eq!(s.histogram[1], 16);
        assert_eq!(s.histogram.iter().sum::<u64>(), 16);
    }

    #[test]
    fn median_is_the_conventional_midpoint() {
        // Odd count: the middle element.
        let odd = lifetime_stats_of(vec![9, 1, 5]);
        assert_eq!(odd.median, 5.0);
        // Even count: the mean of the two middle elements, not the
        // upper-middle one.
        let even = lifetime_stats_of(vec![8, 1, 2, 100]);
        assert_eq!(even.median, 5.0);
        let even = lifetime_stats_of(vec![3, 4]);
        assert_eq!(even.median, 3.5);
        // Degenerate cases.
        assert_eq!(lifetime_stats_of(vec![7]).median, 7.0);
        assert_eq!(lifetime_stats_of(Vec::new()).median, 0.0);
    }

    #[test]
    fn lifetime_stats_spread() {
        // One short-lived and one long-lived datum.
        let (_, d) = analyze(|a| {
            let x = a.data_space("x", 2);
            a.li(Reg::R1, 1);
            a.sb(Reg::R1, Reg::R0, x.offset());
            a.lb(Reg::R2, Reg::R0, x.offset()); // weight 1
            a.sb(Reg::R1, Reg::R0, x.at(1).offset());
            for _ in 0..20 {
                a.nop();
            }
            a.lb(Reg::R3, Reg::R0, x.at(1).offset()); // weight 21
        });
        let s = d.lifetime_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 21);
        assert!(s.std_dev > 5.0);
    }

    #[test]
    fn empty_analysis_has_default_stats() {
        let (_, d) = analyze(|a| {
            a.nop();
        });
        assert_eq!(d.lifetime_stats(), LifetimeStats::default());
    }

    #[test]
    fn figure_1b_example_counts() {
        // Reconstruct the paper's Figure 1 setting: 12 cycles × 9 bits,
        // with an 8-bit store at cycle 4 and load at cycle 11 (bit 9 of the
        // figure's axis is never accessed). 108 coordinates collapse to 8
        // experiments.
        use sofi_isa::MemWidth;
        use sofi_machine::{AccessKind, MemAccess};
        let trace = vec![
            MemAccess {
                cycle: 4,
                addr: 0,
                width: MemWidth::Byte,
                kind: AccessKind::Write,
            },
            MemAccess {
                cycle: 11,
                addr: 0,
                width: MemWidth::Byte,
                kind: AccessKind::Read,
            },
        ];
        let tl = Timelines::build(&trace, 9);
        let d = DefUseAnalysis::from_timelines(&tl, 12);
        assert_eq!(d.space.size(), 108);
        assert_eq!(d.experiment_classes().count(), 8);
        // Each experiment class spans cycles 5..=11: weight 7, exactly the
        // "weight of 7" the paper uses in §III-D.
        for c in d.experiment_classes() {
            assert_eq!(c.weight(), 7);
        }
        assert!(d.is_exact_partition());
    }
}
