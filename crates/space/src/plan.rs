//! Pruned injection plans.

use crate::coord::{FaultCoord, FaultSpace};
use crate::defuse::{ClassKind, DefUseAnalysis, EquivClass};

/// One planned FI experiment: the representative injection of a def/use
/// equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Experiment {
    /// Stable identifier (index into the plan).
    pub id: u32,
    /// Injection coordinate (the cycle of the activating read).
    pub coord: FaultCoord,
    /// Equivalence-class size: the number of raw fault-space coordinates
    /// this experiment stands for. **Results must be weighted by this**
    /// (Pitfall 1).
    pub weight: u64,
}

/// The executable outcome of def/use pruning: every experiment to run, plus
/// the bookkeeping needed for correct (weighted) result accounting.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_trace::GoldenRun;
/// use sofi_space::DefUseAnalysis;
///
/// let mut a = Asm::new();
/// let x = a.data_bytes("x", &[1]);
/// a.lb(Reg::R1, Reg::R0, x.offset());
/// let golden = GoldenRun::capture(&a.build()?, 100)?;
/// let plan = DefUseAnalysis::from_golden(&golden).plan();
/// // 8 experiments cover the whole 1-cycle × 8-bit space.
/// assert_eq!(plan.experiments.len(), 8);
/// assert_eq!(plan.known_benign_weight, 0);
/// assert_eq!(plan.total_weight(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InjectionPlan {
    /// The fault space the plan covers.
    pub space: FaultSpace,
    /// Experiments sorted by injection cycle (the campaign executor
    /// exploits this ordering to reuse a forward-running pristine machine).
    pub experiments: Vec<Experiment>,
    /// Combined weight of all coordinates known benign without experiments.
    pub known_benign_weight: u64,
}

impl InjectionPlan {
    /// Builds the plan from a def/use analysis.
    pub fn from_analysis(analysis: &DefUseAnalysis) -> InjectionPlan {
        let mut classes: Vec<&EquivClass> = analysis
            .classes
            .iter()
            .filter(|c| c.kind == ClassKind::Experiment)
            .collect();
        classes.sort_by_key(|c| (c.last_cycle, c.bit));
        let experiments = classes
            .iter()
            .enumerate()
            .map(|(id, c)| Experiment {
                id: id as u32,
                coord: c.representative(),
                weight: c.weight(),
            })
            .collect();
        InjectionPlan {
            space: analysis.space,
            experiments,
            known_benign_weight: analysis.known_benign_weight(),
        }
    }

    /// A brute-force plan with one experiment per raw coordinate (weight 1
    /// each). Only tractable for tiny programs; used to validate pruning
    /// soundness and to demonstrate that pruning is a pure optimization.
    pub fn full_scan(space: FaultSpace) -> InjectionPlan {
        let mut experiments = Vec::with_capacity(space.size() as usize);
        let mut id = 0;
        for cycle in 1..=space.cycles {
            for bit in 0..space.bits {
                experiments.push(Experiment {
                    id,
                    coord: FaultCoord { cycle, bit },
                    weight: 1,
                });
                id += 1;
            }
        }
        InjectionPlan {
            space,
            experiments,
            known_benign_weight: 0,
        }
    }

    /// Total covered weight: experiments + known-benign. Always equals the
    /// fault-space size `w` — pruning must not lose coordinates.
    pub fn total_weight(&self) -> u64 {
        self.experiment_weight() + self.known_benign_weight
    }

    /// Combined weight of all experiments.
    pub fn experiment_weight(&self) -> u64 {
        self.experiments.iter().map(|e| e.weight).sum()
    }

    /// The pruning factor: raw coordinates per conducted experiment.
    pub fn reduction_factor(&self) -> f64 {
        if self.experiments.is_empty() {
            f64::INFINITY
        } else {
            self.space.size() as f64 / self.experiments.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};
    use sofi_trace::GoldenRun;

    #[test]
    fn experiments_sorted_by_cycle() {
        let mut a = Asm::new();
        let x = a.data_bytes("x", &[1, 2]);
        a.lb(Reg::R1, Reg::R0, x.at(1).offset()); // read byte 1 first
        a.lb(Reg::R2, Reg::R0, x.offset()); // then byte 0
        let g = GoldenRun::capture(&a.build().unwrap(), 100).unwrap();
        let plan = DefUseAnalysis::from_golden(&g).plan();
        let cycles: Vec<u64> = plan.experiments.iter().map(|e| e.coord.cycle).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted);
        assert_eq!(plan.experiments.len(), 16);
        // ids are positional
        for (i, e) in plan.experiments.iter().enumerate() {
            assert_eq!(e.id as usize, i);
        }
    }

    #[test]
    fn full_scan_covers_every_coordinate() {
        let plan = InjectionPlan::full_scan(FaultSpace::new(3, 4));
        assert_eq!(plan.experiments.len(), 12);
        assert_eq!(plan.total_weight(), 12);
        assert_eq!(plan.known_benign_weight, 0);
        assert!((plan.reduction_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_weight_partitions_space() {
        let mut a = Asm::new();
        let buf = a.data_space("buf", 4);
        a.li(Reg::R1, 9);
        a.sw(Reg::R1, Reg::R0, buf.offset());
        a.nop();
        a.nop();
        a.lw(Reg::R2, Reg::R0, buf.offset());
        let g = GoldenRun::capture(&a.build().unwrap(), 100).unwrap();
        let plan = DefUseAnalysis::from_golden(&g).plan();
        assert_eq!(plan.total_weight(), g.fault_space_size());
        assert!(plan.reduction_factor() > 1.0);
    }
}
