#![warn(missing_docs)]

//! Fault-space model, def/use pruning and sampling (paper §III).
//!
//! The fault space of a run-to-completion benchmark is the discrete grid
//! `CPU cycles × memory bits` (Figure 1a of the paper): every coordinate
//! `(c, b)` is one possible experiment "flip bit `b` at the start of cycle
//! `c`". This crate provides:
//!
//! * [`FaultSpace`]/[`FaultCoord`] — the grid and its linearization,
//! * [`DefUseAnalysis`] — the classic def/use equivalence-class analysis
//!   (§III-C, Figure 1b): coordinates between an access and a following
//!   *read* share one experiment; coordinates whose next access is a
//!   *write* (or that are never read again) are known-benign without any
//!   experiment,
//! * [`InjectionPlan`] — the pruned experiment list with per-class weights
//!   (the data-lifetime lengths that Pitfall 1 requires for result
//!   accounting),
//! * [`ClassIndex`] — coordinate → class lookup, and
//! * [`sample`] — correct (raw fault-space) and deliberately biased
//!   (per-class, Pitfall 2) samplers.
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//! use sofi_trace::GoldenRun;
//! use sofi_space::DefUseAnalysis;
//!
//! // store (cycle 2) ... load (cycle 4): one 8-bit-wide vulnerable window.
//! let mut a = Asm::new();
//! let x = a.data_space("x", 1);
//! a.li(Reg::R1, 42);
//! a.sb(Reg::R1, Reg::R0, x.offset());
//! a.nop();
//! a.lb(Reg::R2, Reg::R0, x.offset());
//! let golden = GoldenRun::capture(&a.build()?, 1_000)?;
//!
//! let analysis = DefUseAnalysis::from_golden(&golden);
//! let plan = analysis.plan();
//! assert_eq!(plan.experiments.len(), 8);           // one per bit
//! assert_eq!(plan.experiments[0].weight, 2);        // cycles 3 and 4
//! assert_eq!(plan.total_weight(), golden.fault_space_size());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod coord;
mod defuse;
mod index;
mod plan;
pub mod sample;

pub use coord::{FaultCoord, FaultSpace};
pub use defuse::{ClassKind, DefUseAnalysis, EquivClass, LifetimeStats};
pub use index::{ClassIndex, ClassRef};
pub use plan::{Experiment, InjectionPlan};
