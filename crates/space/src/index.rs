//! Coordinate → equivalence-class lookup.

use crate::coord::FaultCoord;
use crate::defuse::{ClassKind, DefUseAnalysis};
use crate::plan::InjectionPlan;
use std::collections::HashMap;

/// What a fault-space coordinate resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassRef {
    /// The coordinate belongs to the experiment class with this plan id.
    Experiment(u32),
    /// The coordinate is known benign (overwritten or never read).
    KnownBenign,
}

/// Maps raw fault-space coordinates to their def/use class.
///
/// This is the piece that makes *correct sampling* (§III-E) cheap: samples
/// are drawn uniformly from the raw space, and coordinates falling into the
/// same class share a single conducted experiment while still each counting
/// in the estimate.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_trace::GoldenRun;
/// use sofi_space::{ClassIndex, ClassRef, DefUseAnalysis, FaultCoord};
///
/// let mut a = Asm::new();
/// let x = a.data_bytes("x", &[1]);
/// a.nop();
/// a.lb(Reg::R1, Reg::R0, x.offset()); // read in cycle 2
/// a.nop();
/// let golden = GoldenRun::capture(&a.build()?, 100)?;
/// let analysis = DefUseAnalysis::from_golden(&golden);
/// let plan = analysis.plan();
/// let index = ClassIndex::new(&analysis, &plan);
///
/// // Cycle 1 and 2 of bit 0 share the experiment; cycle 3 is benign.
/// let e = index.lookup(FaultCoord { cycle: 1, bit: 0 });
/// assert_eq!(e, index.lookup(FaultCoord { cycle: 2, bit: 0 }));
/// assert!(matches!(e, ClassRef::Experiment(_)));
/// assert_eq!(index.lookup(FaultCoord { cycle: 3, bit: 0 }), ClassRef::KnownBenign);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassIndex {
    /// Per bit: class interval ends (`last_cycle`) in ascending order with
    /// the class they resolve to.
    per_bit: Vec<Vec<(u64, ClassRef)>>,
}

impl ClassIndex {
    /// Builds the index. `plan` must come from the same `analysis` (its
    /// experiment ids are the lookup results).
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built from a different analysis (an experiment
    /// class has no matching plan entry).
    pub fn new(analysis: &DefUseAnalysis, plan: &InjectionPlan) -> ClassIndex {
        let mut id_by_coord: HashMap<(u64, u64), u32> =
            HashMap::with_capacity(plan.experiments.len());
        for e in &plan.experiments {
            id_by_coord.insert((e.coord.bit, e.coord.cycle), e.id);
        }
        let mut per_bit: Vec<Vec<(u64, ClassRef)>> = vec![Vec::new(); analysis.space.bits as usize];
        for class in &analysis.classes {
            let r = match class.kind {
                ClassKind::Experiment => {
                    let id = id_by_coord
                        .get(&(class.bit, class.last_cycle))
                        .copied()
                        .expect("plan built from a different analysis");
                    ClassRef::Experiment(id)
                }
                ClassKind::KnownBenign => ClassRef::KnownBenign,
            };
            per_bit[class.bit as usize].push((class.last_cycle, r));
        }
        for v in &mut per_bit {
            v.sort_by_key(|&(end, _)| end);
        }
        ClassIndex { per_bit }
    }

    /// Resolves a coordinate to its class.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the indexed fault space.
    pub fn lookup(&self, coord: FaultCoord) -> ClassRef {
        let column = &self.per_bit[coord.bit as usize];
        // First class whose interval end covers the cycle.
        let pos = column.partition_point(|&(end, _)| end < coord.cycle);
        assert!(
            pos < column.len(),
            "cycle {} beyond last class of bit {}",
            coord.cycle,
            coord.bit
        );
        column[pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::FaultSpace;
    use sofi_isa::{Asm, Reg};
    use sofi_trace::GoldenRun;

    fn setup(f: impl FnOnce(&mut Asm)) -> (DefUseAnalysis, InjectionPlan, ClassIndex) {
        let mut a = Asm::new();
        f(&mut a);
        let g = GoldenRun::capture(&a.build().unwrap(), 100_000).unwrap();
        let analysis = DefUseAnalysis::from_golden(&g);
        let plan = analysis.plan();
        let index = ClassIndex::new(&analysis, &plan);
        (analysis, plan, index)
    }

    #[test]
    fn every_coordinate_resolves_consistently() {
        let (analysis, plan, index) = setup(|a| {
            let x = a.data_space("x", 2);
            a.li(Reg::R1, 7);
            a.sb(Reg::R1, Reg::R0, x.offset());
            a.lb(Reg::R2, Reg::R0, x.offset());
            a.sb(Reg::R2, Reg::R0, x.at(1).offset());
            a.lb(Reg::R3, Reg::R0, x.at(1).offset());
        });
        // Exhaustively check: summed per-class hits reproduce class weights.
        let mut hits: HashMap<ClassRef, u64> = HashMap::new();
        let FaultSpace { cycles, bits } = analysis.space;
        for cycle in 1..=cycles {
            for bit in 0..bits {
                *hits
                    .entry(index.lookup(FaultCoord { cycle, bit }))
                    .or_default() += 1;
            }
        }
        for e in &plan.experiments {
            assert_eq!(hits[&ClassRef::Experiment(e.id)], e.weight);
        }
        assert_eq!(
            hits.get(&ClassRef::KnownBenign).copied().unwrap_or(0),
            plan.known_benign_weight
        );
    }

    #[test]
    #[should_panic(expected = "beyond last class")]
    fn out_of_space_lookup_panics() {
        let (_, _, index) = setup(|a| {
            let x = a.data_bytes("x", &[1]);
            a.lb(Reg::R1, Reg::R0, x.offset());
        });
        index.lookup(FaultCoord { cycle: 2, bit: 0 });
    }
}
