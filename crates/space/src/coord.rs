//! Fault-space geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One fault-space coordinate: "flip memory bit `bit` at the beginning of
/// cycle `cycle`" (the instruction executing in that cycle already sees the
/// flipped value).
///
/// Cycles are 1-based (`1..=Δt`), bits are 0-based (`0..Δm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultCoord {
    /// Injection cycle, `1..=Δt`.
    pub cycle: u64,
    /// Flat memory bit index, `addr * 8 + bit_in_byte`, in `0..Δm`.
    pub bit: u64,
}

impl fmt::Display for FaultCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cycle {}, bit {})", self.cycle, self.bit)
    }
}

/// The fault-space extent of one benchmark run: `Δt` cycles × `Δm` bits.
///
/// # Examples
///
/// ```
/// use sofi_space::{FaultSpace, FaultCoord};
/// let space = FaultSpace::new(12, 9); // Figure 1a of the paper
/// assert_eq!(space.size(), 108);
/// let c = FaultCoord { cycle: 3, bit: 4 };
/// assert_eq!(space.coord_of_index(space.index_of(c)), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpace {
    /// Benchmark runtime in cycles (`Δt`).
    pub cycles: u64,
    /// RAM size in bits (`Δm`).
    pub bits: u64,
}

impl FaultSpace {
    /// Creates a fault space of `cycles × bits` coordinates.
    pub fn new(cycles: u64, bits: u64) -> FaultSpace {
        FaultSpace { cycles, bits }
    }

    /// Total coordinate count `w = Δt · Δm`.
    pub fn size(&self) -> u64 {
        self.cycles * self.bits
    }

    /// `true` if `coord` lies inside the space.
    pub fn contains(&self, coord: FaultCoord) -> bool {
        (1..=self.cycles).contains(&coord.cycle) && coord.bit < self.bits
    }

    /// Linearizes a coordinate into `0..size()` (bit-major within a cycle).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the space.
    pub fn index_of(&self, coord: FaultCoord) -> u64 {
        assert!(self.contains(coord), "{coord} outside {self:?}");
        (coord.cycle - 1) * self.bits + coord.bit
    }

    /// Inverse of [`FaultSpace::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn coord_of_index(&self, index: u64) -> FaultCoord {
        assert!(index < self.size(), "index {index} outside fault space");
        FaultCoord {
            cycle: index / self.bits + 1,
            bit: index % self.bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_and_contains() {
        let s = FaultSpace::new(8, 16); // the "Hi" benchmark, Figure 3a
        assert_eq!(s.size(), 128);
        assert!(s.contains(FaultCoord { cycle: 1, bit: 0 }));
        assert!(s.contains(FaultCoord { cycle: 8, bit: 15 }));
        assert!(!s.contains(FaultCoord { cycle: 0, bit: 0 }));
        assert!(!s.contains(FaultCoord { cycle: 9, bit: 0 }));
        assert!(!s.contains(FaultCoord { cycle: 1, bit: 16 }));
    }

    proptest! {
        #[test]
        fn linearization_round_trips(cycles in 1u64..100, bits in 1u64..100, idx_frac in 0.0f64..1.0) {
            let space = FaultSpace::new(cycles, bits);
            let index = ((space.size() - 1) as f64 * idx_frac) as u64;
            let coord = space.coord_of_index(index);
            prop_assert!(space.contains(coord));
            prop_assert_eq!(space.index_of(coord), index);
        }
    }

    #[test]
    #[should_panic(expected = "outside fault space")]
    fn index_bound_checked() {
        FaultSpace::new(2, 2).coord_of_index(4);
    }
}
