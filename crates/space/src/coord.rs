//! Fault-space geometry.

use std::fmt;

/// One fault-space coordinate: "flip memory bit `bit` at the beginning of
/// cycle `cycle`" (the instruction executing in that cycle already sees the
/// flipped value).
///
/// Cycles are 1-based (`1..=Δt`), bits are 0-based (`0..Δm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultCoord {
    /// Injection cycle, `1..=Δt`.
    pub cycle: u64,
    /// Flat memory bit index, `addr * 8 + bit_in_byte`, in `0..Δm`.
    pub bit: u64,
}

impl FaultCoord {
    /// The number of cycles to execute before applying this coordinate's
    /// flip: `cycle - 1`, saturating at zero.
    ///
    /// Coordinates inside a valid [`FaultSpace`] always have
    /// `cycle ≥ 1`, but executors also accept raw coordinates (e.g. from
    /// a remote client), and a `cycle: 0` coordinate must mean "flip
    /// before the first instruction" — identical to `cycle: 1` — rather
    /// than underflow `u64` and run the pristine machine for 2⁶⁴−1
    /// cycles. Every pre-injection `run_to` in the campaign crate goes
    /// through this accessor.
    pub fn pre_injection_cycle(&self) -> u64 {
        self.cycle.saturating_sub(1)
    }
}

impl fmt::Display for FaultCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cycle {}, bit {})", self.cycle, self.bit)
    }
}

/// The fault-space extent of one benchmark run: `Δt` cycles × `Δm` bits.
///
/// # Examples
///
/// ```
/// use sofi_space::{FaultSpace, FaultCoord};
/// let space = FaultSpace::new(12, 9); // Figure 1a of the paper
/// assert_eq!(space.size(), 108);
/// let c = FaultCoord { cycle: 3, bit: 4 };
/// assert_eq!(space.coord_of_index(space.index_of(c)), c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpace {
    /// Benchmark runtime in cycles (`Δt`).
    pub cycles: u64,
    /// RAM size in bits (`Δm`).
    pub bits: u64,
}

impl FaultSpace {
    /// Creates a fault space of `cycles × bits` coordinates.
    pub fn new(cycles: u64, bits: u64) -> FaultSpace {
        FaultSpace { cycles, bits }
    }

    /// Total coordinate count `w = Δt · Δm`.
    pub fn size(&self) -> u64 {
        self.cycles * self.bits
    }

    /// `true` if `coord` lies inside the space.
    pub fn contains(&self, coord: FaultCoord) -> bool {
        (1..=self.cycles).contains(&coord.cycle) && coord.bit < self.bits
    }

    /// Linearizes a coordinate into `0..size()` (bit-major within a cycle).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the space.
    pub fn index_of(&self, coord: FaultCoord) -> u64 {
        assert!(self.contains(coord), "{coord} outside {self:?}");
        (coord.cycle - 1) * self.bits + coord.bit
    }

    /// Inverse of [`FaultSpace::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn coord_of_index(&self, index: u64) -> FaultCoord {
        assert!(index < self.size(), "index {index} outside fault space");
        FaultCoord {
            cycle: index / self.bits + 1,
            bit: index % self.bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_rng::{DefaultRng, Rng};

    #[test]
    fn size_and_contains() {
        let s = FaultSpace::new(8, 16); // the "Hi" benchmark, Figure 3a
        assert_eq!(s.size(), 128);
        assert!(s.contains(FaultCoord { cycle: 1, bit: 0 }));
        assert!(s.contains(FaultCoord { cycle: 8, bit: 15 }));
        assert!(!s.contains(FaultCoord { cycle: 0, bit: 0 }));
        assert!(!s.contains(FaultCoord { cycle: 9, bit: 0 }));
        assert!(!s.contains(FaultCoord { cycle: 1, bit: 16 }));
    }

    #[test]
    fn linearization_round_trips() {
        // Deterministic seeded sweep over random geometries and indices.
        let mut rng = DefaultRng::seed_from_u64(0xC0_0D);
        for _ in 0..256 {
            let space = FaultSpace::new(rng.gen_range(1u64..100), rng.gen_range(1u64..100));
            let index = rng.gen_range(0..space.size());
            let coord = space.coord_of_index(index);
            assert!(space.contains(coord), "{coord} outside {space:?}");
            assert_eq!(space.index_of(coord), index);
        }
    }

    #[test]
    #[should_panic(expected = "outside fault space")]
    fn index_bound_checked() {
        FaultSpace::new(2, 2).coord_of_index(4);
    }

    #[test]
    fn pre_injection_cycle_saturates_at_zero() {
        // A raw cycle-0 coordinate means "flip before the first
        // instruction" — same as cycle 1 — never a u64 underflow.
        assert_eq!(FaultCoord { cycle: 0, bit: 3 }.pre_injection_cycle(), 0);
        assert_eq!(FaultCoord { cycle: 1, bit: 3 }.pre_injection_cycle(), 0);
        assert_eq!(FaultCoord { cycle: 9, bit: 0 }.pre_injection_cycle(), 8);
    }
}
