//! Resumable fault-list slicing.
//!
//! The campaign service (`sofi-serve`) dispatches a campaign's experiment
//! list in fixed-size batches and journals each completed batch. After a
//! crash it replays the journal and re-dispatches only the *uncovered
//! tail* of the fault list; the helpers here compute that tail and the
//! batch boundaries. They are plain functions over experiment slices so
//! any executor front-end (daemon, CLI, tests) slices identically.

use sofi_space::Experiment;
use std::collections::HashSet;

/// The experiments of `plan` whose ids are *not* in `done`, in the
/// original (cycle-sorted) plan order.
///
/// `done` typically comes from replaying a result journal: every
/// experiment id with a committed outcome. Re-running the returned tail
/// and merging with the journaled results covers the plan exactly once.
pub fn unfinished(plan: &[Experiment], done: &HashSet<u32>) -> Vec<Experiment> {
    plan.iter()
        .filter(|e| !done.contains(&e.id))
        .copied()
        .collect()
}

/// How many of `plan`'s experiments are already covered by `done` —
/// the journal-recovered head the daemon *skips* on resume. Counted
/// against the plan (not `done.len()`) so stale journal entries for
/// other plans never inflate the figure; the daemon mirrors this into
/// the `serve.experiments_recovered` telemetry counter.
pub fn recovered_count(plan: &[Experiment], done: &HashSet<u32>) -> u64 {
    plan.iter().filter(|e| done.contains(&e.id)).count() as u64
}

/// Splits `experiments` into contiguous batches of at most `batch_size`
/// (the last batch may be shorter). `batch_size` of 0 is treated as 1 so
/// the schedule always makes progress.
pub fn batches(
    experiments: &[Experiment],
    batch_size: usize,
) -> impl Iterator<Item = &[Experiment]> {
    experiments.chunks(batch_size.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_space::FaultCoord;

    fn exp(id: u32) -> Experiment {
        Experiment {
            id,
            coord: FaultCoord {
                cycle: u64::from(id) + 1,
                bit: 0,
            },
            weight: 1,
        }
    }

    #[test]
    fn unfinished_preserves_order_and_filters() {
        let plan: Vec<Experiment> = (0..10).map(exp).collect();
        let done: HashSet<u32> = [1, 3, 9].into_iter().collect();
        let tail = unfinished(&plan, &done);
        let ids: Vec<u32> = tail.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 2, 4, 5, 6, 7, 8]);
        assert!(unfinished(&plan, &(0..10).collect()).is_empty());
        assert_eq!(unfinished(&plan, &HashSet::new()).len(), 10);
    }

    #[test]
    fn recovered_complements_unfinished() {
        let plan: Vec<Experiment> = (0..10).map(exp).collect();
        // `done` includes ids outside the plan: they must not count.
        let done: HashSet<u32> = [1, 3, 9, 77, 99].into_iter().collect();
        let recovered = recovered_count(&plan, &done);
        assert_eq!(recovered, 3);
        assert_eq!(
            recovered + unfinished(&plan, &done).len() as u64,
            plan.len() as u64
        );
        assert_eq!(recovered_count(&[], &done), 0);
        assert_eq!(recovered_count(&plan, &HashSet::new()), 0);
    }

    #[test]
    fn batches_cover_exactly_once() {
        let plan: Vec<Experiment> = (0..10).map(exp).collect();
        for size in [0, 1, 3, 10, 99] {
            let all: Vec<u32> = batches(&plan, size)
                .flat_map(|b| b.iter().map(|e| e.id))
                .collect();
            assert_eq!(all, (0..10).collect::<Vec<u32>>(), "batch size {size}");
        }
        assert_eq!(batches(&plan, 3).count(), 4);
        assert_eq!(batches(&[], 3).count(), 0);
    }
}
